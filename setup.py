"""Legacy setup shim: this environment has no `wheel` package, so PEP 660
editable installs fail; `setup.py develop` works offline."""
from setuptools import setup

setup()
