"""Table 6 — partitioning-strategy ablation.

Owner-computes partitioning controls load balance: block partitions put
whole index regions (which finalize together) on one node; cyclic and
hash spread them.  All three compute identical databases.
"""

from conftest import SWEEP_STONES, publish

from repro.analysis.report import Table, format_seconds

PARTITIONS = ["block", "cyclic", "hash"]
PROCS = 16


def _run(bench):
    return {
        kind: bench.parallel(
            SWEEP_STONES, n_procs=PROCS, combining_capacity=256, partition=kind
        )
        for kind in PARTITIONS
    }


def test_table6_partition_ablation(bench, results_dir, benchmark):
    runs = benchmark.pedantic(_run, args=(bench,), rounds=1, iterations=1)

    t_seq = bench.t_seq(SWEEP_STONES)
    table = Table(
        f"Table 6 — partition strategies ({SWEEP_STONES}-stone database, "
        f"P = {PROCS})",
        ["partition", "T_parallel", "speedup", "cpu-imbalance", "packets"],
    )
    for kind, s in runs.items():
        table.add(
            kind,
            format_seconds(s.makespan_seconds),
            f"{t_seq / s.makespan_seconds:.1f}",
            f"{s.load_imbalance:.2f}",
            f"{s.packets_sent:,}",
        )
    publish(results_dir, "table6_partition", table.render())

    # Scattering partitions balance CPU time better than block.
    assert runs["cyclic"].load_imbalance <= runs["block"].load_imbalance + 0.02
    assert runs["hash"].load_imbalance < 1.5
    # Every strategy still delivers a real speedup.
    for s in runs.values():
        assert t_seq / s.makespan_seconds > PROCS * 0.4
