"""Table 7 — heterogeneous processor pool (extension ablation).

The Amoeba pools the paper ran on were mixed hardware.  The algorithm's
static owner-computes partition cannot rebalance, so the slowest node
sets the pace — quantified here by running the same database on even
pools and on pools with 25% half-speed nodes.
"""

from conftest import SWEEP_STONES, publish

from repro.analysis.report import Table, format_seconds

PROCS = 16


def _speeds(kind):
    if kind == "uniform":
        return None
    if kind == "quarter-slow":
        return tuple(2.0 if r % 4 == 0 else 1.0 for r in range(PROCS))
    if kind == "one-slow":
        return tuple(2.0 if r == 0 else 1.0 for r in range(PROCS))
    raise ValueError(kind)


def _run(bench):
    out = {}
    for kind in ("uniform", "one-slow", "quarter-slow"):
        out[kind] = bench.parallel(
            SWEEP_STONES,
            n_procs=PROCS,
            combining_capacity=256,
            node_speeds=_speeds(kind),
        )
    return out


def test_table7_heterogeneous_pool(bench, results_dir, benchmark):
    runs = benchmark.pedantic(_run, args=(bench,), rounds=1, iterations=1)

    t_seq = bench.t_seq(SWEEP_STONES)
    table = Table(
        f"Table 7 — heterogeneous pools ({SWEEP_STONES}-stone database, "
        f"P = {PROCS}; slowdown factor 2.0 on slow nodes)",
        ["pool", "T_parallel", "speedup", "cpu-imbalance"],
    )
    for kind, s in runs.items():
        table.add(
            kind,
            format_seconds(s.makespan_seconds),
            f"{t_seq / s.makespan_seconds:.1f}",
            f"{s.load_imbalance:.2f}",
        )
    publish(results_dir, "table7_heterogeneity", table.render())

    # The static partition pays for stragglers.
    assert (
        runs["one-slow"].makespan_seconds
        > runs["uniform"].makespan_seconds * 1.2
    )
    assert (
        runs["quarter-slow"].makespan_seconds
        >= runs["one-slow"].makespan_seconds * 0.95
    )
