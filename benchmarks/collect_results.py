#!/usr/bin/env python
"""Collect benchmarks/results/*.txt into docs/RESULTS.md.

Run after ``pytest benchmarks/ --benchmark-only`` to refresh the
committed results document:

    python benchmarks/collect_results.py
"""

from __future__ import annotations

import datetime
from pathlib import Path

ORDER = [
    "table1_db_stats",
    "table2_headline",
    "fig1_speedup",
    "table3_messages",
    "fig2_memory",
    "table4_buffer_sweep",
    "fig3_network",
    "table5_model",
    "table6_partition",
    "table7_heterogeneity",
    "table8_games",
    "table9_linger",
    "table10_scaling",
]


def main() -> None:
    root = Path(__file__).parent
    results = root / "results"
    out = root.parent / "docs" / "RESULTS.md"
    blocks = ["# Benchmark results", "",
              "Rendered output of every exhibit, as produced by",
              "`pytest benchmarks/ --benchmark-only`.", ""]
    missing = []
    for name in ORDER:
        path = results / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        blocks += [f"## {name}", "", "```", path.read_text().rstrip(), "```", ""]
    if missing:
        blocks += [f"*(not yet generated: {', '.join(missing)})*", ""]
    out.write_text("\n".join(blocks))
    print(f"wrote {out} ({len(ORDER) - len(missing)}/{len(ORDER)} exhibits)")


if __name__ == "__main__":
    main()
