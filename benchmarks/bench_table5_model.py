"""Table 5 — analytic model vs discrete-event measurement.

Validates the LogP-style closed form of :mod:`repro.analysis.model`
against the simulator across the processor sweep: predictions within a
small factor mean the measured curves are explained by the cost model,
not by simulation artifacts.
"""

from conftest import SWEEP_STONES, publish

from repro.analysis.model import ModelInput, predict
from repro.analysis.report import Table, format_seconds

PROCS = [2, 8, 32]


def _run(bench):
    report = bench.top_report(SWEEP_STONES)
    rows = []
    for procs in PROCS:
        for cap in (1, 256):
            measured = bench.parallel(
                SWEEP_STONES, n_procs=procs, combining_capacity=cap
            )
            predicted = predict(
                ModelInput(
                    size=report.size,
                    thresholds=report.thresholds,
                    notifications=report.parent_notifications,
                    n_procs=procs,
                    combining_capacity=cap,
                    waves=report.propagation_rounds / report.thresholds,
                )
            )
            rows.append((procs, cap, measured, predicted))
    return rows


def test_table5_model_validation(bench, results_dir, benchmark):
    rows = benchmark.pedantic(_run, args=(bench,), rounds=1, iterations=1)

    table = Table(
        f"Table 5 — analytic model vs simulation ({SWEEP_STONES}-stone database)",
        ["procs", "combining", "T_model", "T_measured", "ratio"],
    )
    ratios = []
    for procs, cap, measured, predicted in rows:
        ratio = predicted.t_parallel / measured.makespan_seconds
        ratios.append(ratio)
        table.add(
            procs,
            "on" if cap > 1 else "off",
            format_seconds(predicted.t_parallel),
            format_seconds(measured.makespan_seconds),
            f"{ratio:.2f}",
        )
    publish(results_dir, "table5_model", table.render())

    # The wave-aware closed form tracks the discrete-event measurement
    # closely across a decade of processor counts and both combining
    # variants (typically within ~15%).
    assert all(0.6 < r < 1.6 for r in ratios), ratios
