"""Table 4 — sensitivity to the combining buffer capacity.

Ablation of the paper's key parameter: tiny buffers degenerate into the
naive algorithm.  The sweet spot sits near the update volume a worker
produces per dependency wave per destination — buffers around that size
ship full packets *mid-wave*, pipelining receivers; much larger buffers
only ever flush at lulls, which costs a few percent.  Beyond the knee
the curve is flat.
"""

from conftest import SWEEP_STONES, publish

from repro.analysis.report import Table, format_seconds

CAPACITIES = [1, 4, 16, 64, 256, 1024, 4096]
PROCS = 16


def _run(bench):
    return {
        cap: bench.parallel(SWEEP_STONES, n_procs=PROCS, combining_capacity=cap)
        for cap in CAPACITIES
    }


def test_table4_buffer_capacity_sweep(bench, results_dir, benchmark):
    runs = benchmark.pedantic(_run, args=(bench,), rounds=1, iterations=1)

    t_seq = bench.t_seq(SWEEP_STONES)
    table = Table(
        f"Table 4 — combining capacity sweep ({SWEEP_STONES}-stone database, "
        f"P = {PROCS})",
        ["capacity", "T_parallel", "speedup", "packets", "factor", "eth-util"],
    )
    for cap, s in runs.items():
        table.add(
            cap,
            format_seconds(s.makespan_seconds),
            f"{t_seq / s.makespan_seconds:.1f}",
            f"{s.packets_sent:,}",
            f"{s.combining_factor:.1f}",
            f"{s.ethernet_utilization:.2f}",
        )
    publish(results_dir, "table4_buffer_sweep", table.render())

    times = {cap: s.makespan_seconds for cap, s in runs.items()}
    # Clear improvement from naive to the knee ...
    assert times[1] > 1.2 * times[16]
    # ... flat beyond it: every capacity >= 16 within 15% of the best.
    best = min(times[c] for c in CAPACITIES if c >= 16)
    for cap in (64, 256, 1024, 4096):
        assert times[cap] < 1.15 * best
    # Any real combining slashes the packet count vs naive.
    for cap in CAPACITIES[1:]:
        assert runs[cap].packets_sent < runs[1].packets_sent / 3
        assert runs[cap].combining_factor > 3.0
