"""Table 1 — awari endgame database statistics.

Reproduces the database-size/content table: positions per stone count and
the win/draw/loss split computed by retrograde analysis.  (Reconstructed
exhibit: the paper reports the databases it computed up to 13 stones; the
position-count column follows C(n+11, 11) exactly.)
"""

from conftest import HEADLINE_STONES, publish

from repro.analysis.report import Table
from repro.db.stats import database_stats
from repro.games.awari_index import AwariIndexer


def _build(bench):
    values, report = bench.sequential(HEADLINE_STONES)
    return values, report


def test_table1_database_statistics(bench, results_dir, benchmark):
    values, report = benchmark.pedantic(_build, args=(bench,), rounds=1, iterations=1)

    table = Table(
        "Table 1 — awari endgame databases (win/draw/loss for the mover)",
        ["stones", "positions", "wins", "draws", "losses", "draw%", "notifications"],
        widths=[8, 12, 10, 9, 10, 8, 15],
    )
    by_id = report.by_id()
    for n in range(HEADLINE_STONES + 1):
        st = database_stats(n, values[n])
        # The combinatorial count must match the closed form.
        assert st.positions == AwariIndexer(n).count
        table.add(
            n,
            f"{st.positions:,}",
            f"{st.wins:,}",
            f"{st.draws:,}",
            f"{st.losses:,}",
            f"{100 * st.draw_fraction:.1f}",
            f"{by_id[n].parent_notifications:,}",
        )
    # Paper-scale context rows (sizes only; values need the full solve).
    for n in (10, 13):
        table.add(n, f"{AwariIndexer(n).count:,}", "-", "-", "-", "-", "-")
    publish(results_dir, "table1_db_stats", table.render())

    # Shape assertions: databases grow by the known combinatorial factor
    # and every database is fully classified.
    for n in range(1, HEADLINE_STONES + 1):
        st = database_stats(n, values[n])
        assert st.wins + st.draws + st.losses == st.positions
