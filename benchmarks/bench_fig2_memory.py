"""Figure 2 — memory per processor vs cluster size.

The paper's second motivation: "an even larger database ... would have
required over 600 MByte of internal memory on a uniprocessor".
Distribution makes per-node memory scale as 1/P.  We measure the modeled
per-node footprint of the benchmark database and extrapolate the same
accounting to paper-scale databases to locate the 600 MB wall.
"""

from conftest import HEADLINE_STONES, publish

from repro.analysis.report import Table, format_bytes, series
from repro.games.awari_index import AwariIndexer

PROCS = [1, 4, 16, 64]

#: Construction-time bytes per position of the 1995-modeled layout,
#: matching RAWorker.MODELED_BYTES_PER_POSITION.
BYTES_PER_POSITION = 12


def _run(bench):
    return {
        procs: bench.parallel(
            HEADLINE_STONES, n_procs=procs, combining_capacity=256
        )
        for procs in PROCS
    }


def test_fig2_memory_distribution(bench, results_dir, benchmark):
    runs = benchmark.pedantic(_run, args=(bench,), rounds=1, iterations=1)

    table = Table(
        f"Figure 2 — measured per-node memory, {HEADLINE_STONES}-stone "
        "database under construction",
        ["procs", "max-node", "total", "vs-uniprocessor"],
    )
    uni = max(runs[1].memory_modeled_bytes_per_node)
    per_node = {}
    for procs, s in runs.items():
        mx = max(s.memory_modeled_bytes_per_node)
        per_node[procs] = mx
        table.add(
            procs,
            format_bytes(mx),
            format_bytes(sum(s.memory_modeled_bytes_per_node)),
            f"{mx / uni:.2f}",
        )

    # Extrapolation: cumulative construction state for databases up to n
    # stones (the under-construction database dominates; replicated
    # smaller databases add one byte per position).
    lines = [table.render(), ""]
    wall_rows = []
    for stones in (13, 15, 17, 18, 19, 20):
        top = AwariIndexer(stones).count
        lower = sum(AwariIndexer(k).count for k in range(stones))
        uni_bytes = BYTES_PER_POSITION * top + lower
        wall_rows.append((stones, uni_bytes))
    ex = Table(
        "Figure 2b — uniprocessor memory extrapolation (construction state)",
        ["stones", "positions", "uniprocessor", "per-node @64"],
    )
    for stones, uni_bytes in wall_rows:
        ex.add(
            stones,
            f"{AwariIndexer(stones).count:,}",
            format_bytes(uni_bytes),
            format_bytes(uni_bytes / 64),
        )
    lines.append(ex.render())
    over = [s for s, b in wall_rows if b > 600e6]
    lines.append("")
    lines.append(
        f"# the paper's 600 MB uniprocessor wall is crossed at "
        f"{over[0] if over else '>20'} stones — the scale of the paper's "
        "'even larger database' (20 hours on 64 processors, many weeks "
        "sequentially); 64-way distribution defers the wall far beyond."
    )
    lines.append(
        series(
            "Figure 2c — max per-node memory vs P (measured)",
            PROCS,
            [per_node[p] / 1e6 for p in PROCS],
            "procs",
            "MB/node",
        )
    )
    publish(results_dir, "fig2_memory", "\n".join(lines))

    # The distributed construction state must scale down as 1/P; the
    # replicated smaller databases are the only non-scaling term.
    lower = sum(AwariIndexer(k).count for k in range(HEADLINE_STONES))
    construction = {p: per_node[p] - lower for p in PROCS}
    assert construction[64] < construction[1] / 32
    assert over and over[0] <= 20
