"""Figure 3 — Ethernet utilization vs processors.

Why efficiency falls below 1: the 10 Mbit/s segment is shared, so the
total update traffic serializes.  Without combining the wire saturates
early (packets are mostly header); with combining the same updates fit in
far less wire time.
"""

from conftest import SWEEP_STONES, publish

from repro.analysis.report import Table, series

PROCS = [2, 4, 8, 16, 32, 64]


def _run(bench):
    util_on, util_off = [], []
    for procs in PROCS:
        s_on = bench.parallel(SWEEP_STONES, n_procs=procs, combining_capacity=256)
        s_off = bench.parallel(SWEEP_STONES, n_procs=procs, combining_capacity=1)
        util_on.append(s_on.ethernet_utilization)
        util_off.append(s_off.ethernet_utilization)
    return util_on, util_off


def test_fig3_network_utilization(bench, results_dir, benchmark):
    util_on, util_off = benchmark.pedantic(
        _run, args=(bench,), rounds=1, iterations=1
    )

    table = Table(
        f"Figure 3 — shared-Ethernet utilization ({SWEEP_STONES}-stone database)",
        ["procs", "combining", "no combining"],
    )
    for p, on, off in zip(PROCS, util_on, util_off):
        table.add(p, f"{on:.2f}", f"{off:.2f}")
    text = "\n".join(
        [
            table.render(),
            "",
            series(
                "Figure 3a — utilization, combining on",
                PROCS, util_on, "procs", "utilization",
            ),
            "",
            series(
                "Figure 3b — utilization, combining off",
                PROCS, util_off, "procs", "utilization",
            ),
        ]
    )
    publish(results_dir, "fig3_network", text)

    # Utilization grows with P in both variants ...
    assert util_on[-1] > util_on[0]
    assert util_off[-1] > util_off[0]
    # ... the naive variant pushes the wire much harder ...
    for on, off in zip(util_on[2:], util_off[2:]):
        assert off > on
    # ... and approaches saturation at 64 processors.
    assert util_off[-1] > 0.7
