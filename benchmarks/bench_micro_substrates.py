"""Micro-benchmarks of the substrates (pytest-benchmark timings).

Not paper exhibits — these track the throughput of the building blocks
the solvers lean on: indexing, move generation, unmove generation, CSR
gathers and the event engine.
"""

import numpy as np
import pytest

from repro.core.graph import CSR
from repro.core.kernel import solve_kernel
from repro.core.wdl import build_wdl_graph, wdl_problem
from repro.games.awari import AwariGame
from repro.games.awari_index import AwariIndexer
from repro.games.nim import NimGame
from repro.simnet.engine import Simulator

N = 8


@pytest.fixture(scope="module")
def indexer():
    return AwariIndexer(N)


@pytest.fixture(scope="module")
def game():
    return AwariGame()


@pytest.fixture(scope="module")
def boards(indexer):
    rng = np.random.default_rng(0)
    return indexer.unrank(rng.integers(0, indexer.count, size=65536))


def test_micro_unrank(benchmark, indexer):
    idx = np.arange(indexer.count, dtype=np.int64)
    out = benchmark(indexer.unrank, idx)
    assert out.shape == (indexer.count, 12)


def test_micro_rank(benchmark, indexer, boards):
    out = benchmark(indexer.rank, boards)
    assert out.shape == (boards.shape[0],)


def test_micro_apply_move(benchmark, game, boards):
    pits = np.zeros(boards.shape[0], dtype=np.int64)
    out = benchmark(game.apply_move, boards, pits)
    assert out.boards.shape == boards.shape


def test_micro_unmove(benchmark, game, boards):
    sample = boards[:2048]
    rows, preds = benchmark(game.noncapture_predecessors, sample, N)
    assert rows.shape[0] == preds.shape[0]


def test_micro_csr_gather(benchmark):
    rng = np.random.default_rng(1)
    csr = CSR.from_edges(100_000, rng.integers(0, 100_000, 500_000),
                         rng.integers(0, 100_000, 500_000))
    idx = rng.integers(0, 100_000, 10_000)
    rows, nbrs = benchmark(csr.neighbors_of, idx)
    assert rows.shape == nbrs.shape


def test_micro_event_engine(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 20_000


def test_micro_wdl_kernel(benchmark):
    game = NimGame(heaps=3, cap=9)
    graph = build_wdl_graph(game)

    def run():
        return solve_kernel(wdl_problem(graph))

    result = benchmark(run)
    assert result.finalized == game.size  # nim has no draws
