"""Codec footprint — on-disk and in-cache bytes per codec, at scale.

The paper's premise is fitting the endgame database in (distributed)
RAM; the packed codec's claim is that a nibble-width game needs a
quarter of the int16 bytes everywhere it is stored: on disk, in the
block cache, and across shards.  This bench builds a nibble-width
database set of ~1.35M positions (the value distribution skewed toward
draws, like real solved sets), pages it under all four codecs, and
measures:

* on-disk ``stored_bytes`` per codec — packed must be >= 4x smaller
  than raw int16;
* in-cache footprint — the ``packed_resident_bytes`` gauge against the
  decompressed ``resident_bytes`` for the same working set, >= 4x
  again;
* probe throughput through the cached paged backend — packed must stay
  within 20% of the zlib codec (it usually wins: bit-unpack is cheaper
  than inflate).

Published as a rendered table plus ``results/codec_footprint.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np
from conftest import publish

from repro.analysis.report import Table, format_bytes
from repro.db.store import DatabaseSet
from repro.serve.pagedstore import CODECS, write_paged
from repro.serve.service import ProbeService

#: ~1.35M positions across a handful of databases, mirroring the sizes
#: growing with database id like a real solved-game ladder.
DB_SIZES = {9: 50_000, 10: 150_000, 11: 350_000, 12: 800_000}
TOTAL_POSITIONS = sum(DB_SIZES.values())

BLOCK_POSITIONS = 4096
N_PROBES = 120_000
BATCH = 256

#: Cache budget for the throughput round: 256 decompressed blocks.
CACHE_BYTES = 256 * BLOCK_POSITIONS * 2

#: Floors asserted (the issue's acceptance criteria).
MIN_FOOTPRINT_REDUCTION = 4.0
MIN_THROUGHPUT_VS_ZLIB = 0.8


def _nibble_dbs(seed: int = 13) -> DatabaseSet:
    """A nibble-width value set: values in [-7, 7], heavily drawish."""
    rng = np.random.default_rng(seed)
    span = np.arange(-7, 8)
    # Draws dominate, decisive values thin out — the shape zlib sees in
    # real solved databases, so its measured ratio is honest.
    weights = 1.0 / (1.0 + np.abs(span)) ** 2
    weights /= weights.sum()
    values = {
        db_id: rng.choice(span, size=n, p=weights).astype(np.int16)
        for db_id, n in DB_SIZES.items()
    }
    return DatabaseSet(game_name="awari", values=values, rules="bench")


def _workload(dbs: DatabaseSet, n: int, seed: int = 29) -> list:
    rng = np.random.default_rng(seed)
    ids = dbs.ids()
    sizes = np.array([dbs[i].shape[0] for i in ids], dtype=np.float64)
    db_draw = rng.choice(len(ids), size=n, p=sizes / sizes.sum())
    u = rng.random(n) ** 2
    return [
        (ids[d], int(u[k] * dbs[ids[d]].shape[0]))
        for k, d in enumerate(db_draw)
    ]


def test_codec_footprint(results_dir, tmp_path):
    dbs = _nibble_dbs()
    assert dbs.total_positions == TOTAL_POSITIONS >= 1_350_000
    workload = _workload(dbs, N_PROBES)
    expected = np.array([int(dbs[d][i]) for d, i in workload], dtype=np.int16)

    rows = {}
    for codec in CODECS:
        path = tmp_path / f"{codec.replace('+', '-')}.pgdb"
        summary = write_paged(
            dbs, path, block_positions=BLOCK_POSITIONS, codec=codec
        )
        service = ProbeService.from_paged(path, cache_bytes=CACHE_BYTES)
        got = []
        t0 = time.perf_counter()
        for start in range(0, N_PROBES, BATCH):
            got.append(service.probe_many(workload[start : start + BATCH]))
        seconds = time.perf_counter() - t0
        np.testing.assert_array_equal(np.concatenate(got), expected)
        stats = service.stats()
        service.close()
        rows[codec] = {
            "codec": codec,
            "stored_bytes": summary["stored_bytes"],
            "file_bytes": summary["file_bytes"],
            "stored_ratio": summary["stored_ratio"],
            "resident_bytes": stats["resident_bytes"],
            "packed_resident_bytes": stats["packed_resident_bytes"],
            "hit_rate": stats["hit_rate"],
            "throughput_pps": N_PROBES / seconds,
        }

    raw, packed = rows["raw"], rows["packed"]
    disk_reduction = raw["stored_bytes"] / packed["stored_bytes"]
    cache_reduction = (
        packed["resident_bytes"] / packed["packed_resident_bytes"]
    )
    throughput_vs_zlib = (
        packed["throughput_pps"] / rows["zlib"]["throughput_pps"]
    )

    table = Table(
        f"codec footprint — nibble-width set, {TOTAL_POSITIONS:,} "
        f"positions, {BLOCK_POSITIONS}-position blocks",
        ["codec", "on-disk", "vs raw", "cache-resident", "probes/s"],
    )
    for codec in CODECS:
        r = rows[codec]
        table.add(
            codec,
            format_bytes(r["stored_bytes"]),
            f"{raw['stored_bytes'] / r['stored_bytes']:.2f}x",
            format_bytes(r["packed_resident_bytes"]),
            f"{r['throughput_pps']:,.0f}",
        )
    lines = [table.render(), ""]
    lines.append(
        f"# packed vs raw: {disk_reduction:.2f}x on disk, "
        f"{cache_reduction:.2f}x in cache; packed throughput "
        f"{100 * throughput_vs_zlib:.0f}% of zlib"
    )
    publish(results_dir, "codec_footprint", "\n".join(lines))

    result = {
        "schema": "repro/codec-footprint/v1",
        "positions": TOTAL_POSITIONS,
        "block_positions": BLOCK_POSITIONS,
        "n_probes": N_PROBES,
        "cache_bytes": CACHE_BYTES,
        "codecs": [rows[c] for c in CODECS],
        "disk_reduction_vs_raw": disk_reduction,
        "cache_reduction": cache_reduction,
        "throughput_vs_zlib": throughput_vs_zlib,
    }
    (results_dir / "codec_footprint.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    assert disk_reduction >= MIN_FOOTPRINT_REDUCTION
    assert cache_reduction >= MIN_FOOTPRINT_REDUCTION
    assert throughput_vs_zlib >= MIN_THROUGHPUT_VS_ZLIB
