"""Table 9 — flush-linger sensitivity (extension ablation).

The linger is our reconstruction of "send partial buffers when the
worker runs out of other work": 0 flushes instantly at every lull
(scattering wave boundaries into tiny packets), large values delay the
critical path.  The sweet spot sits around a few message times.
"""

from conftest import SWEEP_STONES, publish

from repro.analysis.report import Table, format_seconds

LINGERS = [0.0, 1e-3, 5e-3, 20e-3, 100e-3]
PROCS = 32


def _run(bench):
    return {
        linger: bench.parallel(
            SWEEP_STONES,
            n_procs=PROCS,
            combining_capacity=256,
            flush_linger=linger,
        )
        for linger in LINGERS
    }


def test_table9_linger_sweep(bench, results_dir, benchmark):
    runs = benchmark.pedantic(_run, args=(bench,), rounds=1, iterations=1)

    t_seq = bench.t_seq(SWEEP_STONES)
    table = Table(
        f"Table 9 — flush-linger sweep ({SWEEP_STONES}-stone database, "
        f"P = {PROCS}, capacity 256)",
        ["linger", "T_parallel", "speedup", "packets", "factor"],
    )
    for linger, s in runs.items():
        table.add(
            format_seconds(linger) if linger else "0",
            format_seconds(s.makespan_seconds),
            f"{t_seq / s.makespan_seconds:.1f}",
            f"{s.packets_sent:,}",
            f"{s.combining_factor:.1f}",
        )
    publish(results_dir, "table9_linger", table.render())

    # With the single-pass propagation the buffers stay busy on their
    # own, so performance is robust across 0-20 ms (the linger mostly
    # paces termination probing); only extreme lingers stall the
    # critical path.
    best = min(s.makespan_seconds for s in runs.values())
    for linger in (0.0, 1e-3, 5e-3, 20e-3):
        assert runs[linger].makespan_seconds < 1.15 * best
    assert runs[100e-3].makespan_seconds > runs[1e-3].makespan_seconds
    # Longer lingers combine (weakly) better.
    assert runs[100e-3].combining_factor >= runs[0.0].combining_factor
