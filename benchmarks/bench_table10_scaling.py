"""Table 10 — strong scaling limits and isoefficiency (extension).

The classic HPC framing of the paper's result: for a fixed database,
where does adding processors stop paying, and how fast must the database
grow to keep 64 machines busy?  Computed from the validated analytic
model (Table 5) at the notification rate measured on the solved
databases.
"""

from conftest import HEADLINE_STONES, publish

from repro.analysis.model import ModelInput
from repro.analysis.scaling import isoefficiency, strong_scaling_limit
from repro.analysis.report import Table
from repro.games.awari_index import AwariIndexer


def _base(bench) -> ModelInput:
    report = bench.top_report(HEADLINE_STONES)
    return ModelInput(
        size=report.size,
        thresholds=report.thresholds,
        notifications=report.parent_notifications,
        n_procs=1,
        waves=report.propagation_rounds / report.thresholds,
    )


def test_table10_scaling_limits(bench, results_dir, benchmark):
    base = benchmark.pedantic(_base, args=(bench,), rounds=1, iterations=1)

    points, limit = strong_scaling_limit(base, efficiency_floor=0.5)
    strong = Table(
        f"Table 10a — strong scaling of the {HEADLINE_STONES}-stone database "
        "(analytic model)",
        ["procs", "speedup", "efficiency"],
    )
    for pt in points:
        strong.add(pt.procs, f"{pt.speedup:.1f}", f"{pt.efficiency:.2f}")

    iso = isoefficiency(base, target_efficiency=0.75)
    iso_table = Table(
        "Table 10b — isoefficiency: positions needed for 75% efficiency",
        ["procs", "required positions", "~awari stones"],
    )
    for procs, size in iso:
        stones = next(
            (n for n in range(1, 30) if AwariIndexer(n).count >= size), 30
        )
        iso_table.add(procs, f"{size:,}", stones)

    text = "\n".join(
        [
            strong.render(),
            "",
            iso_table.render(),
            "",
            f"# adding processors past P={limit} drops efficiency below 50% "
            "for this database;",
            "# the paper ran its 64 machines on a 33x larger database — "
            "right where the isoefficiency curve says they pay off.",
        ]
    )
    publish(results_dir, "table10_scaling", text)

    # Efficiency decreases monotonically with P for a fixed workload.
    effs = [pt.efficiency for pt in points]
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
    # Bigger clusters need bigger databases.
    sizes = [size for _, size in iso]
    assert all(b >= a for a, b in zip(sizes, sizes[1:]))
    # 64 processors are justified by paper-scale databases.
    need_64 = dict(iso)[64]
    assert need_64 > base.size / 4