"""Table 2 — the headline result.

Paper (abstract): the large awari database took 50 minutes on 64
processors vs 40 hours on one machine — speedup 48.

We run the same algorithm on the simulated 64-node Ethernet pool at
benchmark scale (8 stones) and report measured speedups, then extrapolate
the calibrated cost model to the paper's 13-stone workload for the
paper-vs-model comparison recorded in EXPERIMENTS.md.
"""

from conftest import HEADLINE_STONES, publish

from repro.analysis.calibration import (
    PAPER_HEADLINE,
    PAPER_SECOND_HEADLINE,
    headline_table,
    second_headline_table,
)
from repro.analysis.model import ModelInput, predict
from repro.analysis.report import Table, format_seconds

PROCS = [1, 4, 16, 64]


def _run(bench):
    rows = []
    t_seq = bench.t_seq(HEADLINE_STONES)
    for procs in PROCS:
        stats = bench.parallel(
            HEADLINE_STONES, n_procs=procs, combining_capacity=256
        )
        rows.append((procs, t_seq, stats))
    return rows


def test_table2_headline(bench, results_dir, benchmark):
    rows = benchmark.pedantic(_run, args=(bench,), rounds=1, iterations=1)

    table = Table(
        f"Table 2 — headline runtimes, awari {HEADLINE_STONES}-stone database "
        "(simulated 1995 cluster, combining on)",
        ["procs", "T_parallel", "speedup", "efficiency", "combining", "eth-util"],
    )
    t_seq = rows[0][1]
    speedups = {}
    for procs, _, stats in rows:
        speedup = t_seq / stats.makespan_seconds
        speedups[procs] = speedup
        table.add(
            procs,
            format_seconds(stats.makespan_seconds),
            f"{speedup:.1f}",
            f"{speedup / procs:.2f}",
            f"{stats.combining_factor:.1f}",
            f"{stats.ethernet_utilization:.2f}",
        )

    # Extrapolate the calibrated model to the paper's 13-stone workload.
    _, report = bench.sequential(HEADLINE_STONES)
    measured = [r for r in report.databases if r.thresholds]
    extra = headline_table(measured)
    pred = predict(
        ModelInput(
            size=extra["target_positions"],
            thresholds=13,
            notifications=extra["predicted_notifications"],
            n_procs=64,
        )
    )
    lines = [
        table.render(),
        "",
        "# extrapolation to the paper's 13-stone database "
        "(calibrated cost model)",
        f"  positions: {extra['target_positions']:,}",
        f"  model sequential time : {extra['sequential_hours_model']:.1f} h "
        f"(paper: {PAPER_HEADLINE['sequential_hours']:.0f} h)",
        f"  model 64-proc time    : {pred.t_parallel / 60:.0f} min "
        f"(paper: {PAPER_HEADLINE['parallel_minutes']:.0f} min)",
        f"  model speedup         : {pred.speedup:.0f} "
        f"(paper: {PAPER_HEADLINE['speedup']:.0f})",
    ]
    second = second_headline_table(measured)
    lines += [
        "",
        "# the 'even larger database' claim, reconstructed as "
        f"{second['stones']} stones ({second['positions']:,} positions)",
        f"  model 64-proc time    : {second['parallel_hours_model']:.0f} h "
        f"(paper: {PAPER_SECOND_HEADLINE['parallel_hours']:.0f} h)",
        f"  model sequential time : {second['sequential_weeks_model']:.1f} weeks "
        f"(paper: 'many weeks')",
        f"  model uniprocessor mem: {second['memory_mbytes_model']:.0f} MB "
        f"(paper: > {PAPER_SECOND_HEADLINE['memory_wall_mbytes']:.0f} MB)",
    ]
    publish(results_dir, "table2_headline", "\n".join(lines))

    # Shape assertions: near-linear at small P, strong speedup at 64.
    assert speedups[4] > 3.0
    assert speedups[64] > 25.0
    assert (
        0.3 * PAPER_HEADLINE["sequential_hours"]
        < extra["sequential_hours_model"]
        < 3 * PAPER_HEADLINE["sequential_hours"]
    )
