"""Shared fixtures for the benchmark harness.

The heavy ingredients — the sequential solve and the simulated parallel
runs — are memoized per session so benchmarks that share a configuration
(e.g. Figure 1 and Figure 3 both sweep processor counts) pay for it once.
Every benchmark writes its rendered table/series to
``benchmarks/results/<name>.txt`` in addition to stdout, so the output
survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.calibration import sequential_seconds
from repro.core.parallel.driver import ParallelConfig, ParallelSolver
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame

RESULTS_DIR = Path(__file__).parent / "results"

#: Default stone counts for the benchmark workloads.  8 gives ~75k
#: positions / ~780k updates — big enough for the paper's effects to show,
#: small enough for the whole harness to run in minutes.
HEADLINE_STONES = 8
SWEEP_STONES = 7


class Workbench:
    """Memoizing façade over the solvers."""

    def __init__(self):
        self.game = AwariCaptureGame()
        self._seq_values = {}
        self._seq_reports = {}
        self._runs = {}

    # ------------------------------------------------------------ sequential

    def sequential(self, stones: int):
        if stones not in self._seq_values:
            solver = SequentialSolver(self.game)
            values, report = solver.solve(stones)
            self._seq_values[stones] = values
            self._seq_reports[stones] = report
        return self._seq_values[stones], self._seq_reports[stones]

    def t_seq(self, stones: int) -> float:
        """Calibrated simulated uniprocessor seconds for the top database."""
        _, report = self.sequential(stones)
        r = report.by_id()[stones]
        return sequential_seconds(r.size, r.thresholds, r.parent_notifications)

    def top_report(self, stones: int):
        _, report = self.sequential(stones)
        return report.by_id()[stones]

    # -------------------------------------------------------------- parallel

    def parallel(self, stones: int, **kwargs):
        """Run (or recall) one simulated parallel construction of the
        ``stones`` database; returns its DatabaseRunStats."""
        key = (stones, tuple(sorted(kwargs.items())))
        if key not in self._runs:
            values, _ = self.sequential(stones)
            lower = {n: values[n] for n in range(stones)}
            cfg = ParallelConfig(predecessor_mode="unmove-cached", **kwargs)
            out, stats = ParallelSolver(self.game, cfg).solve_database(
                stones, lower, max_events=50_000_000
            )
            np.testing.assert_array_equal(
                out, values[stones], err_msg="parallel diverged from sequential"
            )
            self._runs[key] = stats
        return self._runs[key]


def pytest_addoption(parser):
    """Benchmark-harness options (pytest rootdir = benchmarks/)."""
    parser.addoption(
        "--protocol", action="append", default=None,
        choices=("json", "binary", "local"),
        help="restrict the serve protocol comparison to these protocols "
             "(repeatable; default: all three)",
    )


@pytest.fixture(scope="session")
def protocols(request) -> tuple:
    """Protocols selected via ``--protocol`` (all three by default)."""
    chosen = request.config.getoption("--protocol")
    return tuple(chosen) if chosen else ("json", "binary", "local")


@pytest.fixture(scope="session")
def bench() -> Workbench:
    return Workbench()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered exhibit and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
