"""Figure 1 — speedup vs processors, with and without message combining.

The paper's central figure: naive one-message-per-update parallelization
drowns in communication overhead; message combining restores near-linear
scaling until the shared Ethernet saturates.
"""

from conftest import SWEEP_STONES, publish

from repro.analysis.report import Table, series

PROCS = [1, 2, 4, 8, 16, 32, 64]


def _run(bench):
    t_seq = bench.t_seq(SWEEP_STONES)
    combining, naive = [], []
    for procs in PROCS:
        s_on = bench.parallel(SWEEP_STONES, n_procs=procs, combining_capacity=256)
        s_off = bench.parallel(SWEEP_STONES, n_procs=procs, combining_capacity=1)
        combining.append(t_seq / s_on.makespan_seconds)
        naive.append(t_seq / s_off.makespan_seconds)
    return t_seq, combining, naive


def test_fig1_speedup_curves(bench, results_dir, benchmark):
    t_seq, combining, naive = benchmark.pedantic(
        _run, args=(bench,), rounds=1, iterations=1
    )

    table = Table(
        f"Figure 1 — speedup vs processors ({SWEEP_STONES}-stone database, "
        f"T_seq = {t_seq:.0f}s simulated)",
        ["procs", "combining", "no combining", "advantage"],
    )
    for p, on, off in zip(PROCS, combining, naive):
        table.add(p, f"{on:.1f}", f"{off:.1f}", f"{on / off:.1f}x")
    text = "\n".join(
        [
            table.render(),
            "",
            series(
                "Figure 1a — speedup with message combining",
                PROCS,
                combining,
                "procs",
                "speedup",
            ),
            "",
            series(
                "Figure 1b — speedup without combining (naive)",
                PROCS,
                naive,
                "procs",
                "speedup",
            ),
        ]
    )
    publish(results_dir, "fig1_speedup", text)

    # Shape assertions — the paper's qualitative claims.
    # 1. Combining always wins beyond one processor.
    for p, on, off in zip(PROCS[1:], combining[1:], naive[1:]):
        assert on > off, f"combining lost at P={p}"
    # 2. The naive variant saturates the shared wire: its speedup
    #    plateaus between 32 and 64 processors at poor efficiency.
    assert naive[-1] < naive[-2] * 1.25
    assert naive[-1] < 0.35 * PROCS[-1]
    # 3. Combining keeps scaling to 64 processors (>= 3x the naive
    #    variant there) ...
    assert combining[-1] > combining[-3]
    assert combining[-1] > 2.5 * naive[-1]
    # 4. ... and its speedup is monotone in P.
    assert all(b >= a * 0.95 for a, b in zip(combining, combining[1:]))
