"""Serving throughput — probes/second and cache hit-rate vs cache budget.

The load generator replays a skewed probe workload (a Zipf-like mix over
all databases, hot positions probed repeatedly — the shape of a midgame
searcher hammering the endgame databases) against a paged store at a
sweep of cache budgets, from "a few blocks" to "everything fits".  A
TCP round measures the same workload end to end through the wire
protocol.  Results are published both as a rendered table and as
``results/serve_throughput.json`` for downstream tooling.
"""

from __future__ import annotations

import json
import time

import numpy as np
from conftest import SWEEP_STONES, publish

from repro.analysis.report import Table, format_bytes
from repro.db.store import DatabaseSet
from repro.serve.client import ProbeClient
from repro.serve.pagedstore import write_paged
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService

BLOCK_POSITIONS = 512
N_PROBES = 60_000
BATCH = 256
TCP_PROBES = 8_192  # a multiple of BATCH

#: Cache budgets swept, in blocks (512 positions * 2 bytes = 1 KiB each).
BUDGET_BLOCKS = [2, 8, 32, 128, 512]


def _workload(dbs: DatabaseSet, n: int, seed: int = 17) -> list:
    """A skewed (db, index) stream: hot databases, hot positions."""
    rng = np.random.default_rng(seed)
    ids = dbs.ids()
    sizes = np.array([dbs[i].shape[0] for i in ids], dtype=np.float64)
    weights = sizes / sizes.sum()  # big databases draw most traffic
    db_draw = rng.choice(len(ids), size=n, p=weights)
    # Zipf-ish position skew: squaring a uniform concentrates near 0.
    u = rng.random(n) ** 2
    return [
        (ids[d], int(u[k] * dbs[ids[d]].shape[0]))
        for k, d in enumerate(db_draw)
    ]


def _drive(service: ProbeService, workload: list):
    """(elapsed seconds, all probed values) for one batched sweep."""
    got = []
    t0 = time.perf_counter()
    for start in range(0, len(workload), BATCH):
        got.append(service.probe_many(workload[start : start + BATCH]))
    return time.perf_counter() - t0, np.concatenate(got)


def test_serve_throughput(bench, results_dir, tmp_path, benchmark):
    values, _ = bench.sequential(SWEEP_STONES)
    dbs = DatabaseSet(
        game_name=bench.game.name,
        values=values,
        rules=bench.game.rules.describe(),
    )
    path = tmp_path / "bench.pgdb"
    summary = write_paged(dbs, path, block_positions=BLOCK_POSITIONS)
    workload = _workload(dbs, N_PROBES)
    expected = np.array(
        [int(dbs[d][i]) for d, i in workload], dtype=np.int16
    )

    block_bytes = BLOCK_POSITIONS * 2
    rows = []
    for blocks in BUDGET_BLOCKS:
        budget = blocks * block_bytes
        service = ProbeService.from_paged(path, cache_bytes=budget)
        if blocks == BUDGET_BLOCKS[0]:
            seconds, got = benchmark.pedantic(
                _drive, args=(service, workload), rounds=1, iterations=1
            )
        else:
            seconds, got = _drive(service, workload)
        np.testing.assert_array_equal(got, expected)
        stats = service.stats()
        rows.append(
            {
                "budget_bytes": budget,
                "budget_blocks": blocks,
                "throughput_pps": N_PROBES / seconds,
                "hit_rate": stats["hit_rate"],
                "evictions": stats["evictions"],
                "peak_resident_bytes": stats["peak_resident_bytes"],
            }
        )
        service.close()

    # One TCP end-to-end round at the largest budget.
    service = ProbeService.from_paged(
        path, cache_bytes=BUDGET_BLOCKS[-1] * block_bytes
    )
    with ProbeServer(service) as server:
        with ProbeClient(server.host, server.port) as client:
            t0 = time.perf_counter()
            got = []
            for start in range(0, TCP_PROBES, BATCH):
                got.append(
                    client.probe_many(workload[start : start + BATCH])
                )
            tcp_seconds = time.perf_counter() - t0
            mismatches = int(
                (np.concatenate(got) != expected[:TCP_PROBES]).sum()
            )
    service.close()
    assert mismatches == 0

    table = Table(
        f"serving throughput — {SWEEP_STONES}-stone awari set "
        f"({summary['positions']:,} positions, "
        f"{format_bytes(summary['data_bytes'])} paged, "
        f"{format_bytes(block_bytes)} blocks)",
        ["budget", "hit%", "evictions", "probes/s", "peak-resident"],
    )
    for row in rows:
        table.add(
            format_bytes(row["budget_bytes"]),
            f"{100 * row['hit_rate']:.1f}",
            f"{row['evictions']:,}",
            f"{row['throughput_pps']:,.0f}",
            format_bytes(row["peak_resident_bytes"]),
        )
    lines = [table.render(), ""]
    lines.append(
        f"# TCP end-to-end: {TCP_PROBES:,} probes in batches of {BATCH} -> "
        f"{TCP_PROBES / tcp_seconds:,.0f} probes/s, 0 mismatches"
    )
    publish(results_dir, "serve_throughput", "\n".join(lines))

    result = {
        "schema": "repro/serve-throughput/v1",
        "stones": SWEEP_STONES,
        "positions": summary["positions"],
        "block_positions": BLOCK_POSITIONS,
        "paged_bytes": summary["file_bytes"],
        "n_probes": N_PROBES,
        "batch": BATCH,
        "sweep": rows,
        "tcp": {
            "n_probes": TCP_PROBES,
            "throughput_pps": TCP_PROBES / tcp_seconds,
            "mismatches": mismatches,
        },
    }
    (results_dir / "serve_throughput.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    # Hit rate must rise monotonically with budget and the peak resident
    # bytes must respect budget + one block at every point of the sweep.
    hit_rates = [row["hit_rate"] for row in rows]
    assert all(b >= a - 1e-9 for a, b in zip(hit_rates, hit_rates[1:]))
    for row in rows:
        assert row["peak_resident_bytes"] <= row["budget_bytes"] + block_bytes
