"""Serving throughput — probes/second and cache hit-rate vs cache budget.

The load generator replays a skewed probe workload (a Zipf-like mix over
all databases, hot positions probed repeatedly — the shape of a midgame
searcher hammering the endgame databases) against a paged store at a
sweep of cache budgets, from "a few blocks" to "everything fits".  A
TCP round measures the same workload end to end through the wire
protocol.  Results are published both as a rendered table and as
``results/serve_throughput.json`` for downstream tooling.

``test_serve_protocol_comparison`` races the three probe transports —
legacy JSON TCP, the binary protocol of :mod:`repro.aserve` (with a
pipelining-depth sweep), and the zero-copy mmap local path — over the
identical workload, verifies every answer against the oracle, soaks the
asyncio server under ~10k concurrent connections, and publishes
``results/serve_binary.json``.  Restrict it with ``--protocol
json|binary|local`` (repeatable).
"""

from __future__ import annotations

import json
import resource
import socket
import struct
import time

import numpy as np
from conftest import SWEEP_STONES, publish

from repro.analysis.report import Table, format_bytes
from repro.aserve import frames
from repro.aserve.client import BinaryProbeClient
from repro.aserve.local import LocalProbeClient
from repro.aserve.server import AsyncProbeServer
from repro.db.store import DatabaseSet
from repro.serve.client import ProbeClient
from repro.serve.pagedstore import write_paged
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService

BLOCK_POSITIONS = 512
N_PROBES = 60_000
BATCH = 256
TCP_PROBES = 8_192  # a multiple of BATCH

#: Cache budgets swept, in blocks (512 positions * 2 bytes = 1 KiB each).
BUDGET_BLOCKS = [2, 8, 32, 128, 512]

#: Batches concurrently in flight per connection in the binary sweep.
PIPELINE_DEPTHS = [1, 4, 16, 64]

#: Probes per protocol round in the comparison (a multiple of BATCH).
COMPARE_PROBES = 65_536

#: Concurrent-connection soak target (trimmed to the fd soft limit).
SOAK_TARGET = 10_000

#: Probes per bulk frame — the binary format's headline mode: one
#: probe_many frame carrying the whole workload as packed records.
BULK_BATCH = 65_536

#: Floor asserted on best-binary vs best-JSON speedup.  Measured ~8x on
#: a loopback single-core container (binary bulk frame ~2.0M probes/s
#: against JSON's best ~256k at its optimal batch); 5 is the issue's
#: target with headroom for noisy CI neighbours.
MIN_BINARY_SPEEDUP = 5.0


def _workload(dbs: DatabaseSet, n: int, seed: int = 17) -> list:
    """A skewed (db, index) stream: hot databases, hot positions."""
    rng = np.random.default_rng(seed)
    ids = dbs.ids()
    sizes = np.array([dbs[i].shape[0] for i in ids], dtype=np.float64)
    weights = sizes / sizes.sum()  # big databases draw most traffic
    db_draw = rng.choice(len(ids), size=n, p=weights)
    # Zipf-ish position skew: squaring a uniform concentrates near 0.
    u = rng.random(n) ** 2
    return [
        (ids[d], int(u[k] * dbs[ids[d]].shape[0]))
        for k, d in enumerate(db_draw)
    ]


def _drive(service: ProbeService, workload: list):
    """(elapsed seconds, all probed values) for one batched sweep."""
    got = []
    t0 = time.perf_counter()
    for start in range(0, len(workload), BATCH):
        got.append(service.probe_many(workload[start : start + BATCH]))
    return time.perf_counter() - t0, np.concatenate(got)


def test_serve_throughput(bench, results_dir, tmp_path, benchmark):
    values, _ = bench.sequential(SWEEP_STONES)
    dbs = DatabaseSet(
        game_name=bench.game.name,
        values=values,
        rules=bench.game.rules.describe(),
    )
    path = tmp_path / "bench.pgdb"
    summary = write_paged(dbs, path, block_positions=BLOCK_POSITIONS)
    workload = _workload(dbs, N_PROBES)
    expected = np.array(
        [int(dbs[d][i]) for d, i in workload], dtype=np.int16
    )

    block_bytes = BLOCK_POSITIONS * 2
    rows = []
    for blocks in BUDGET_BLOCKS:
        budget = blocks * block_bytes
        service = ProbeService.from_paged(path, cache_bytes=budget)
        if blocks == BUDGET_BLOCKS[0]:
            seconds, got = benchmark.pedantic(
                _drive, args=(service, workload), rounds=1, iterations=1
            )
        else:
            seconds, got = _drive(service, workload)
        np.testing.assert_array_equal(got, expected)
        stats = service.stats()
        rows.append(
            {
                "budget_bytes": budget,
                "budget_blocks": blocks,
                "throughput_pps": N_PROBES / seconds,
                "hit_rate": stats["hit_rate"],
                "evictions": stats["evictions"],
                "peak_resident_bytes": stats["peak_resident_bytes"],
            }
        )
        service.close()

    # One TCP end-to-end round at the largest budget.
    service = ProbeService.from_paged(
        path, cache_bytes=BUDGET_BLOCKS[-1] * block_bytes
    )
    with ProbeServer(service) as server:
        with ProbeClient(server.host, server.port) as client:
            t0 = time.perf_counter()
            got = []
            for start in range(0, TCP_PROBES, BATCH):
                got.append(
                    client.probe_many(workload[start : start + BATCH])
                )
            tcp_seconds = time.perf_counter() - t0
            mismatches = int(
                (np.concatenate(got) != expected[:TCP_PROBES]).sum()
            )
    service.close()
    assert mismatches == 0

    table = Table(
        f"serving throughput — {SWEEP_STONES}-stone awari set "
        f"({summary['positions']:,} positions, "
        f"{format_bytes(summary['stored_bytes'])} paged, "
        f"{format_bytes(block_bytes)} blocks)",
        ["budget", "hit%", "evictions", "probes/s", "peak-resident"],
    )
    for row in rows:
        table.add(
            format_bytes(row["budget_bytes"]),
            f"{100 * row['hit_rate']:.1f}",
            f"{row['evictions']:,}",
            f"{row['throughput_pps']:,.0f}",
            format_bytes(row["peak_resident_bytes"]),
        )
    lines = [table.render(), ""]
    lines.append(
        f"# TCP end-to-end: {TCP_PROBES:,} probes in batches of {BATCH} -> "
        f"{TCP_PROBES / tcp_seconds:,.0f} probes/s, 0 mismatches"
    )
    publish(results_dir, "serve_throughput", "\n".join(lines))

    result = {
        "schema": "repro/serve-throughput/v1",
        "stones": SWEEP_STONES,
        "positions": summary["positions"],
        "block_positions": BLOCK_POSITIONS,
        "paged_bytes": summary["file_bytes"],
        "n_probes": N_PROBES,
        "batch": BATCH,
        "sweep": rows,
        "tcp": {
            "n_probes": TCP_PROBES,
            "throughput_pps": TCP_PROBES / tcp_seconds,
            "mismatches": mismatches,
        },
    }
    (results_dir / "serve_throughput.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    # Hit rate must rise monotonically with budget and the peak resident
    # bytes must respect budget + one block at every point of the sweep.
    hit_rates = [row["hit_rate"] for row in rows]
    assert all(b >= a - 1e-9 for a, b in zip(hit_rates, hit_rates[1:]))
    for row in rows:
        assert row["peak_resident_bytes"] <= row["budget_bytes"] + block_bytes


def _timed_batches(probe_many, workload, n, batch=BATCH):
    """(probes/s, probed values in request order) for one sequential
    sweep of the first ``n`` workload probes in ``batch``-probe calls."""
    got = []
    t0 = time.perf_counter()
    for start in range(0, n, batch):
        got.append(probe_many(workload[start : start + batch]))
    seconds = time.perf_counter() - t0
    return n / seconds, np.concatenate(got)


def _soak_connections(server, target: int) -> dict:
    """Open ``target`` concurrent connections (trimmed to the fd soft
    limit — both ends live in this process, so each connection costs two
    descriptors), ping every one of them over the binary protocol while
    all are open, and close them; returns the soak summary."""
    soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
    n = max(min(target, (soft - 512) // 2), 1)
    socks, errors = [], 0
    try:
        for i in range(n):
            sock = socket.create_connection(
                (server.host, server.port), timeout=30.0
            )
            sock.sendall(frames.pack_frame(frames.encode_ping(i)))
            socks.append(sock)
        for i, sock in enumerate(socks):
            head = b""
            while len(head) < 4:
                head += sock.recv(4 - len(head))
            (length,) = struct.unpack(">I", head)
            payload = b""
            while len(payload) < length:
                payload += sock.recv(length - len(payload))
            response = frames.decode_response(payload)
            if response.seq != i or response.error is not None:
                errors += 1
    finally:
        for sock in socks:
            sock.close()
    return {"connections": len(socks), "target": target, "errors": errors}


def test_serve_protocol_comparison(bench, results_dir, protocols, tmp_path):
    """JSON vs binary (pipelined) vs mmap over the identical workload,
    every answer verified, plus the concurrent-connection soak."""
    values, _ = bench.sequential(SWEEP_STONES)
    dbs = DatabaseSet(
        game_name=bench.game.name,
        values=values,
        rules=bench.game.rules.describe(),
    )
    zlib_path = tmp_path / "bench-zlib.pgdb"
    raw_path = tmp_path / "bench-raw.pgdb"
    write_paged(dbs, zlib_path, block_positions=BLOCK_POSITIONS)
    write_paged(dbs, raw_path, block_positions=BLOCK_POSITIONS, codec="raw")
    workload = _workload(dbs, COMPARE_PROBES)
    expected = np.array(
        [int(dbs[d][i]) for d, i in workload], dtype=np.int16
    )
    cache_bytes = BUDGET_BLOCKS[-1] * BLOCK_POSITIONS * 2
    rows: list[dict] = []

    def record(protocol, mode, pps, got):
        mismatches = int((got != expected[: got.shape[0]]).sum())
        rows.append(
            {"protocol": protocol, "mode": mode, "throughput_pps": pps,
             "mismatches": mismatches}
        )

    if "json" in protocols:
        service = ProbeService.from_paged(zlib_path, cache_bytes=cache_bytes)
        with ProbeServer(service) as server:
            with ProbeClient(server.host, server.port) as client:
                # The small batch matches the binary pipelining sweep;
                # the bulk batch is JSON's best case (fewest round
                # trips), so "best json" is a fair baseline.
                for batch in (BATCH, 8192):
                    pps, got = _timed_batches(
                        client.probe_many, workload, COMPARE_PROBES,
                        batch=batch,
                    )
                    record("json", f"b={batch}", pps, got)
        service.close()

    soak = None
    if "binary" in protocols:
        service = ProbeService.from_paged(zlib_path, cache_bytes=cache_bytes)
        with AsyncProbeServer(service) as server:
            with BinaryProbeClient(server.host, server.port) as client:
                for depth in PIPELINE_DEPTHS:
                    batches = [
                        workload[start : start + BATCH]
                        for start in range(0, COMPARE_PROBES, BATCH)
                    ]
                    t0 = time.perf_counter()
                    got = []
                    for first in range(0, len(batches), depth):
                        got.extend(
                            client.pipeline(batches[first : first + depth])
                        )
                    seconds = time.perf_counter() - t0
                    record(
                        "binary", f"b={BATCH} d={depth}",
                        COMPARE_PROBES / seconds, np.concatenate(got),
                    )
                # Bulk frames: the whole workload as packed records in
                # one probe_many frame — the zero-Python-per-probe path.
                pps, got = _timed_batches(
                    client.probe_many, workload, COMPARE_PROBES,
                    batch=BULK_BATCH,
                )
                record("binary", f"b={BULK_BATCH}", pps, got)
            soak = _soak_connections(server, SOAK_TARGET)
        service.close()

    if "local" in protocols:
        for codec, path in (("zlib", zlib_path), ("raw", raw_path)):
            with LocalProbeClient(path, cache_bytes=cache_bytes) as client:
                pps, got = _timed_batches(
                    client.probe_many, workload, COMPARE_PROBES
                )
                record(f"local-{codec}", f"b={BATCH}", pps, got)

    assert rows, "--protocol filtered every round away"
    assert all(row["mismatches"] == 0 for row in rows), rows

    table = Table(
        f"probe transport comparison — {SWEEP_STONES}-stone awari set, "
        f"{COMPARE_PROBES:,}-probe workload (b=batch, d=pipeline depth)",
        ["protocol", "mode", "probes/s", "vs json"],
    )
    json_rows = [r for r in rows if r["protocol"] == "json"]
    baseline = (max(r["throughput_pps"] for r in json_rows)
                if json_rows else None)
    for row in rows:
        ratio = (f"{row['throughput_pps'] / baseline:.1f}x"
                 if baseline else "-")
        table.add(
            row["protocol"], row["mode"],
            f"{row['throughput_pps']:,.0f}", ratio,
        )
    lines = [table.render()]
    if soak is not None:
        lines.append(
            f"# soak: {soak['connections']:,} concurrent connections "
            f"(target {soak['target']:,}), {soak['errors']} errors"
        )
        assert soak["errors"] == 0, soak
    publish(results_dir, "serve_binary", "\n".join(lines))

    result = {
        "schema": "repro/serve-binary/v1",
        "stones": SWEEP_STONES,
        "n_probes": COMPARE_PROBES,
        "batch": BATCH,
        "pipeline_depths": PIPELINE_DEPTHS,
        "rounds": rows,
        "soak": soak,
    }
    (results_dir / "serve_binary.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    if baseline is not None and any(r["protocol"] == "binary" for r in rows):
        best_binary = max(
            r["throughput_pps"] for r in rows if r["protocol"] == "binary"
        )
        speedup = best_binary / baseline
        print(f"\n# best-binary speedup over best-JSON: {speedup:.1f}x")
        assert speedup >= MIN_BINARY_SPEEDUP, (
            f"binary path is only {speedup:.1f}x the best JSON "
            f"round (floor {MIN_BINARY_SPEEDUP}x)"
        )
