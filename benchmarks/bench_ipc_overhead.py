"""IPC overhead of the multiprocess fan-out — pickle vs shared memory.

The paper engineers per-position communication cost toward zero with
message combining; the modern analogue in `MultiprocessSolver` is the
pickle tax of pool results.  This bench solves one database per size on
both fan-out paths (``use_shm=False``: workers pickle status arrays and
edge lists back; ``use_shm=True``: workers write into a parent-owned
:class:`~repro.core.shm.ShmArena` and return metadata tuples), asserts
the resulting databases are bit-identical — including under a
``kill-worker`` fault injection — and reports the bytes each path moved
through the pool, as counted by ``multiproc.ipc_bytes_pickled`` /
``multiproc.ipc_bytes_saved``.

Lower databases are zero-filled: the fan-out traffic depends only on
array *shapes*, and both paths consume identical inputs, so the
bit-identity assertion is exact while the sweep stays fast enough to
reach a >= 1M-position database (12-stone awari).  The smallest size is
additionally cross-checked against the sequential builder on the same
zero lowers.
"""

from __future__ import annotations

import json
import time

import numpy as np
from conftest import publish

from repro.analysis.report import Table, format_bytes
from repro.core.multiproc import MultiprocessSolver
from repro.core.sequential import SequentialSolver
from repro.core.shm import shm_available
from repro.games.awari_db import AwariCaptureGame
from repro.obs import MetricsRegistry
from repro.resilience.faults import FaultPlan

#: Awari databases swept: 75k, 352k, and 1.35M positions.
STONE_SWEEP = [8, 10, 12]
WORKERS = 2
SCAN_CHUNK = 1 << 15


def _zero_lowers(game, stones: int) -> dict:
    return {
        n: np.zeros(game.db_size(n), dtype=np.int16) for n in range(stones)
    }


def _run(game, stones: int, use_shm: bool, faults=None):
    metrics = MetricsRegistry()
    solver = MultiprocessSolver(
        game,
        workers=WORKERS,
        metrics=metrics,
        chunk=SCAN_CHUNK,
        use_shm=use_shm,
        faults=faults,
    )
    lowers = _zero_lowers(game, stones)
    t0 = time.perf_counter()
    values = solver.solve_database(stones, lowers)
    seconds = time.perf_counter() - t0
    return values, metrics.snapshot()["counters"], seconds


def test_ipc_overhead(results_dir, tmp_path):
    assert shm_available(), "bench requires POSIX shared memory"
    game = AwariCaptureGame()
    rows = []
    top_values = None
    for stones in STONE_SWEEP:
        v_pickle, c_pickle, s_pickle = _run(game, stones, use_shm=False)
        v_shm, c_shm, s_shm = _run(game, stones, use_shm=True)
        np.testing.assert_array_equal(
            v_shm, v_pickle, err_msg=f"paths diverge at {stones} stones"
        )
        pickled = c_pickle["multiproc.ipc_bytes_pickled"]
        saved = c_shm["multiproc.ipc_bytes_saved"]
        shm_pickled = c_shm.get("multiproc.ipc_bytes_pickled", 0)
        # The whole point: the arena path moves strictly fewer pickled
        # bytes, and what it saved is exactly what pickling paid.
        assert shm_pickled < pickled
        assert saved == pickled
        rows.append(
            {
                "stones": stones,
                "positions": game.db_size(stones),
                "pickle_bytes": int(pickled),
                "shm_pickled_bytes": int(shm_pickled),
                "ipc_bytes_saved": int(saved),
                "shm_segments": int(c_shm["multiproc.shm_segments"]),
                "pickle_seconds": s_pickle,
                "shm_seconds": s_shm,
            }
        )
        if stones == STONE_SWEEP[-1]:
            top_values = v_shm
    assert rows[-1]["positions"] >= 1_000_000

    # Smallest size: cross-check both fan-outs against the sequential
    # builder on the same zero lowers.
    seq_solver = SequentialSolver(game)
    v_seq, _ = seq_solver.solve_database(
        STONE_SWEEP[0], _zero_lowers(game, STONE_SWEEP[0])
    )
    v_small, _, _ = _run(game, STONE_SWEEP[0], use_shm=True)
    np.testing.assert_array_equal(v_small, v_seq)

    # Largest size again, now with a worker SIGKILLed mid-scan: the
    # replayed task re-writes its own arena region, bit-identically.
    plan = FaultPlan.from_specs(
        ["kill-worker:chunk=1"], state_dir=str(tmp_path / "faults")
    )
    v_fault, c_fault, _ = _run(
        game, STONE_SWEEP[-1], use_shm=True, faults=plan
    )
    np.testing.assert_array_equal(v_fault, top_values)
    assert c_fault.get("resilience.pool_rebuilds", 0) >= 1
    assert (
        c_fault["multiproc.ipc_bytes_saved"]
        == rows[-1]["ipc_bytes_saved"]
    )

    table = Table(
        f"multiprocess fan-out IPC — pickle vs shared memory "
        f"({WORKERS} workers, {SCAN_CHUNK}-position chunks)",
        ["stones", "positions", "pickled", "shm-pickled", "saved",
         "segs", "t-pickle", "t-shm"],
    )
    for row in rows:
        table.add(
            row["stones"],
            f"{row['positions']:,}",
            format_bytes(row["pickle_bytes"]),
            format_bytes(row["shm_pickled_bytes"]),
            format_bytes(row["ipc_bytes_saved"]),
            row["shm_segments"],
            f"{row['pickle_seconds']:.1f}s",
            f"{row['shm_seconds']:.1f}s",
        )
    lines = [table.render(), ""]
    lines.append(
        "# kill-worker:chunk=1 on the largest database: bit-identical, "
        f"pool_rebuilds={c_fault.get('resilience.pool_rebuilds', 0)}"
    )
    publish(results_dir, "ipc_overhead", "\n".join(lines))

    result = {
        "schema": "repro/ipc-overhead/v1",
        "workers": WORKERS,
        "scan_chunk": SCAN_CHUNK,
        "sweep": rows,
        "fault_injected": {
            "spec": "kill-worker:chunk=1",
            "stones": STONE_SWEEP[-1],
            "bit_identical": True,
            "pool_rebuilds": int(c_fault.get("resilience.pool_rebuilds", 0)),
        },
    }
    (results_dir / "ipc_overhead.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
