"""Table 8 — generality across games (extension).

The paper's framing: retrograde analysis "has been applied successfully
to several games".  The same distributed solver, unchanged, builds
databases for awari, kalah-nt (store-based mancala: exit-heavy, sparse
internal graph) and nim (win/draw/loss via the capture adapter) — with
visibly different communication/computation profiles.
"""

import numpy as np
from conftest import publish

from repro.analysis.report import Table, format_seconds
from repro.core.parallel.driver import ParallelConfig, ParallelSolver
from repro.core.sequential import SequentialSolver
from repro.core.wdl import solve_wdl
from repro.core.wdl_adapter import solve_wdl_parallel, values_to_status
from repro.games.kalah import KalahCaptureGame
from repro.games.nim import NimGame

PROCS = 16
KALAH_STONES = 7


def _run(bench):
    rows = []
    # awari (from the shared workbench cache).
    awari_stats = bench.parallel(7, n_procs=PROCS, combining_capacity=256)
    rows.append(("awari-7", awari_stats, None))
    # kalah-nt.
    kalah = KalahCaptureGame()
    seq, _ = SequentialSolver(kalah).solve(KALAH_STONES)
    lower = {n: seq[n] for n in range(KALAH_STONES)}
    cfg = ParallelConfig(n_procs=PROCS, predecessor_mode="unmove-cached")
    values, kalah_stats = ParallelSolver(kalah, cfg).solve_database(
        KALAH_STONES, lower, max_events=50_000_000
    )
    np.testing.assert_array_equal(values, seq[KALAH_STONES])
    rows.append((f"kalah-{KALAH_STONES}", kalah_stats, None))
    # nim through the WDL adapter.
    nim = NimGame(heaps=4, cap=7)
    status, nim_stats = solve_wdl_parallel(
        nim,
        ParallelConfig(n_procs=PROCS, predecessor_mode="unmove"),
        max_events=50_000_000,
    )
    np.testing.assert_array_equal(status, solve_wdl(nim).status)
    rows.append((nim.name, nim_stats, None))
    return rows


def test_table8_game_generality(bench, results_dir, benchmark):
    rows = benchmark.pedantic(_run, args=(bench,), rounds=1, iterations=1)

    table = Table(
        f"Table 8 — one distributed solver, three games (P = {PROCS})",
        ["game", "positions", "T_parallel", "updates", "remote%", "factor"],
    )
    for name, s, _ in rows:
        total_updates = s.updates_sent + s.updates_local
        remote = 100.0 * s.updates_sent / total_updates if total_updates else 0.0
        table.add(
            name,
            f"{s.size:,}",
            format_seconds(s.makespan_seconds),
            f"{total_updates:,}",
            f"{remote:.0f}",
            f"{s.combining_factor:.1f}",
        )
    publish(results_dir, "table8_games", table.render())

    stats = {name: s for name, s, _ in rows}
    awari, kalah = stats["awari-7"], stats[f"kalah-{KALAH_STONES}"]
    # Kalah's store sowing makes most moves exits: far fewer internal
    # updates per position than awari.
    awari_rate = (awari.updates_sent + awari.updates_local) / awari.size
    kalah_rate = (kalah.updates_sent + kalah.updates_local) / kalah.size
    assert kalah_rate < 0.5 * awari_rate
    # All three finish with real parallel speedups (sanity).
    for name, s, _ in rows:
        assert s.makespan_seconds > 0
