"""Table 3 — communication statistics with and without combining.

The mechanism behind Figure 1: combining collapses hundreds of thousands
of tiny update messages into MTU-sized packets.  Reports messages, bytes,
combining factor and control-message overhead (termination detection).
"""

from conftest import SWEEP_STONES, publish

from repro.analysis.report import Table, format_bytes

CONFIGS = [(8, 1), (8, 256), (32, 1), (32, 256)]


def _run(bench):
    return {
        (procs, cap): bench.parallel(
            SWEEP_STONES, n_procs=procs, combining_capacity=cap
        )
        for procs, cap in CONFIGS
    }


def test_table3_message_statistics(bench, results_dir, benchmark):
    runs = benchmark.pedantic(_run, args=(bench,), rounds=1, iterations=1)

    table = Table(
        f"Table 3 — communication statistics ({SWEEP_STONES}-stone database)",
        [
            "procs",
            "combining",
            "updates",
            "packets",
            "factor",
            "bytes",
            "frames",
            "ctrl-msgs",
        ],
        widths=[7, 11, 12, 12, 9, 12, 10, 11],
    )
    for (procs, cap), s in runs.items():
        table.add(
            procs,
            "on" if cap > 1 else "off",
            f"{s.updates_sent:,}",
            f"{s.packets_sent:,}",
            f"{s.combining_factor:.1f}",
            format_bytes(s.bytes_sent),
            f"{s.ethernet_frames:,}",
            f"{s.control_messages:,}",
        )
    publish(results_dir, "table3_messages", table.render())

    for procs in (8, 32):
        on, off = runs[(procs, 256)], runs[(procs, 1)]
        # Same updates cross the network either way ...
        assert abs(on.updates_sent - off.updates_sent) < 0.01 * off.updates_sent
        # ... but combining needs an order of magnitude fewer packets.
        assert on.packets_sent * 8 < off.packets_sent
        assert on.combining_factor > 8.0
        # Control traffic (tokens, phases) is a rounding error.
        assert on.control_messages < 0.05 * on.packets_sent + 1000
