"""Differential identity suite for the binary serving stack.

The whole correctness claim of :mod:`repro.aserve` is *identity*: the
binary TCP transport (plain and pipelined), the JSON fallback on the
same port, and the zero-copy mmap local path must all be bit-identical
to the in-memory ``DatabaseSet`` oracle they serve — values, depth
contract, metadata, and best moves — for every position of every game
in the fixture grid (awari, kalah, synthetic).
"""

import numpy as np
import pytest

from repro.aserve import connect
from repro.aserve.client import BinaryProbeClient
from repro.aserve.local import LocalProbeClient
from repro.aserve.server import AsyncProbeServer
from repro.db.query import best_moves
from repro.serve.client import ProbeClient, ProbeError
from repro.serve.pagedstore import write_paged
from repro.serve.service import ProbeService

from .conftest import BLOCK_POSITIONS, SMALL_BUDGET


@pytest.fixture(scope="module")
def binary_server(solved, paged_path):
    """(name, game, dbs, live AsyncProbeServer) over the paged backend
    with a deliberately tiny cache, so every sweep crosses blocks."""
    name, game, dbs = solved
    service = ProbeService.from_paged(paged_path, cache_bytes=SMALL_BUDGET)
    server = AsyncProbeServer(service).start()
    yield name, game, dbs, server
    server.shutdown()
    service.close()


@pytest.fixture(scope="module")
def binary_client(binary_server):
    """One pipelined client shared by the module's read-only tests."""
    _, _, _, server = binary_server
    with BinaryProbeClient(server.host, server.port) as client:
        yield client


def all_positions(dbs, seed=29):
    """Every (db, index) pair of the oracle, shuffled across databases."""
    rng = np.random.default_rng(seed)
    pairs = [
        (db_id, i)
        for db_id in dbs.ids()
        for i in range(dbs[db_id].shape[0])
    ]
    rng.shuffle(pairs)
    return pairs


def oracle_values(dbs, pairs) -> np.ndarray:
    return np.array([int(dbs[d][i]) for d, i in pairs], dtype=np.int16)


class TestBinaryIdentity:
    def test_every_position_bit_identical(self, binary_server, binary_client):
        """Exhaustive: all positions of all databases over binary TCP."""
        name, game, dbs, server = binary_server
        for db_id in dbs.ids():
            n = dbs[db_id].shape[0]
            got = binary_client.probe_many([(db_id, i) for i in range(n)])
            np.testing.assert_array_equal(
                got, dbs[db_id], err_msg=f"{name} db {db_id}"
            )

    def test_shuffled_cross_database_batch(self, binary_server, binary_client):
        name, game, dbs, server = binary_server
        pairs = all_positions(dbs)
        np.testing.assert_array_equal(
            binary_client.probe_many(pairs), oracle_values(dbs, pairs),
            err_msg=name,
        )

    def test_pipelined_batches_bit_identical(self, binary_server,
                                             binary_client):
        """Many batches in flight on one connection: answers land on the
        right futures in the right order."""
        name, game, dbs, server = binary_server
        pairs = all_positions(dbs, seed=31)
        batches = [pairs[i : i + 48] for i in range(0, len(pairs), 48)]
        results = binary_client.pipeline(batches)
        assert len(results) == len(batches)
        for batch, got in zip(batches, results):
            np.testing.assert_array_equal(
                got, oracle_values(dbs, batch), err_msg=name
            )

    def test_probe_packed_parallel_arrays(self, binary_server, binary_client):
        """The zero-Python-per-probe encoding answers the same values as
        the pair-list path."""
        name, game, dbs, server = binary_server
        directory = dbs.ids()
        rng = np.random.default_rng(41)
        slots = rng.integers(0, len(directory), size=400).astype(np.uint16)
        indices = np.array(
            [
                int(rng.integers(0, dbs[directory[s]].shape[0]))
                for s in slots
            ],
            dtype=np.int64,
        )
        got = binary_client.probe_packed(directory, slots, indices)
        want = np.array(
            [int(dbs[directory[s]][i]) for s, i in zip(slots, indices)],
            dtype=np.int16,
        )
        np.testing.assert_array_equal(got, want, err_msg=name)

    def test_single_probe_matches(self, binary_server, binary_client):
        name, game, dbs, server = binary_server
        for db_id in dbs.ids():
            n = dbs[db_id].shape[0]
            for index in (0, n // 2, n - 1):
                assert binary_client.probe(db_id, index) == int(
                    dbs[db_id][index]
                ), f"{name} db {db_id} index {index}"

    def test_depth_contract_matches_json(self, binary_server, binary_client):
        """depth_of over binary equals depth_of over JSON on the same
        server (paged backends serve no depths: both answer None)."""
        name, game, dbs, server = binary_server
        db_id = dbs.ids()[0]
        with ProbeClient(server.host, server.port) as json_client:
            assert binary_client.depth_of(db_id, 0) == json_client.depth_of(
                db_id, 0
            )

    def test_empty_batch(self, binary_server, binary_client):
        assert binary_client.probe_many([]).shape == (0,)


class TestJsonInterop:
    def test_json_client_on_binary_port(self, binary_server):
        """An unmodified ProbeClient works against the binary server via
        the per-frame version-byte fallback."""
        name, game, dbs, server = binary_server
        pairs = all_positions(dbs, seed=37)[:200]
        with ProbeClient(server.host, server.port) as client:
            assert client.ping()
            assert client.game_name == dbs.game_name
            np.testing.assert_array_equal(
                client.probe_many(pairs), oracle_values(dbs, pairs)
            )

    def test_mixed_clients_interleaved(self, binary_server, binary_client):
        """A JSON client and a binary client answered concurrently on
        the same port see the same values."""
        name, game, dbs, server = binary_server
        db_id = dbs.ids()[-1]
        with ProbeClient(server.host, server.port) as json_client:
            for index in range(min(dbs[db_id].shape[0], 32)):
                want = int(dbs[db_id][index])
                assert binary_client.probe(db_id, index) == want
                assert json_client.probe(db_id, index) == want


class TestMetadataParity:
    def test_catalog_matches_oracle(self, binary_server, binary_client):
        name, game, dbs, server = binary_server
        assert binary_client.game_name == dbs.game_name
        assert binary_client.rules == dbs.rules
        assert binary_client.ids() == dbs.ids()
        for db_id in dbs.ids():
            assert db_id in binary_client
            assert binary_client.positions(db_id) == dbs[db_id].shape[0]
        assert max(dbs.ids()) + 40 not in binary_client

    def test_stats_round_trip(self, binary_server, binary_client):
        stats = binary_client.stats()
        assert stats["backend"] == "paged"

    def test_errors_surface_as_probe_errors(self, binary_server,
                                            binary_client):
        """Missing databases and bad indexes come back as error frames,
        raised client-side as ProbeError — and the connection (with its
        pipelined stream) survives to answer the next request."""
        name, game, dbs, server = binary_server
        top = dbs.ids()[-1]
        with pytest.raises(ProbeError, match="not present"):
            binary_client.probe(max(dbs.ids()) + 40, 0)
        with pytest.raises(ProbeError, match="out of range"):
            binary_client.probe(top, dbs[top].shape[0])
        assert binary_client.probe(top, 0) == int(dbs[top][0])


class TestBestMoves:
    def test_best_move_matches_oracle(self, binary_server, binary_client):
        """Server-side best moves over binary equal the in-memory query
        path on a board sample (synthetic has no board surface)."""
        name, game, dbs, server = binary_server
        if name == "synthetic":
            pytest.skip("synthetic game is not board-based")
        indexer = game.engine.indexer(max(dbs.ids()))
        rng = np.random.default_rng(23)
        for idx in rng.integers(0, indexer.count, size=8):
            board = indexer.unrank(np.array([int(idx)]))[0]
            want_value, want_moves = best_moves(game, dbs, board)
            got = binary_client.best_move(board)
            assert got["value"] == want_value, f"{name} idx {idx}"
            assert got["pits"] == [m.pit for m in want_moves], (
                f"{name} idx {idx}"
            )


@pytest.fixture(
    scope="module", params=["zlib", "raw", "packed", "packed+zlib"]
)
def local_store(request, solved, tmp_path_factory):
    """(name, game, dbs, codec, path) — one paged store per codec."""
    name, game, dbs = solved
    codec = request.param
    path = tmp_path_factory.mktemp(f"mmap-{name}-{codec}") / "store.pgdb"
    write_paged(dbs, path, block_positions=BLOCK_POSITIONS, codec=codec)
    return name, game, dbs, codec, path


class TestLocalMmap:
    def test_every_position_bit_identical(self, local_store):
        name, game, dbs, codec, path = local_store
        with LocalProbeClient(path) as client:
            for db_id in dbs.ids():
                n = dbs[db_id].shape[0]
                got = client.probe_many([(db_id, i) for i in range(n)])
                np.testing.assert_array_equal(
                    got, dbs[db_id], err_msg=f"{name}/{codec} db {db_id}"
                )

    def test_shuffled_batch_and_array_path(self, local_store):
        name, game, dbs, codec, path = local_store
        pairs = all_positions(dbs, seed=43)
        with LocalProbeClient(path) as client:
            np.testing.assert_array_equal(
                client.probe_many(pairs), oracle_values(dbs, pairs),
                err_msg=f"{name}/{codec}",
            )
            db_id = dbs.ids()[-1]
            idx = np.arange(dbs[db_id].shape[0], dtype=np.int64)[::-1].copy()
            np.testing.assert_array_equal(
                client.probe_array(db_id, idx), dbs[db_id][idx]
            )

    def test_metadata_and_errors(self, local_store):
        name, game, dbs, codec, path = local_store
        with LocalProbeClient(path) as client:
            assert client.ping()
            assert client.game_name == dbs.game_name
            assert client.rules == dbs.rules
            assert client.ids() == dbs.ids()
            assert client.depth_of(dbs.ids()[0], 0) is None
            assert client.stats()["codec"] == codec
            top = dbs.ids()[-1]
            with pytest.raises(IndexError, match="out of range"):
                client.probe(top, dbs[top].shape[0])
            with pytest.raises(KeyError):
                client.probe(max(dbs.ids()) + 40, 0)

    def test_fast_path_mode_per_codec(self, local_store):
        """raw maps zero-copy, packed bulk-unpacks once, the zlib-family
        codecs fall back to the block cache with a counted reason."""
        from repro.obs import MetricsRegistry

        name, game, dbs, codec, path = local_store
        registry = MetricsRegistry()
        with LocalProbeClient(
            path, metrics=registry.scoped("aserve.local")
        ) as client:
            stats = client.stats()
            if codec == "raw":
                assert client.mode == "zero-copy"
                assert "fallback_reason" not in stats
            elif codec == "packed":
                assert client.mode == "unpacked"
                assert "fallback_reason" not in stats
                total = 2 * dbs.total_positions
                assert stats["unpacked_bytes"] == total
                assert (
                    registry.gauges["aserve.local.unpacked_bytes"] == total
                )
            else:
                assert client.mode == "block-cache"
                assert codec in stats["fallback_reason"]
                assert (
                    registry.counters["aserve.local.mmap_fallbacks"] == 1
                )
            assert stats["mode"] == client.mode

    def test_best_moves_match_oracle(self, local_store):
        name, game, dbs, codec, path = local_store
        if name == "synthetic":
            pytest.skip("synthetic game is not board-based")
        indexer = game.engine.indexer(max(dbs.ids()))
        rng = np.random.default_rng(47)
        with LocalProbeClient(path) as client:
            for idx in rng.integers(0, indexer.count, size=6):
                board = indexer.unrank(np.array([int(idx)]))[0]
                want_value, want_moves = best_moves(game, dbs, board)
                got_value, got_moves = client.best_moves(board)
                assert got_value == want_value, f"{name}/{codec} idx {idx}"
                assert [m.pit for m in got_moves] == [
                    m.pit for m in want_moves
                ], f"{name}/{codec} idx {idx}"


class TestConnectHelper:
    def test_local_path_selects_mmap(self, local_store):
        name, game, dbs, codec, path = local_store
        with connect(path) as client:
            assert isinstance(client, LocalProbeClient)
            assert client.probe(dbs.ids()[0], 0) == int(dbs[dbs.ids()[0]][0])

    def test_host_port_selects_binary(self, binary_server):
        name, game, dbs, server = binary_server
        with connect(f"{server.host}:{server.port}") as client:
            assert isinstance(client, BinaryProbeClient)
            assert client.ping()

    def test_garbage_endpoint_rejected(self):
        with pytest.raises(ValueError, match="neither"):
            connect("no-such-file-or-host-port")
