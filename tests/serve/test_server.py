"""TCP server + client end-to-end tests (loopback, ephemeral ports)."""

import socket
import threading

import numpy as np
import pytest

from repro.db.query import best_moves, optimal_line
from repro.obs import MetricsRegistry
from repro.serve.client import ProbeClient, ProbeError
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService


@pytest.fixture(scope="module")
def served(awari_solved, awari_paged_path):
    """A running paged-backed server plus the ground-truth DatabaseSet
    (session-wide store; nothing is re-solved or re-paged here)."""
    game, dbs = awari_solved
    service = ProbeService.from_paged(awari_paged_path, cache_bytes=64 * 1024)
    server = ProbeServer(service).start()
    yield game, dbs, server
    server.shutdown()
    service.close()


@pytest.fixture()
def client(served):
    _, _, server = served
    with ProbeClient(server.host, server.port) as c:
        yield c


class TestWire:
    def test_ping_info(self, served, client):
        game, dbs, _ = served
        assert client.ping()
        info = client.info()
        assert info["game"] == "awari"
        assert info["backend"] == "paged"
        assert info["ids"] == dbs.ids()
        assert client.positions(5) == dbs[5].shape[0]
        assert 5 in client and 99 not in client

    def test_probe_and_batch_match_ground_truth(self, served, client):
        _, dbs, _ = served
        rng = np.random.default_rng(1)
        pairs = [
            (int(d), int(rng.integers(0, dbs[int(d)].shape[0])))
            for d in rng.integers(0, 6, size=200)
        ]
        expected = np.array([int(dbs[d][i]) for d, i in pairs], dtype=np.int16)
        np.testing.assert_array_equal(client.probe_many(pairs), expected)
        d, i = pairs[0]
        assert client.probe(d, i) == int(expected[0])

    def test_best_move_matches_local(self, served, client):
        game, dbs, _ = served
        indexer = game.engine.indexer(5)
        rng = np.random.default_rng(8)
        for idx in rng.integers(0, indexer.count, size=10):
            board = indexer.unrank(np.array([int(idx)]))[0]
            want_value, want_moves = best_moves(game, dbs, board)
            answer = client.best_move(board)
            assert answer["value"] == want_value
            assert answer["pits"] == [m.pit for m in want_moves]

    def test_client_speaks_probe_protocol(self, served, client):
        """optimal_line runs unmodified over the TCP client."""
        game, dbs, _ = served
        indexer = game.engine.indexer(5)
        rng = np.random.default_rng(12)
        for idx in rng.integers(0, indexer.count, size=3):
            board = indexer.unrank(np.array([int(idx)]))[0]
            realized, _ = optimal_line(game, client, board)
            assert realized == int(dbs[5][int(idx)])

    def test_stats_op(self, served, client):
        stats = client.stats()
        assert stats["backend"] == "paged"
        assert stats["misses"] >= 0 and "hit_rate" in stats


class TestErrors:
    def test_unknown_op(self, served, client):
        with pytest.raises(ProbeError, match="unknown op"):
            client.request({"op": "explode"})

    def test_missing_database_over_wire(self, served, client):
        with pytest.raises(ProbeError, match="not present"):
            client.probe(99, 0)

    def test_bad_index_over_wire(self, served, client):
        with pytest.raises(ProbeError, match="out of range"):
            client.probe(5, 10**9)

    def test_bad_board_over_wire(self, served, client):
        with pytest.raises(ProbeError, match="12 pit counts"):
            client.request({"op": "best_move", "board": [1, 2, 3]})

    def test_connection_survives_errors(self, served, client):
        """An application error must not poison the connection."""
        _, dbs, _ = served
        with pytest.raises(ProbeError):
            client.probe(99, 0)
        assert client.probe(5, 0) == int(dbs[5][0])


class TestProtocolFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"op": "ping", "payload": "x" * 100_000})
            message = recv_message(b)
            assert message["op"] == "ping"
            assert len(message["payload"]) == 100_000
        finally:
            a.close()
            b.close()

    def test_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall((100).to_bytes(4, "big") + b"short")
            a.close()
            with pytest.raises(ProtocolError, match="connection closed"):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_MESSAGE_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="exceeds limit"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_json_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            payload = b"\xff\xfe not json"
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(ProtocolError, match="bad JSON"):
                recv_message(b)
        finally:
            a.close()
            b.close()


class TestConcurrencyAndShutdown:
    def test_concurrent_clients_agree(self, served):
        game, dbs, server = served
        errors: list = []

        def worker(seed):
            try:
                rng = np.random.default_rng(seed)
                with ProbeClient(server.host, server.port) as c:
                    pairs = [
                        (5, int(i))
                        for i in rng.integers(0, dbs[5].shape[0], size=300)
                    ]
                    got = c.probe_many(pairs)
                    want = np.array(
                        [int(dbs[5][i]) for _, i in pairs], dtype=np.int16
                    )
                    np.testing.assert_array_equal(got, want)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_graceful_shutdown_with_connected_client(self, awari_solved):
        game, dbs = awari_solved
        service = ProbeService.from_database_set(dbs)
        server = ProbeServer(service).start()
        client = ProbeClient(server.host, server.port)
        assert client.probe(5, 0) == int(dbs[5][0])
        server.shutdown()  # returns only once all threads joined
        prefix = f"probe-server-{server.port}"
        for thread in threading.enumerate():
            assert not thread.name.startswith(prefix), thread
        client.close()
        service.close()

    def test_server_metrics(self, awari_solved):
        game, dbs = awari_solved
        registry = MetricsRegistry()
        service = ProbeService.from_database_set(dbs)
        server = ProbeServer(
            service, metrics=registry.scoped("serve.server")
        ).start()
        with ProbeClient(server.host, server.port) as client:
            client.ping()
            client.probe(5, 0)
            with pytest.raises(ProbeError):
                client.request({"op": "nope"})
        server.shutdown()
        service.close()
        counters = registry.counters
        assert counters["serve.server.connections"] == 1
        assert counters["serve.server.requests"] == 2
        assert counters["serve.server.op.probe"] == 1
        assert counters["serve.server.errors"] == 1
