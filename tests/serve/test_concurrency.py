"""Concurrency stress: the shared ``BlockCache`` under real threads.

These tests pin the race this PR fixed (and staticcheck rule RA007 now
proves absent): the threaded JSON server runs one thread per
connection against one shared cache, and before the cache grew its
``RLock`` the LRU reorder, hit/miss counters and byte gauges raced.
Against the pre-fix cache the accounting assertions here fail within a
few hundred iterations (lost ``+=`` updates, ``OrderedDict``
corruption, drifting byte gauges); against the locked cache every
count is *exact*, not merely plausible:

* every ``get`` is exactly one hit or one miss, so
  ``hits + misses == total gets`` regardless of interleaving
  (single-flight: a concurrent miss on the same key becomes a hit);
* inserts only come from misses and removals only from evictions, so
  ``resident blocks == misses - evictions``;
* byte gauges equal the arithmetic over the actual resident set.
"""

import threading

import numpy as np
import pytest

from repro.serve.cache import BlockCache
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService
from repro.serve.client import ProbeClient

from tests.serve.conftest import SMALL_BUDGET
from tests.workloads import BLOCK_POSITIONS

N_THREADS = 6


@pytest.fixture(autouse=True)
def aggressive_thread_switching():
    """Force frequent preemption so pre-fix races surface reliably."""
    import sys

    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def run_threads(worker, n=N_THREADS):
    """Run ``worker(thread_index)`` on ``n`` threads behind a barrier;
    re-raise the first failure."""
    barrier = threading.Barrier(n)
    failures = []

    def wrapped(i):
        try:
            barrier.wait(timeout=30)
            worker(i)
        except BaseException as exc:  # noqa: BLE001 — reported below
            failures.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,), daemon=True)
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "stress thread hung"
    if failures:
        raise failures[0]


class TestBlockCacheUnderContention:
    BLOCK_WORDS = 32  # int16 -> 64 bytes per block
    BLOCK_BYTES = BLOCK_WORDS * 2
    N_KEYS = 8
    GETS_PER_THREAD = 1500

    def test_exact_accounting_under_hammering(self):
        budget = 2 * self.BLOCK_BYTES  # two resident blocks + slack
        cache = BlockCache(budget)

        def loader():
            return np.zeros(self.BLOCK_WORDS, dtype=np.int16)

        def worker(i):
            rng = np.random.default_rng(i)
            keys = rng.integers(0, self.N_KEYS,
                                size=self.GETS_PER_THREAD)
            for key in keys:
                block = cache.get(int(key), loader)
                assert block.nbytes == self.BLOCK_BYTES

        run_threads(worker)

        total = N_THREADS * self.GETS_PER_THREAD
        # Every get is exactly one hit or one miss — no lost updates.
        assert cache.hits + cache.misses == total
        # Inserts only from misses, removals only from evictions.
        assert len(cache) == cache.misses - cache.evictions
        # Byte gauges equal the arithmetic over the resident set.
        resident = list(cache._blocks.values())
        assert cache.resident_bytes == sum(
            int(b.nbytes) for b, _ in resident
        )
        assert cache.packed_resident_bytes == sum(
            stored for _, stored in resident
        )
        # Budget + one block, never exceeded even transiently at rest.
        assert cache.resident_bytes <= budget + self.BLOCK_BYTES
        assert cache.peak_resident_bytes <= budget + self.BLOCK_BYTES
        # Heavy cross-thread traffic must have contended the lock at
        # least once (the gauge is how operators see serialization).
        assert cache.lock_contended > 0

    def test_stats_snapshots_stay_consistent_mid_flight(self):
        """A reader thread sees internally consistent snapshots while
        writers hammer: with equal-sized blocks the byte gauge is
        always exactly blocks x block-size, and hit_rate is a true
        ratio of the snapshot's own counters."""
        cache = BlockCache(2 * self.BLOCK_BYTES)

        def loader():
            return np.zeros(self.BLOCK_WORDS, dtype=np.int16)

        def worker(i):
            if i == 0:  # the reader
                for _ in range(400):
                    snap = cache.stats()
                    assert snap["resident_bytes"] == (
                        snap["resident_blocks"] * self.BLOCK_BYTES
                    )
                    assert snap["resident_blocks"] == (
                        snap["misses"] - snap["evictions"]
                    )
                    total = snap["hits"] + snap["misses"]
                    expected = snap["hits"] / total if total else 0.0
                    assert snap["hit_rate"] == expected
                return
            rng = np.random.default_rng(i)
            for key in rng.integers(0, self.N_KEYS, size=800):
                cache.get(int(key), loader)

        run_threads(worker)

    def test_clear_races_with_gets(self):
        """clear() interleaved with gets must leave exact accounting
        (pre-fix, a clear racing a put left phantom resident bytes)."""
        cache = BlockCache(4 * self.BLOCK_BYTES)

        def loader():
            return np.zeros(self.BLOCK_WORDS, dtype=np.int16)

        def worker(i):
            rng = np.random.default_rng(i)
            for n, key in enumerate(
                    rng.integers(0, self.N_KEYS, size=600)):
                cache.get(int(key), loader)
                if i == 0 and n % 50 == 0:
                    cache.clear()

        run_threads(worker)
        resident = list(cache._blocks.values())
        assert cache.resident_bytes == sum(
            int(b.nbytes) for b, _ in resident
        )
        assert cache.packed_resident_bytes == sum(
            stored for _, stored in resident
        )


class TestLiveServerStress:
    """N client threads against one threaded ProbeServer over a paged
    store with a deliberately tiny cache budget: zero wrong answers,
    and the shared cache's accounting stays exact."""

    SINGLES = 40
    BATCHES = 12
    BATCH_SIZE = 30

    @pytest.fixture()
    def stressed(self, awari_solved, awari_paged_path):
        game, dbs = awari_solved
        service = ProbeService.from_paged(
            awari_paged_path, cache_bytes=SMALL_BUDGET
        )
        server = ProbeServer(service).start()
        yield game, dbs, service, server
        server.shutdown()
        service.close()

    def _plan(self, dbs, seed):
        """Deterministic per-thread traffic: (singles, batches)."""
        rng = np.random.default_rng(seed)
        ids = dbs.ids()
        singles = [
            (int(d), int(rng.integers(0, dbs[int(d)].shape[0])))
            for d in rng.choice(ids, size=self.SINGLES)
        ]
        batches = []
        for _ in range(self.BATCHES):
            batches.append([
                (int(d), int(rng.integers(0, dbs[int(d)].shape[0])))
                for d in rng.choice(ids, size=self.BATCH_SIZE)
            ])
        return singles, batches

    @staticmethod
    def _expected_gets(singles, batches):
        """Cache gets the traffic must cost: one per single probe, one
        per distinct (db, block) of each batch (the service's locality
        sort gathers each block exactly once per request)."""
        gets = len(singles)
        for batch in batches:
            gets += len({(d, i // BLOCK_POSITIONS) for d, i in batch})
        return gets

    def test_zero_wrong_answers_and_exact_cache_accounting(self, stressed):
        game, dbs, service, server = stressed
        plans = [self._plan(dbs, seed) for seed in range(N_THREADS)]

        def worker(i):
            singles, batches = plans[i]
            with ProbeClient(server.host, server.port) as client:
                for n, (d, idx) in enumerate(singles):
                    assert client.probe(d, idx) == int(dbs[d][idx])
                    if n % 10 == 0:
                        snap = client.stats()
                        assert 0.0 <= snap["hit_rate"] <= 1.0
                        assert snap["resident_bytes"] <= (
                            SMALL_BUDGET + 2 * BLOCK_POSITIONS
                        )
                for batch in batches:
                    expected = np.array(
                        [int(dbs[d][idx]) for d, idx in batch],
                        dtype=np.int16,
                    )
                    np.testing.assert_array_equal(
                        client.probe_many(batch), expected
                    )

        run_threads(worker)

        cache = service.backend.cache
        expected_gets = sum(
            self._expected_gets(singles, batches)
            for singles, batches in plans
        )
        # Exact: every get was one hit or one miss, none lost, none
        # double-counted, across all connection threads.
        assert cache.hits + cache.misses == expected_gets
        assert len(cache) == cache.misses - cache.evictions
        resident = list(cache._blocks.values())
        assert cache.resident_bytes == sum(
            int(b.nbytes) for b, _ in resident
        )
        assert cache.packed_resident_bytes == sum(
            stored for _, stored in resident
        )
        max_block = 2 * BLOCK_POSITIONS  # int16 positions per block
        assert cache.resident_bytes <= SMALL_BUDGET + max_block
        assert cache.peak_resident_bytes <= SMALL_BUDGET + max_block
        # The stats op ships the contention gauge over the wire.
        assert "lock_contended" in service.stats()

    def test_best_moves_stay_correct_under_concurrency(self, stressed):
        """Mixed best-move traffic: the query path batches probes
        through the same shared cache and must agree with the local
        ground truth from every thread."""
        from repro.db.query import best_moves

        game, dbs, service, server = stressed
        indexer = game.engine.indexer(5)
        rng = np.random.default_rng(77)
        boards = [
            indexer.unrank(np.array([int(idx)]))[0]
            for idx in rng.integers(0, indexer.count, size=N_THREADS * 3)
        ]
        truths = [best_moves(game, dbs, board) for board in boards]

        def worker(i):
            mine = list(range(i, len(boards), N_THREADS))
            with ProbeClient(server.host, server.port) as client:
                for k in mine:
                    want_value, want_moves = truths[k]
                    answer = client.best_move(boards[k])
                    assert answer["value"] == want_value
                    assert answer["pits"] == [m.pit for m in want_moves]

        run_threads(worker)
        cache = service.backend.cache
        resident = list(cache._blocks.values())
        assert cache.resident_bytes == sum(
            int(b.nbytes) for b, _ in resident
        )
