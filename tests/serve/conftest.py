"""Shared workloads for the serving tests.

One small solved `DatabaseSet` per game (awari, kalah, synthetic),
memoized per session, plus paged conversions at a deliberately tiny
block size so even the small test databases span many blocks.
"""

from __future__ import annotations

import pytest

from repro.core.sequential import SequentialSolver
from repro.db.store import DatabaseSet
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame
from repro.games.synthetic import SyntheticCaptureGame

#: Positions per block in the paged fixtures — tiny on purpose.
BLOCK_POSITIONS = 64

GAMES = {
    "awari": (AwariCaptureGame, 5),
    "kalah": (KalahCaptureGame, 4),
    "synthetic": (lambda: SyntheticCaptureGame(levels=5, max_size=50, seed=7), 4),
}


@pytest.fixture(scope="session", params=sorted(GAMES), ids=sorted(GAMES))
def solved(request):
    """(name, game, DatabaseSet) for one of the three games."""
    name = request.param
    factory, target = GAMES[name]
    game = factory()
    values, _ = SequentialSolver(game).solve(target)
    rules = game.rules.describe() if hasattr(game, "rules") else ""
    return name, game, DatabaseSet(game_name=game.name, values=values, rules=rules)


@pytest.fixture(scope="session")
def awari_solved():
    game = AwariCaptureGame()
    values, _ = SequentialSolver(game).solve(5)
    return game, DatabaseSet(
        game_name=game.name, values=values, rules=game.rules.describe()
    )
