"""Shared fixtures for the serving tests.

Built on :mod:`tests.workloads`: one solved ``DatabaseSet`` per game
and one paged conversion per game, each computed once per *session* and
reused by every test (and by the cluster suite) instead of re-solving
or re-paging per test.  ``backend_service`` parametrizes a
:class:`~repro.serve.service.ProbeService` over both storage backends
— memory and paged-with-tiny-cache — so differential tests cover both
without hand-rolled loops.
"""

from __future__ import annotations

import pytest

from repro.serve.service import ProbeService

from tests.workloads import (  # noqa: F401 — re-exported for the suite
    BLOCK_POSITIONS,
    GAMES,
    paged_store_path,
    solved_set,
)

#: Cache budget used in the differential sweeps: two blocks' worth of
#: int16 values — far smaller than any solved database in the fixtures.
SMALL_BUDGET = 2 * BLOCK_POSITIONS * 2


@pytest.fixture(scope="session", params=sorted(GAMES), ids=sorted(GAMES))
def solved(request):
    """(name, game, DatabaseSet) for one of the three games."""
    name = request.param
    game, dbs = solved_set(name)
    return name, game, dbs


@pytest.fixture(scope="session")
def awari_solved():
    """(game, DatabaseSet) for the awari workload (same solve as the
    parametrized ``solved`` fixture — memoized, never re-run)."""
    return solved_set("awari")


@pytest.fixture(scope="session")
def paged_path(solved, tmp_path_factory):
    """Session-wide paged store of the parametrized game."""
    name, _, _ = solved
    return paged_store_path(name, tmp_path_factory)


@pytest.fixture(scope="session")
def awari_paged_path(tmp_path_factory):
    """Session-wide paged store of the awari workload."""
    return paged_store_path("awari", tmp_path_factory)


def make_service(kind, dbs, paged, cache_bytes=SMALL_BUDGET, metrics=None):
    """One ProbeService over the named backend; callers close it."""
    if kind == "memory":
        return ProbeService.from_database_set(dbs, metrics=metrics)
    return ProbeService.from_paged(
        paged, cache_bytes=cache_bytes, metrics=metrics
    )


@pytest.fixture(params=["memory", "paged"])
def backend_service(request, solved, paged_path):
    """(backend kind, ProbeService) — every test using this fixture runs
    against both storage backends over the session-wide stores."""
    name, game, dbs = solved
    service = make_service(request.param, dbs, paged_path)
    yield request.param, service
    service.close()
