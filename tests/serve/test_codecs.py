"""Codec axis of the serving differential suite.

Every paged-store codec — ``zlib``, ``raw``, ``packed``,
``packed+zlib`` — must be invisible to probes: bit-identical to the
``DatabaseSet`` oracle through the store itself, the cached
``PagedBackend``, and the binary TCP transport, for every game in the
fixture grid.  The packed codecs additionally pin their size claims
(bit-packed blocks beat raw int16) and the cache's stored-bytes
accounting (``packed_resident_bytes``).
"""

import numpy as np
import pytest

from repro.aserve.client import BinaryProbeClient
from repro.aserve.server import AsyncProbeServer
from repro.db.packing import packed_nbytes
from repro.db.query import best_moves
from repro.obs import MetricsRegistry
from repro.serve.pagedstore import CODECS, PagedStore, write_paged
from repro.serve.service import ProbeService

from tests.workloads import paged_store_path

from .conftest import BLOCK_POSITIONS, SMALL_BUDGET

CODEC_IDS = [c.replace("+", "-") for c in CODECS]


@pytest.fixture(scope="module", params=CODECS, ids=CODEC_IDS)
def codec(request):
    return request.param


@pytest.fixture(scope="module")
def codec_path(solved, codec, tmp_path_factory):
    """Session-memoized paged store of (game, codec)."""
    name, _, _ = solved
    return paged_store_path(name, tmp_path_factory, codec=codec)


def shuffled_pairs(dbs, seed=61):
    rng = np.random.default_rng(seed)
    pairs = [
        (db_id, i)
        for db_id in dbs.ids()
        for i in range(dbs[db_id].shape[0])
    ]
    rng.shuffle(pairs)
    return pairs


class TestStoreCodecs:
    def test_read_all_bit_identical(self, solved, codec, codec_path):
        name, _, dbs = solved
        with PagedStore(codec_path) as store:
            assert store.codec == codec
            for db_id in dbs.ids():
                np.testing.assert_array_equal(
                    store.read_all(db_id), dbs[db_id],
                    err_msg=f"{name}/{codec} db {db_id}",
                )

    def test_packed_header_and_block_sizes(self, solved, codec, codec_path):
        """Packed stores record their pack parameters and every block is
        exactly ceil(count*bits/8) bytes on disk (pre-zlib)."""
        _, _, dbs = solved
        with PagedStore(codec_path) as store:
            if codec not in ("packed", "packed+zlib"):
                assert store.pack_bits_per_value is None
                return
            bits = store.pack_bits_per_value
            lo = store.pack_offset
            assert 1 <= bits <= 16
            values = np.concatenate(
                [dbs[i] for i in dbs.ids() if dbs[i].size]
            )
            assert lo == int(values.min())
            assert int(values.max()) - lo < (1 << bits)
            if codec == "packed":
                for db_id in store.ids():
                    for b in range(store.n_blocks(db_id)):
                        _, clen, count = store.block_span(db_id, b)
                        assert clen == packed_nbytes(count, bits)

    def test_summary_fields(self, solved, codec, tmp_path):
        """The renamed summary names measure what they say: value_bytes
        is the int16 working set, stored_ratio is 1.0-parity for raw and
        >= 4x for a nibble-width game under packed."""
        name, _, dbs = solved
        summary = write_paged(
            dbs, tmp_path / "s.pgdb", block_positions=BLOCK_POSITIONS,
            codec=codec,
        )
        assert summary["codec"] == codec
        assert summary["value_bytes"] == 2 * dbs.total_positions
        assert summary["file_bytes"] > summary["stored_bytes"]
        assert summary["stored_ratio"] == pytest.approx(
            summary["value_bytes"] / summary["stored_bytes"]
        )
        if codec == "raw":
            assert summary["stored_bytes"] == summary["value_bytes"]
            assert summary["stored_ratio"] == pytest.approx(1.0)
        else:
            assert summary["stored_bytes"] < summary["value_bytes"]

    def test_empty_store_ratio_defined(self, tmp_path, codec):
        from repro.db.store import DatabaseSet

        empty = DatabaseSet(
            game_name="awari",
            values={0: np.zeros(0, dtype=np.int16)},
            rules="",
        )
        summary = write_paged(empty, tmp_path / "e.pgdb", codec=codec)
        assert summary["stored_ratio"] == 1.0

    def test_packed_beats_raw_on_disk(self, solved, tmp_path):
        _, _, dbs = solved
        sizes = {}
        for codec in ("raw", "packed"):
            sizes[codec] = write_paged(
                dbs, tmp_path / f"{CODEC_IDS[CODECS.index(codec)]}.pgdb",
                block_positions=BLOCK_POSITIONS, codec=codec,
            )["stored_bytes"]
        assert sizes["packed"] < sizes["raw"]


class TestServiceCodecs:
    def test_cached_backend_bit_identical(self, solved, codec, codec_path):
        """Shuffled full-coverage probe_many through a tiny cache: every
        block decodes through the codec path, values match the oracle."""
        name, _, dbs = solved
        pairs = shuffled_pairs(dbs)
        expected = np.array(
            [int(dbs[d][i]) for d, i in pairs], dtype=np.int16
        )
        with ProbeService.from_paged(
            codec_path, cache_bytes=SMALL_BUDGET
        ) as service:
            np.testing.assert_array_equal(
                service.probe_many(pairs), expected,
                err_msg=f"{name}/{codec}",
            )
            stats = service.stats()
            assert stats["codec"] == codec
            assert stats["evictions"] > 0  # the cache really was tiny

    def test_packed_resident_accounting(self, solved, codec, codec_path):
        """The cache budgets decompressed bytes; the packed gauge shows
        the stored cost — strictly smaller for every non-raw codec."""
        _, _, dbs = solved
        with ProbeService.from_paged(
            codec_path, cache_bytes=SMALL_BUDGET
        ) as service:
            service.probe_many(shuffled_pairs(dbs, seed=5)[:256])
            stats = service.stats()
            assert stats["resident_bytes"] > 0
            if codec == "raw":
                assert (
                    stats["packed_resident_bytes"]
                    == stats["resident_bytes"]
                )
            else:
                assert (
                    0
                    < stats["packed_resident_bytes"]
                    < stats["resident_bytes"]
                )

    def test_best_moves_match_oracle(self, solved, codec, codec_path):
        name, game, dbs = solved
        if name == "synthetic":
            pytest.skip("synthetic game is not board-based")
        indexer = game.engine.indexer(max(dbs.ids()))
        rng = np.random.default_rng(71)
        with ProbeService.from_paged(
            codec_path, cache_bytes=SMALL_BUDGET
        ) as service:
            for idx in rng.integers(0, indexer.count, size=6):
                board = indexer.unrank(np.array([int(idx)]))[0]
                want_value, want_moves = best_moves(game, dbs, board)
                got_value, got_moves = service.best_moves(board)
                assert got_value == want_value, f"{name}/{codec} idx {idx}"
                assert [m.pit for m in got_moves] == [
                    m.pit for m in want_moves
                ], f"{name}/{codec} idx {idx}"


class TestBinaryTransportCodecs:
    def test_binary_protocol_bit_identical(self, solved, codec, codec_path):
        """The pipelined binary transport over each codec's paged
        backend answers the shuffled full sweep identically."""
        name, _, dbs = solved
        pairs = shuffled_pairs(dbs, seed=83)
        expected = np.array(
            [int(dbs[d][i]) for d, i in pairs], dtype=np.int16
        )
        service = ProbeService.from_paged(
            codec_path, cache_bytes=SMALL_BUDGET
        )
        server = AsyncProbeServer(service).start()
        try:
            with BinaryProbeClient(server.host, server.port) as client:
                assert client.info()["codec"] == codec
                np.testing.assert_array_equal(
                    client.probe_many(pairs), expected,
                    err_msg=f"{name}/{codec}",
                )
        finally:
            server.shutdown()
            service.close()
