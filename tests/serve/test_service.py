"""ProbeService tests.

The load-bearing one is the differential suite: for every game
(awari, kalah, synthetic), probing every position through both backends
— in-memory and paged, the latter with a cache budget smaller than one
database — must return values bit-identical to direct array indexing.
All stores come from the session-wide workloads in
:mod:`tests.workloads` (solved once, paged once).
"""

import numpy as np
import pytest

from repro.db.query import best_moves, evaluate_moves, optimal_line
from repro.db.search import DatabaseProbingSearch
from repro.obs import MetricsRegistry
from repro.serve.cache import BlockCache
from repro.serve.pagedstore import PagedStore, write_paged
from repro.serve.service import MemoryBackend, PagedBackend, ProbeService

from .conftest import BLOCK_POSITIONS, SMALL_BUDGET, make_service


class TestDifferential:
    def test_every_position_bit_identical(self, solved, paged_path):
        name, game, dbs = solved
        largest = max(dbs[i].nbytes for i in dbs.ids())
        budget = min(SMALL_BUDGET, largest // 2)
        assert budget < largest, "cache budget must not fit one database"
        for kind in ("memory", "paged"):
            service = make_service(kind, dbs, paged_path, cache_bytes=budget)
            for db_id in dbs.ids():
                n = dbs[db_id].shape[0]
                got = service.probe_many([(db_id, i) for i in range(n)])
                np.testing.assert_array_equal(
                    got, dbs[db_id],
                    err_msg=f"{kind} backend diverges on {name} db {db_id}",
                )
            service.close()

    def test_shuffled_batch_order_preserved(self, solved, backend_service):
        """Locality sorting must not leak into the result order."""
        name, game, dbs = solved
        kind, service = backend_service
        rng = np.random.default_rng(3)
        pairs = [
            (db_id, int(i))
            for db_id in dbs.ids()
            for i in rng.integers(0, dbs[db_id].shape[0], size=40)
        ]
        rng.shuffle(pairs)
        expected = np.array([int(dbs[d][i]) for d, i in pairs], dtype=np.int16)
        np.testing.assert_array_equal(
            service.probe_many(pairs), expected, err_msg=kind
        )

    def test_single_probe_matches(self, solved, backend_service):
        name, game, dbs = solved
        kind, service = backend_service
        top = dbs.ids()[-1]
        mid = dbs[top].shape[0] // 2
        assert service.probe(top, mid) == int(dbs[top][mid]), kind


class TestResidentBytes:
    def test_probe_sweep_stays_under_budget_plus_one_block(
        self, awari_solved, awari_paged_path
    ):
        """Acceptance: a full probe sweep through the paged backend keeps
        the cache's own resident-bytes gauge under budget + one block."""
        game, dbs = awari_solved
        registry = MetricsRegistry()
        service = make_service(
            "paged", dbs, awari_paged_path, metrics=registry.scoped("serve")
        )
        block_bytes = BLOCK_POSITIONS * 2  # int16
        rng = np.random.default_rng(11)
        for db_id in dbs.ids():
            n = dbs[db_id].shape[0]
            service.probe_many(
                [(db_id, int(i)) for i in rng.integers(0, n, size=2 * n)]
            )
        cache = service.backend.cache
        assert cache.misses > 0 and cache.evictions > 0
        gauges = registry.gauges
        assert (
            gauges["serve.cache.peak_resident_bytes"]
            == cache.peak_resident_bytes
        )
        assert cache.peak_resident_bytes <= SMALL_BUDGET + block_bytes
        assert gauges["serve.cache.resident_bytes"] <= SMALL_BUDGET
        service.close()

    def test_locality_sort_bounds_block_loads(
        self, awari_solved, awari_paged_path
    ):
        """A batch confined to one database loads each block at most
        once, no matter how scrambled the request order is."""
        game, dbs = awari_solved
        top = dbs.ids()[-1]
        n = dbs[top].shape[0]
        cache = BlockCache(2 * BLOCK_POSITIONS * 2)  # two blocks only
        service = ProbeService(
            PagedBackend(PagedStore(awari_paged_path), cache)
        )
        rng = np.random.default_rng(5)
        order = rng.permutation(n)
        service.probe_many([(top, int(i)) for i in order])
        n_blocks = service.backend.store.n_blocks(top)
        assert n_blocks > 2  # budget genuinely smaller than the database
        assert cache.misses == n_blocks
        service.close()


class TestBestMoves:
    def test_paths_cannot_disagree(self, awari_solved, awari_paged_path):
        """Serving best-move answers equal the in-memory query path on a
        sample of boards (shared successor resolution + shared logic)."""
        game, dbs = awari_solved
        services = {
            kind: make_service(kind, dbs, awari_paged_path)
            for kind in ("memory", "paged")
        }
        indexer = game.engine.indexer(5)
        rng = np.random.default_rng(2)
        for idx in rng.integers(0, indexer.count, size=25):
            board = indexer.unrank(np.array([int(idx)]))[0]
            want_value, want_moves = best_moves(game, dbs, board)
            for kind, service in services.items():
                got_value, got_moves = service.best_moves(board)
                assert got_value == want_value, kind
                assert [m.pit for m in got_moves] == [
                    m.pit for m in want_moves
                ], kind
        for service in services.values():
            service.close()

    def test_game_reconstructed_from_metadata(
        self, awari_solved, awari_paged_path
    ):
        game, dbs = awari_solved
        service = make_service("paged", dbs, awari_paged_path)
        assert service.game.rules.describe() == game.rules.describe()
        service.close()

    def test_optimal_line_over_probe_service(
        self, awari_solved, awari_paged_path
    ):
        game, dbs = awari_solved
        service = make_service("paged", dbs, awari_paged_path)
        indexer = game.engine.indexer(5)
        rng = np.random.default_rng(9)
        for idx in rng.integers(0, indexer.count, size=5):
            board = indexer.unrank(np.array([int(idx)]))[0]
            realized, _ = optimal_line(game, service, board)
            assert realized == int(dbs[5][int(idx)])
        service.close()

    def test_evaluate_moves_depths(self, awari_solved, awari_paged_path):
        """The paged path reports no depths (not served), the memory path
        keeps whatever the DatabaseSet holds."""
        game, dbs = awari_solved
        service = make_service("paged", dbs, awari_paged_path)
        board = np.array([0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 1, 0], dtype=np.int16)
        for ev in service.evaluate_moves(board):
            assert ev.successor_depth in (None, 0)
        service.close()


class TestSearchIntegration:
    def test_search_over_paged_store_matches_memory(
        self, awari_solved, tmp_path
    ):
        """DatabaseProbingSearch over a paged ProbeService (partial
        databases, tiny cache) agrees with the in-memory search."""
        game, dbs = awari_solved
        from repro.db.store import DatabaseSet

        partial = DatabaseSet(
            game_name=dbs.game_name,
            values={i: dbs.values[i] for i in range(5)},
            rules=dbs.rules,
        )
        path = tmp_path / "partial.pgdb"
        write_paged(partial, path, block_positions=BLOCK_POSITIONS)
        service = ProbeService.from_paged(path, cache_bytes=SMALL_BUDGET)
        indexer = game.engine.indexer(5)
        rng = np.random.default_rng(4)
        checked = 0
        for idx in rng.integers(0, indexer.count, size=8):
            board = indexer.unrank(np.array([int(idx)]))[0]
            mem = DatabaseProbingSearch(game, partial, max_depth=16).solve(board)
            paged = DatabaseProbingSearch(game, service, max_depth=16).solve(board)
            assert paged.exact == mem.exact
            if mem.exact:
                assert paged.value == mem.value == int(dbs[5][int(idx)])
                checked += 1
        assert checked >= 1
        service.close()


class TestErrors:
    def test_index_out_of_range(self, awari_solved, awari_paged_path):
        game, dbs = awari_solved
        for kind in ("memory", "paged"):
            service = make_service(kind, dbs, awari_paged_path)
            with pytest.raises(IndexError, match="out of range"):
                service.probe(5, dbs[5].shape[0])
            with pytest.raises(IndexError):
                service.probe_many([(5, 0), (5, -1)])
            service.close()

    def test_missing_database(self, awari_solved, awari_paged_path):
        game, dbs = awari_solved
        for kind in ("memory", "paged"):
            service = make_service(kind, dbs, awari_paged_path)
            assert 99 not in service
            with pytest.raises(KeyError):
                service.probe(99, 0)
            service.close()

    def test_empty_batch(self, awari_solved, awari_paged_path):
        game, dbs = awari_solved
        service = make_service("memory", dbs, awari_paged_path)
        assert service.probe_many([]).shape == (0,)
        service.close()


class TestMemoryBackendParity:
    def test_metadata_and_depths(self, awari_solved):
        game, dbs = awari_solved
        service = ProbeService.from_database_set(dbs)
        assert service.game_name == dbs.game_name
        assert service.rules == dbs.rules
        assert service.ids() == dbs.ids()
        assert service.positions(5) == dbs[5].shape[0]
        assert service.backend_kind == "memory"
        assert service.depth_of(5, 0) is None  # fixture has no depths
        assert isinstance(service.backend, MemoryBackend)
        assert service.stats()["backend"] == "memory"
