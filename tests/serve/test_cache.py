"""BlockCache behaviour: LRU eviction order, byte-budget enforcement,
counters matching an oracle replay, and the obs gauge contract."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.serve.cache import BlockCache


def _block(fill, n=16):
    return np.full(n, fill, dtype=np.int16)  # 32 bytes at n=16


def _loader(fill, n=16, log=None):
    def load():
        if log is not None:
            log.append(fill)
        return _block(fill, n)

    return load


class TestLRU:
    def test_hit_returns_cached_object(self):
        cache = BlockCache(1024)
        first = cache.get("a", _loader(1))
        again = cache.get("a", _loader(2))
        assert again is first
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_is_least_recently_used(self):
        cache = BlockCache(96)  # room for three 32-byte blocks
        for key in "abc":
            cache.get(key, _loader(ord(key)))
        cache.get("a", _loader(0))  # touch a: LRU order is now b, c, a
        cache.get("d", _loader(4))  # evicts b
        assert cache.keys() == ["c", "a", "d"]
        assert "b" not in cache
        assert cache.evictions == 1

    def test_eviction_order_cascades(self):
        cache = BlockCache(64)
        cache.get("a", _loader(1))
        cache.get("b", _loader(2))
        big = cache.get("big", lambda: np.zeros(32, np.int16))  # 64 bytes
        assert cache.keys() == ["big"]
        assert cache.evictions == 2
        assert big.nbytes == 64

    def test_reload_after_eviction(self):
        loads = []
        cache = BlockCache(32)
        cache.get("a", _loader(1, log=loads))
        cache.get("b", _loader(2, log=loads))
        cache.get("a", _loader(1, log=loads))
        assert loads == [1, 2, 1]
        assert cache.misses == 3 and cache.hits == 0


class TestBudget:
    def test_budget_enforced(self):
        cache = BlockCache(100)
        for key in range(20):
            cache.get(key, _loader(key))
            assert cache.resident_bytes <= 100
        assert len(cache) == 3  # 3 * 32 = 96 <= 100

    def test_single_oversized_block_stays(self):
        """A budget smaller than one block still serves that block —
        resident never exceeds budget + one block."""
        cache = BlockCache(16)
        block = cache.get("huge", lambda: np.zeros(64, np.int16))
        assert len(cache) == 1
        assert cache.resident_bytes == 128
        assert cache.peak_resident_bytes <= 16 + block.nbytes
        cache.get("next", lambda: np.zeros(64, np.int16))
        assert len(cache) == 1  # the old one was evicted, not the new one
        assert cache.keys() == ["next"]

    def test_zero_budget_always_reloads(self):
        loads = []
        cache = BlockCache(0)
        cache.get("a", _loader(1, log=loads))
        cache.get("a", _loader(1, log=loads))
        # One block may stay resident (the +1 slack) so the second get
        # can still hit; what matters is the bound.
        assert cache.resident_bytes <= 32
        assert cache.budget_bytes == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(-1)


class TestOracleReplay:
    def test_counters_match_oracle(self):
        """Replay a seeded access sequence against a dict-based oracle LRU
        and require hit/miss/eviction counters to match exactly."""
        rng = np.random.default_rng(42)
        budget, block_bytes = 160, 32  # capacity: 5 blocks
        capacity = budget // block_bytes
        cache = BlockCache(budget)
        oracle: list = []  # LRU order, least recent first
        hits = misses = evictions = 0
        sequence = rng.integers(0, 12, size=500)
        for key in sequence:
            key = int(key)
            if key in oracle:
                hits += 1
                oracle.remove(key)
                oracle.append(key)
            else:
                misses += 1
                oracle.append(key)
                while len(oracle) > capacity:
                    oracle.pop(0)
                    evictions += 1
            cache.get(key, _loader(key))
        assert cache.hits == hits
        assert cache.misses == misses
        assert cache.evictions == evictions
        assert cache.keys() == oracle
        assert cache.hit_rate == pytest.approx(hits / 500)


class TestMetrics:
    def test_gauges_and_counters_exported(self):
        registry = MetricsRegistry()
        cache = BlockCache(64, metrics=registry.scoped("serve.cache"))
        cache.get("a", _loader(1))
        cache.get("a", _loader(1))
        cache.get("b", _loader(2))
        cache.get("c", _loader(3))
        counters = registry.counters
        assert counters["serve.cache.hits"] == cache.hits == 1
        assert counters["serve.cache.misses"] == cache.misses == 3
        assert counters["serve.cache.evictions"] == cache.evictions == 1
        gauges = registry.gauges
        assert gauges["serve.cache.resident_bytes"] == cache.resident_bytes
        assert gauges["serve.cache.resident_blocks"] == 2
        assert gauges["serve.cache.budget_bytes"] == 64
        assert (
            gauges["serve.cache.peak_resident_bytes"]
            == cache.peak_resident_bytes
        )

    def test_stats_dict(self):
        cache = BlockCache(64)
        cache.get("a", _loader(1))
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["resident_blocks"] == 1
        assert stats["budget_bytes"] == 64


class TestPut:
    def test_reinsertion_does_not_double_count(self):
        """put() of an existing key replaces the entry: resident_bytes
        reflects the new block only, no matter how often it is re-put."""
        cache = BlockCache(1024)
        for _ in range(5):
            cache.put("a", _block(1))
        assert cache.resident_bytes == 32
        assert len(cache) == 1

    def test_reinsertion_with_different_size_adjusts(self):
        cache = BlockCache(1024)
        cache.put("a", _block(1, n=16))  # 32 bytes
        cache.put("a", _block(1, n=64))  # 128 bytes
        assert cache.resident_bytes == 128
        cache.put("a", _block(1, n=8))  # 16 bytes
        assert cache.resident_bytes == 16

    def test_reinsertion_refreshes_lru_position(self):
        cache = BlockCache(96)
        for key in "abc":
            cache.put(key, _block(ord(key)))
        cache.put("a", _block(0))  # re-put moves a to most-recent
        cache.put("d", _block(4))  # evicts b, not a
        assert cache.keys() == ["c", "a", "d"]

    def test_miss_then_evict_under_packed_sizes(self):
        """The +one-block invariant with packed stored sizes: budget
        counts decompressed bytes, so tiny packed blocks that decode to
        full working blocks must still respect budget + one block."""
        cache = BlockCache(64)
        peak_bound = 64
        for key in range(10):
            block = _block(key, n=32)  # 64 working bytes, 16 "stored"
            cache.get(key, lambda b=block: b, stored_bytes=16)
            assert cache.resident_bytes <= peak_bound + block.nbytes
        assert cache.peak_resident_bytes <= peak_bound + 64

    def test_packed_resident_bytes_tracks_stored_sizes(self):
        registry = MetricsRegistry()
        cache = BlockCache(
            1024, metrics=registry.scoped("serve.cache")
        )
        cache.get("a", _loader(1), stored_bytes=8)
        cache.get("b", _loader(2), stored_bytes=8)
        assert cache.packed_resident_bytes == 16
        assert cache.resident_bytes == 64
        assert registry.gauges["serve.cache.packed_resident_bytes"] == 16
        # Replacement adjusts, eviction releases.
        cache.put("a", _block(1), stored_bytes=10)
        assert cache.packed_resident_bytes == 18
        cache.clear()
        assert cache.packed_resident_bytes == 0
        assert cache.stats()["packed_resident_bytes"] == 0

    def test_packed_resident_defaults_to_working_bytes(self):
        cache = BlockCache(1024)
        cache.get("a", _loader(1))  # no stored_bytes: raw parity
        assert cache.packed_resident_bytes == cache.resident_bytes

    def test_eviction_releases_stored_bytes(self):
        cache = BlockCache(64)  # two 32-byte blocks
        cache.get("a", _loader(1), stored_bytes=4)
        cache.get("b", _loader(2), stored_bytes=4)
        cache.get("c", _loader(3), stored_bytes=4)  # evicts a
        assert cache.evictions == 1
        assert cache.packed_resident_bytes == 8
