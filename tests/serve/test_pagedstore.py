"""Paged-store format tests: exact round-trips over three games, block
addressing, and the header/error contract."""

import json
import zlib

import numpy as np
import pytest

from repro.db.store import DatabaseSet
from repro.serve.pagedstore import SCHEMA, PagedStore, write_paged

from .conftest import BLOCK_POSITIONS


@pytest.fixture()
def paged(solved, tmp_path):
    name, game, dbs = solved
    path = tmp_path / f"{name}.pgdb"
    summary = write_paged(dbs, path, block_positions=BLOCK_POSITIONS)
    return dbs, path, summary


class TestRoundTrip:
    def test_every_database_bit_identical(self, paged):
        dbs, path, _ = paged
        with PagedStore(path) as store:
            assert store.ids() == dbs.ids()
            for db_id in dbs.ids():
                np.testing.assert_array_equal(store.read_all(db_id), dbs[db_id])
                assert store.read_all(db_id).dtype == np.int16

    def test_metadata_survives(self, paged):
        dbs, path, summary = paged
        with PagedStore(path) as store:
            assert store.game_name == dbs.game_name
            assert store.rules == dbs.rules
            assert store.total_positions == dbs.total_positions
            assert store.block_positions == BLOCK_POSITIONS
        assert summary["positions"] == dbs.total_positions
        assert summary["stored_ratio"] > 1.0  # solved values compress well

    def test_single_block_is_the_right_slice(self, paged):
        dbs, path, _ = paged
        with PagedStore(path) as store:
            for db_id in dbs.ids():
                n_blocks = store.n_blocks(db_id)
                expected = -(-dbs[db_id].shape[0] // BLOCK_POSITIONS) or 1
                assert n_blocks == expected
                last = n_blocks - 1
                np.testing.assert_array_equal(
                    store.read_block(db_id, last),
                    dbs[db_id][last * BLOCK_POSITIONS :],
                )


class TestAddressing:
    def test_block_of(self, paged):
        _, path, _ = paged
        with PagedStore(path) as store:
            assert store.block_of(0) == 0
            assert store.block_of(BLOCK_POSITIONS - 1) == 0
            assert store.block_of(BLOCK_POSITIONS) == 1

    def test_out_of_range_block(self, paged):
        dbs, path, _ = paged
        with PagedStore(path) as store:
            top = dbs.ids()[-1]
            with pytest.raises(IndexError, match="out of range"):
                store.read_block(top, store.n_blocks(top))
            with pytest.raises(IndexError):
                store.read_block(top, -1)

    def test_missing_database(self, paged):
        _, path, _ = paged
        with PagedStore(path) as store:
            assert "nope" not in store
            with pytest.raises(KeyError, match="not present"):
                store.read_block("nope", 0)


class TestFormatContract:
    def test_bad_magic_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.pgdb"
        bogus.write_bytes(b"NOTPAGED" + b"\x00" * 32)
        with pytest.raises(ValueError, match="bad magic"):
            PagedStore(bogus)

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "schema.pgdb"
        header = json.dumps({"schema": "other/v9"}).encode()
        path.write_bytes(
            b"REPROPGD" + len(header).to_bytes(8, "little") + header
        )
        with pytest.raises(ValueError, match="schema"):
            PagedStore(path)

    def test_corrupt_block_detected(self, tmp_path):
        dbs = DatabaseSet(
            game_name="awari",
            values={0: np.arange(10, dtype=np.int16)},
        )
        path = tmp_path / "corrupt.pgdb"
        write_paged(dbs, path, block_positions=4)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a bit inside the last compressed block
        path.write_bytes(bytes(raw))
        with PagedStore(path) as store:
            with pytest.raises((zlib.error, IOError)):
                store.read_all(0)

    def test_bad_block_positions_rejected(self, tmp_path):
        dbs = DatabaseSet(game_name="awari", values={0: np.zeros(1, np.int16)})
        with pytest.raises(ValueError, match="block_positions"):
            write_paged(dbs, tmp_path / "x.pgdb", block_positions=0)

    def test_empty_database_roundtrips(self, tmp_path):
        dbs = DatabaseSet(
            game_name="synthetic",
            values={0: np.zeros(0, dtype=np.int16), 1: np.array([3], np.int16)},
        )
        path = tmp_path / "empty.pgdb"
        write_paged(dbs, path, block_positions=4)
        with PagedStore(path) as store:
            assert store.positions(0) == 0
            assert store.read_all(0).shape == (0,)
            np.testing.assert_array_equal(store.read_all(1), dbs[1])

    def test_string_ids_roundtrip(self, tmp_path):
        dbs = DatabaseSet(
            game_name="krk",
            values={"kqk": np.array([5], np.int16), "krk": np.array([7, 0], np.int16)},
        )
        path = tmp_path / "str.pgdb"
        write_paged(dbs, path, block_positions=4)
        with PagedStore(path) as store:
            assert store.ids() == ["kqk", "krk"]
            np.testing.assert_array_equal(store.read_all("krk"), dbs["krk"])

    def test_header_schema_field(self, paged):
        _, path, _ = paged
        raw = path.read_bytes()
        header_len = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[16 : 16 + header_len].decode())
        assert header["schema"] == SCHEMA
        assert header["dtype"] == "<i2"
