"""Overload shedding on both servers.

With ``max_inflight=1`` and an injected per-request latency, one slow
request holds the whole budget; a second concurrent request must be
shed with a *well-formed* overload answer — ``ok: false`` with
``reason: "overloaded"`` on the JSON wire, an error frame carrying
``FLAG_OVERLOADED`` on the binary wire — and the shed connection must
stay usable.  Shedding is per request, never a hang or a closed socket:
that contract is what lets the cluster router fail over instantly
without tripping the endpoint's circuit breaker.
"""

import socket
import threading
import time

import pytest

from repro.aserve.client import BinaryProbeClient
from repro.aserve.server import AsyncProbeServer
from repro.obs import MetricsRegistry
from repro.resilience.faults import FaultPlan
from repro.serve.client import ProbeClient, ProbeOverloadedError
from repro.serve.protocol import recv_message, send_message
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService

from tests.workloads import solved_set

#: Every request pays this delay while *holding* its in-flight slot, so
#: a concurrent second request reliably finds the budget exhausted.
HOLD_MS = 500

#: How long to let the slow request settle into its delay before firing
#: the request that must be shed.
SETTLE_SECONDS = 0.15


def start_server(server_cls, registry, scope, state_dir):
    _, dbs = solved_set("synthetic")
    service = ProbeService.from_database_set(dbs)
    faults = FaultPlan.from_specs(
        [f"latency:ms={HOLD_MS}"], state_dir=str(state_dir)
    )
    server = server_cls(
        service, metrics=registry.scoped(scope), faults=faults,
        max_inflight=1,
    ).start()
    return server, service, dbs


def probe_in_background(client, db_id):
    """Fire ``client.probe(db_id, 0)`` on a thread; returns (thread,
    results dict) — the result lands under ``"value"``."""
    results: dict = {}

    def hold():
        results["value"] = client.probe(db_id, 0)

    thread = threading.Thread(target=hold, daemon=True)
    thread.start()
    return thread, results


class TestJsonOverload:
    def test_second_request_is_shed_then_the_server_recovers(self, tmp_path):
        registry = MetricsRegistry()
        server, service, dbs = start_server(
            ProbeServer, registry, "serve.server", tmp_path
        )
        slow = ProbeClient(server.host, server.port)
        fast = ProbeClient(server.host, server.port)
        try:
            db_id = dbs.ids()[0]
            expected = int(dbs[db_id][0])
            thread, results = probe_in_background(slow, db_id)
            time.sleep(SETTLE_SECONDS)
            with pytest.raises(ProbeOverloadedError, match="overloaded"):
                fast.probe(db_id, 0)
            thread.join(timeout=30)
            assert results["value"] == expected
            assert registry.counters["serve.server.overloads"] >= 1
            # The shed client was never disconnected: once the slot is
            # free the very same connection serves correct answers.
            assert fast.probe(db_id, 0) == expected
            assert fast.reconnects <= 1  # the initial connect only
        finally:
            slow.close()
            fast.close()
            server.shutdown()
            service.close()

    def test_shed_answer_is_well_formed_on_the_wire(self, tmp_path):
        """Raw-socket check: the overload answer is a parseable JSON
        frame with a machine-readable reason, not a dropped or
        half-written connection."""
        registry = MetricsRegistry()
        server, service, dbs = start_server(
            ProbeServer, registry, "serve.server", tmp_path
        )
        slow = ProbeClient(server.host, server.port)
        try:
            db_id = dbs.ids()[0]
            thread, results = probe_in_background(slow, db_id)
            time.sleep(SETTLE_SECONDS)
            with socket.create_connection(
                (server.host, server.port), timeout=5
            ) as raw:
                send_message(
                    raw, {"op": "probe", "db": db_id, "index": 0}
                )
                response = recv_message(raw)
            assert response is not None
            assert response["ok"] is False
            assert response["reason"] == "overloaded"
            assert "overloaded" in response["error"]
            thread.join(timeout=30)
            assert results["value"] == int(dbs[db_id][0])
        finally:
            slow.close()
            server.shutdown()
            service.close()


class TestBinaryOverload:
    def test_second_request_is_shed_then_the_server_recovers(self, tmp_path):
        registry = MetricsRegistry()
        server, service, dbs = start_server(
            AsyncProbeServer, registry, "aserve.server", tmp_path
        )
        slow = BinaryProbeClient(server.host, server.port)
        fast = BinaryProbeClient(server.host, server.port)
        try:
            db_id = dbs.ids()[0]
            expected = int(dbs[db_id][0])
            thread, results = probe_in_background(slow, db_id)
            time.sleep(SETTLE_SECONDS)
            # The FLAG_OVERLOADED error frame surfaces as the same
            # exception type as the JSON reason does.
            with pytest.raises(ProbeOverloadedError, match="overloaded"):
                fast.probe(db_id, 0)
            thread.join(timeout=30)
            assert results["value"] == expected
            assert registry.counters["aserve.server.overloads"] >= 1
            # Per-request shedding: the multiplexed connection is still
            # open and serves once the in-flight budget frees up.
            assert fast.probe(db_id, 0) == expected
        finally:
            slow.close()
            fast.close()
            server.shutdown()
            service.close()
