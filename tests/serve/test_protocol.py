"""Protocol robustness: hostile and broken frames against a live server.

Every case here attacks a running :class:`ProbeServer` with raw sockets
— malformed JSON, truncated length prefixes, frames over the server's
``max_message_bytes``, mid-frame disconnects — and asserts the contract
of ``_serve_connection``: the client gets an ``ok: false`` response or
a counted disconnect, the connection is torn down, and the server keeps
answering *other* clients.  Never a hung connection, never an unhandled
exception in a serving thread.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.aserve import frames
from repro.aserve.client import BinaryProbeClient
from repro.aserve.server import AsyncProbeServer
from repro.obs import MetricsRegistry
from repro.resilience import FaultPlan, ReconnectPolicy
from repro.serve.client import ProbeClient, ProbeError
from repro.serve.protocol import recv_message, send_message
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService

#: Socket timeout for the attacking side: long enough for a loopback
#: round trip, short enough that a hung server fails the test quickly.
ATTACK_TIMEOUT = 5.0


@pytest.fixture()
def hardened(awari_solved):
    """A live server with a deliberately small frame cap, plus its
    metrics registry and ground truth."""
    game, dbs = awari_solved
    registry = MetricsRegistry()
    service = ProbeService.from_database_set(dbs)
    server = ProbeServer(
        service, metrics=registry.scoped("serve.server"),
        max_message_bytes=4096,
    ).start()
    # Capture any exception that escapes a serving thread: the isolation
    # contract says none ever may.
    escaped = []
    previous_hook = threading.excepthook

    def hook(args):
        escaped.append(args)
        previous_hook(args)

    threading.excepthook = hook
    yield server, registry, dbs
    threading.excepthook = previous_hook
    server.shutdown()
    service.close()
    assert escaped == [], f"exception escaped a serving thread: {escaped}"


def raw_connection(server) -> socket.socket:
    """A plain TCP connection to the server, no protocol helpers."""
    sock = socket.create_connection((server.host, server.port),
                                    timeout=ATTACK_TIMEOUT)
    return sock


def server_still_answers(server, dbs) -> bool:
    """A fresh well-behaved client gets a correct answer."""
    with ProbeClient(server.host, server.port, timeout=ATTACK_TIMEOUT) as c:
        return c.probe(5, 0) == int(dbs[5][0])


def wait_for_count(registry, names, minimum=1, timeout=ATTACK_TIMEOUT):
    """Poll until the summed counters reach ``minimum``.

    The serving thread bumps its counters asynchronously with respect to
    the attacking socket, so counter assertions must poll rather than
    read once.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        total = sum(registry.counters.get(n, 0) for n in names)
        if total >= minimum:
            return total
        time.sleep(0.02)
    raise AssertionError(
        f"counters {names} never reached {minimum}: {registry.counters}"
    )


class TestMalformedFrames:
    def test_bad_json_gets_ok_false_then_close(self, hardened):
        server, registry, dbs = hardened
        with raw_connection(server) as sock:
            payload = b"\xff\xfe{not json"
            sock.sendall(len(payload).to_bytes(4, "big") + payload)
            response = recv_message(sock)
            assert response["ok"] is False
            assert "bad JSON" in response["error"]
            # After a bad frame the stream cannot be re-synchronized:
            # the server must close, not hang.
            assert recv_message(sock) is None
        wait_for_count(registry, ["serve.server.errors"])
        assert server_still_answers(server, dbs)

    def test_non_object_json_rejected(self, hardened):
        server, registry, dbs = hardened
        with raw_connection(server) as sock:
            payload = b"[1, 2, 3]"
            sock.sendall(len(payload).to_bytes(4, "big") + payload)
            response = recv_message(sock)
            assert response["ok"] is False
            assert "JSON object" in response["error"]
        assert server_still_answers(server, dbs)

    def test_oversized_frame_rejected_from_prefix(self, hardened):
        """A declared length over the server's cap is rejected from the
        4-byte prefix alone — no payload needs to be sent at all."""
        server, registry, dbs = hardened
        with raw_connection(server) as sock:
            sock.sendall((4097).to_bytes(4, "big"))
            response = recv_message(sock)
            assert response["ok"] is False
            assert "exceeds limit" in response["error"]
        wait_for_count(registry, ["serve.server.errors"])
        assert server_still_answers(server, dbs)

    def test_valid_json_unknown_op_keeps_connection(self, hardened):
        """A well-framed nonsense request is an application error: the
        connection survives and keeps serving."""
        server, registry, dbs = hardened
        with raw_connection(server) as sock:
            send_message(sock, {"op": "detonate"})
            response = recv_message(sock)
            assert response["ok"] is False and "unknown op" in response["error"]
            send_message(sock, {"op": "ping"})
            assert recv_message(sock)["pong"] is True


class TestTornConnections:
    def test_truncated_length_prefix_then_close(self, hardened):
        """Two bytes of a length prefix, then EOF: treated as a clean
        disconnect, not an error loop."""
        server, registry, dbs = hardened
        sock = raw_connection(server)
        sock.sendall(b"\x00\x00")
        sock.close()
        assert server_still_answers(server, dbs)

    def test_mid_frame_disconnect_is_counted(self, hardened):
        """A frame that promises 100 bytes and delivers 10 before EOF
        must produce an answered error or a counted disconnect."""
        server, registry, dbs = hardened
        sock = raw_connection(server)
        sock.sendall((100).to_bytes(4, "big") + b"0123456789")
        sock.close()
        assert server_still_answers(server, dbs)
        wait_for_count(
            registry,
            ["serve.server.errors", "serve.server.client_disconnects"],
        )

    def test_client_vanishes_between_requests(self, hardened):
        """An abrupt RST between frames never wedges the serving
        thread."""
        server, registry, dbs = hardened
        sock = raw_connection(server)
        send_message(sock, {"op": "ping"})
        assert recv_message(sock)["pong"] is True
        # Force an RST instead of a graceful FIN.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()
        assert server_still_answers(server, dbs)

    def test_hostile_clients_leave_no_stuck_threads(self, hardened):
        """After a burst of torn connections, shutdown-visible serving
        threads drain (no thread is parked on a dead socket)."""
        server, registry, dbs = hardened
        for _ in range(8):
            sock = raw_connection(server)
            sock.sendall((64).to_bytes(4, "big") + b"x")
            sock.close()
        assert server_still_answers(server, dbs)
        # The accept loop prunes dead threads on the next accept; every
        # connection above must eventually leave _serve_connection.
        deadline = time.monotonic() + ATTACK_TIMEOUT
        while time.monotonic() < deadline:
            alive = [t for t in threading.enumerate()
                     if t.name == f"probe-server-{server.port}-conn"
                     and t.is_alive()]
            if not alive:
                break
            time.sleep(0.1)
        else:
            raise AssertionError(
                f"serving threads stuck on dead sockets: {alive}"
            )


class TestThreadedHardening:
    def test_binary_frame_on_json_server_rejected_with_hint(self, hardened):
        """A binary frame sent to the JSON-only threaded server gets a
        well-formed ok:false naming the protocol mismatch — never a
        hang, never a cryptic parse error."""
        server, registry, dbs = hardened
        with raw_connection(server) as sock:
            sock.sendall(
                frames.pack_frame(frames.encode_ping(1))
            )
            response = recv_message(sock)
            assert response["ok"] is False
            assert "binary-protocol frame" in response["error"]
            assert recv_message(sock) is None
        assert server_still_answers(server, dbs)

    def test_max_connections_rejects_with_ok_false(self, awari_solved):
        """Beyond the cap, a connection is answered with a capacity
        rejection and closed instead of getting a thread."""
        game, dbs = awari_solved
        registry = MetricsRegistry()
        service = ProbeService.from_database_set(dbs)
        server = ProbeServer(
            service, metrics=registry.scoped("serve.server"),
            max_connections=1,
        ).start()
        try:
            with ProbeClient(server.host, server.port,
                             timeout=ATTACK_TIMEOUT) as held:
                assert held.ping()
                with raw_connection(server) as sock:
                    response = recv_message(sock)
                    assert response["ok"] is False
                    assert "capacity" in response["error"]
            wait_for_count(registry, ["serve.server.connections_rejected"])
            # The held connection is gone; capacity frees up (the accept
            # loop prunes dead threads lazily, so poll).
            deadline = time.monotonic() + ATTACK_TIMEOUT
            while time.monotonic() < deadline:
                try:
                    assert server_still_answers(server, dbs)
                    break
                except (ProbeError, OSError):
                    time.sleep(0.05)
            else:
                raise AssertionError("capacity never freed after close")
        finally:
            server.shutdown()
            service.close()


@pytest.fixture()
def hardened_binary(awari_solved):
    """A live AsyncProbeServer with a small frame cap, plus metrics and
    ground truth."""
    game, dbs = awari_solved
    registry = MetricsRegistry()
    service = ProbeService.from_database_set(dbs)
    server = AsyncProbeServer(
        service, metrics=registry.scoped("aserve.server"),
        max_message_bytes=4096,
    ).start()
    yield server, registry, dbs
    server.shutdown()
    service.close()


def recv_frame(sock) -> bytes:
    """One length-prefixed payload off a raw socket (b'' on EOF)."""
    head = b""
    while len(head) < 4:
        chunk = sock.recv(4 - len(head))
        if not chunk:
            return b""
        head += chunk
    (length,) = struct.unpack(">I", head)
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            return b""
        payload += chunk
    return payload


def binary_still_answers(server, dbs) -> bool:
    """A fresh pipelined client gets a correct answer."""
    with BinaryProbeClient(server.host, server.port,
                           timeout=ATTACK_TIMEOUT) as client:
        return client.probe(5, 0) == int(dbs[5][0])


class TestBinaryFuzz:
    """Hostile binary frames against the asyncio server: every case must
    end in an error frame or a counted disconnect with the event loop
    intact — no escaped exceptions, no hangs, and a clean drain at
    shutdown (the fixture's ``shutdown()`` would block forever on a
    wedged handler)."""

    def test_truncated_header_gets_error_frame(self, hardened_binary):
        """A binary frame shorter than the 8-byte header is answered
        with an error frame and the connection survives (the length
        prefix kept the stream in sync)."""
        server, registry, dbs = hardened_binary
        with raw_connection(server) as sock:
            sock.sendall(frames.pack_frame(bytes([frames.BINARY_VERSION, 3])))
            response = frames.decode_response(recv_frame(sock))
            assert response.error is not None
            assert "shorter than" in response.error
            # Same connection keeps serving well-formed frames.
            sock.sendall(frames.pack_frame(frames.encode_ping(7)))
            pong = frames.decode_response(recv_frame(sock))
            assert pong.seq == 7 and pong.error is None
        wait_for_count(registry, ["aserve.server.errors"])
        assert binary_still_answers(server, dbs)

    def test_bad_opcode_gets_error_frame(self, hardened_binary):
        server, registry, dbs = hardened_binary
        with raw_connection(server) as sock:
            payload = struct.pack(
                ">BBHI", frames.BINARY_VERSION, 99, 0, 42
            )
            sock.sendall(frames.pack_frame(payload))
            response = frames.decode_response(recv_frame(sock))
            assert response.error is not None and "opcode" in response.error
            assert response.seq == 42  # error still carries the seq
        assert binary_still_answers(server, dbs)

    def test_oversized_from_prefix_rejected_then_closed(self,
                                                        hardened_binary):
        """A declared length over the cap is rejected from the 4-byte
        prefix alone — no payload buffered, connection closed."""
        server, registry, dbs = hardened_binary
        with raw_connection(server) as sock:
            sock.sendall((4097).to_bytes(4, "big"))
            response = recv_message(sock)
            assert response["ok"] is False
            assert "exceeds limit" in response["error"]
            assert recv_message(sock) is None
        wait_for_count(registry, ["aserve.server.errors"])
        assert binary_still_answers(server, dbs)

    def test_mid_frame_disconnect_is_counted(self, hardened_binary):
        """A frame promising 100 bytes that dies after 10 is a counted
        disconnect, not an error loop."""
        server, registry, dbs = hardened_binary
        sock = raw_connection(server)
        sock.sendall((100).to_bytes(4, "big") + b"\xb1" + b"x" * 9)
        sock.close()
        assert binary_still_answers(server, dbs)
        wait_for_count(registry, ["aserve.server.client_disconnects"])

    def test_unknown_version_byte_rejected(self, hardened_binary):
        """Garbage that is neither 0xB1 nor JSON gets a well-formed
        ok:false naming the byte, then close."""
        server, registry, dbs = hardened_binary
        with raw_connection(server) as sock:
            payload = b"\x00\x01\x02\x03"
            sock.sendall(len(payload).to_bytes(4, "big") + payload)
            response = recv_message(sock)
            assert response["ok"] is False
            assert "unknown protocol version byte 0x00" in response["error"]
            assert recv_message(sock) is None
        assert binary_still_answers(server, dbs)

    def test_empty_frame_rejected(self, hardened_binary):
        server, registry, dbs = hardened_binary
        with raw_connection(server) as sock:
            sock.sendall((0).to_bytes(4, "big"))
            response = recv_message(sock)
            assert response["ok"] is False
            assert "empty frame" in response["error"]
        assert binary_still_answers(server, dbs)

    def test_interleaved_json_on_binary_connection(self, hardened_binary):
        """One connection freely mixing binary and JSON frames: dispatch
        is per frame, so both protocols answer on the same socket."""
        server, registry, dbs = hardened_binary
        with raw_connection(server) as sock:
            sock.sendall(frames.pack_frame(frames.encode_ping(1)))
            assert frames.decode_response(recv_frame(sock)).seq == 1
            send_message(sock, {"op": "ping"})
            assert recv_message(sock)["pong"] is True
            sock.sendall(frames.pack_frame(frames.encode_probe(2, 5, 0)))
            response = frames.decode_response(recv_frame(sock))
            assert response.seq == 2
            assert response.value == int(dbs[5][0])
        wait_for_count(registry, ["aserve.server.frames_json"])
        wait_for_count(registry, ["aserve.server.frames_binary"], minimum=2)

    def test_bad_json_on_binary_server_closes(self, hardened_binary):
        """The JSON fallback keeps the threaded server's contract: a
        malformed JSON frame answers ok:false and closes."""
        server, registry, dbs = hardened_binary
        with raw_connection(server) as sock:
            payload = b"{not json"
            sock.sendall(len(payload).to_bytes(4, "big") + payload)
            response = recv_message(sock)
            assert response["ok"] is False and "bad JSON" in response["error"]
            assert recv_message(sock) is None
        assert binary_still_answers(server, dbs)

    def test_torn_burst_then_clean_drain(self, hardened_binary):
        """A burst of torn connections leaves nothing wedged: the server
        still answers, and the fixture's shutdown() — which waits for
        every connection task — completes (a stuck handler would hang
        the test)."""
        server, registry, dbs = hardened_binary
        for i in range(8):
            sock = raw_connection(server)
            if i % 2:
                sock.sendall((64).to_bytes(4, "big") + b"\xb1")
            else:
                sock.sendall(b"\x00\x00")
            sock.close()
        assert binary_still_answers(server, dbs)

    def test_max_connections_cap(self, awari_solved):
        """Connections beyond the cap get the JSON capacity rejection;
        closing one frees a slot."""
        game, dbs = awari_solved
        registry = MetricsRegistry()
        service = ProbeService.from_database_set(dbs)
        server = AsyncProbeServer(
            service, metrics=registry.scoped("aserve.server"),
            max_connections=2,
        ).start()
        try:
            with BinaryProbeClient(server.host, server.port) as a, \
                    BinaryProbeClient(server.host, server.port) as b:
                assert a.ping() and b.ping()
                with raw_connection(server) as sock:
                    response = recv_message(sock)
                    assert response["ok"] is False
                    assert "capacity" in response["error"]
            wait_for_count(registry, ["aserve.server.connections_rejected"])
            deadline = time.monotonic() + ATTACK_TIMEOUT
            while time.monotonic() < deadline:
                try:
                    assert binary_still_answers(server, dbs)
                    break
                except (ProbeError, OSError):
                    time.sleep(0.05)
            else:
                raise AssertionError("capacity never freed after close")
        finally:
            server.shutdown()
            service.close()


class TestDropUnderPipelining:
    """Injected connection drops against the asyncio server while a
    pipelined client keeps a window of requests in flight.  Every sever
    kills the in-flight tail of the pipeline at once; the client's
    reconnect-and-replay must still deliver bit-correct answers for
    every batch, and both sides must count what happened."""

    FUZZ_POLICY = ReconnectPolicy(
        connect_attempts=4,
        request_replays=3,
        backoff_seconds=0.01,
        backoff_max_seconds=0.02,
    )

    def _faulted_server(self, dbs, registry, spec):
        service = ProbeService.from_database_set(dbs)
        server = AsyncProbeServer(
            service, metrics=registry.scoped("aserve.server"),
            faults=FaultPlan.from_specs([spec]),
        ).start()
        return service, server

    def test_severed_mid_pipeline_replays_to_correct_answers(
            self, awari_solved):
        """``drop-conn:after=5``: each connection is severed after five
        answers, so a run of three-batch pipelines keeps getting cut
        mid-flight.  Every returned value must still match the oracle."""
        game, dbs = awari_solved
        registry = MetricsRegistry()
        service, server = self._faulted_server(
            dbs, registry, "drop-conn:after=5"
        )
        rng = np.random.default_rng(1234)
        ids = sorted(dbs.ids())
        try:
            with BinaryProbeClient(
                server.host, server.port, timeout=ATTACK_TIMEOUT,
                policy=self.FUZZ_POLICY,
            ) as client:
                for _ in range(8):
                    batches = [
                        [
                            (db_id, int(rng.integers(len(dbs[db_id]))))
                            for db_id in rng.choice(ids, size=3)
                        ]
                        for _ in range(3)
                    ]
                    results = client.pipeline(batches)
                    for batch, values in zip(batches, results):
                        for (db_id, index), value in zip(batch, values):
                            assert value == int(dbs[db_id][index])
                assert client.reconnects >= 1
        finally:
            server.shutdown()
            service.close()
        assert registry.counters["aserve.server.faults.connections_severed"] >= 1

    def test_dropped_accept_is_absorbed_by_replay(self, awari_solved):
        """``drop-conn:every=2``: every second accepted connection is
        closed before serving a byte.  The client only notices on its
        first request and must reconnect-and-replay transparently."""
        game, dbs = awari_solved
        registry = MetricsRegistry()
        service, server = self._faulted_server(
            dbs, registry, "drop-conn:every=2"
        )
        try:
            for _ in range(4):  # hit both dropped and surviving accepts
                with BinaryProbeClient(
                    server.host, server.port, timeout=ATTACK_TIMEOUT,
                    policy=self.FUZZ_POLICY,
                ) as client:
                    assert client.probe(5, 0) == int(dbs[5][0])
        finally:
            server.shutdown()
            service.close()
        assert registry.counters["aserve.server.faults.connections_dropped"] >= 1
