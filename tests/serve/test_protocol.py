"""Protocol robustness: hostile and broken frames against a live server.

Every case here attacks a running :class:`ProbeServer` with raw sockets
— malformed JSON, truncated length prefixes, frames over the server's
``max_message_bytes``, mid-frame disconnects — and asserts the contract
of ``_serve_connection``: the client gets an ``ok: false`` response or
a counted disconnect, the connection is torn down, and the server keeps
answering *other* clients.  Never a hung connection, never an unhandled
exception in a serving thread.
"""

import socket
import struct
import threading
import time

import pytest

from repro.obs import MetricsRegistry
from repro.serve.client import ProbeClient
from repro.serve.protocol import recv_message, send_message
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService

#: Socket timeout for the attacking side: long enough for a loopback
#: round trip, short enough that a hung server fails the test quickly.
ATTACK_TIMEOUT = 5.0


@pytest.fixture()
def hardened(awari_solved):
    """A live server with a deliberately small frame cap, plus its
    metrics registry and ground truth."""
    game, dbs = awari_solved
    registry = MetricsRegistry()
    service = ProbeService.from_database_set(dbs)
    server = ProbeServer(
        service, metrics=registry.scoped("serve.server"),
        max_message_bytes=4096,
    ).start()
    # Capture any exception that escapes a serving thread: the isolation
    # contract says none ever may.
    escaped = []
    previous_hook = threading.excepthook

    def hook(args):
        escaped.append(args)
        previous_hook(args)

    threading.excepthook = hook
    yield server, registry, dbs
    threading.excepthook = previous_hook
    server.shutdown()
    service.close()
    assert escaped == [], f"exception escaped a serving thread: {escaped}"


def raw_connection(server) -> socket.socket:
    """A plain TCP connection to the server, no protocol helpers."""
    sock = socket.create_connection((server.host, server.port),
                                    timeout=ATTACK_TIMEOUT)
    return sock


def server_still_answers(server, dbs) -> bool:
    """A fresh well-behaved client gets a correct answer."""
    with ProbeClient(server.host, server.port, timeout=ATTACK_TIMEOUT) as c:
        return c.probe(5, 0) == int(dbs[5][0])


def wait_for_count(registry, names, minimum=1, timeout=ATTACK_TIMEOUT):
    """Poll until the summed counters reach ``minimum``.

    The serving thread bumps its counters asynchronously with respect to
    the attacking socket, so counter assertions must poll rather than
    read once.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        total = sum(registry.counters.get(n, 0) for n in names)
        if total >= minimum:
            return total
        time.sleep(0.02)
    raise AssertionError(
        f"counters {names} never reached {minimum}: {registry.counters}"
    )


class TestMalformedFrames:
    def test_bad_json_gets_ok_false_then_close(self, hardened):
        server, registry, dbs = hardened
        with raw_connection(server) as sock:
            payload = b"\xff\xfe{not json"
            sock.sendall(len(payload).to_bytes(4, "big") + payload)
            response = recv_message(sock)
            assert response["ok"] is False
            assert "bad JSON" in response["error"]
            # After a bad frame the stream cannot be re-synchronized:
            # the server must close, not hang.
            assert recv_message(sock) is None
        wait_for_count(registry, ["serve.server.errors"])
        assert server_still_answers(server, dbs)

    def test_non_object_json_rejected(self, hardened):
        server, registry, dbs = hardened
        with raw_connection(server) as sock:
            payload = b"[1, 2, 3]"
            sock.sendall(len(payload).to_bytes(4, "big") + payload)
            response = recv_message(sock)
            assert response["ok"] is False
            assert "JSON object" in response["error"]
        assert server_still_answers(server, dbs)

    def test_oversized_frame_rejected_from_prefix(self, hardened):
        """A declared length over the server's cap is rejected from the
        4-byte prefix alone — no payload needs to be sent at all."""
        server, registry, dbs = hardened
        with raw_connection(server) as sock:
            sock.sendall((4097).to_bytes(4, "big"))
            response = recv_message(sock)
            assert response["ok"] is False
            assert "exceeds limit" in response["error"]
        wait_for_count(registry, ["serve.server.errors"])
        assert server_still_answers(server, dbs)

    def test_valid_json_unknown_op_keeps_connection(self, hardened):
        """A well-framed nonsense request is an application error: the
        connection survives and keeps serving."""
        server, registry, dbs = hardened
        with raw_connection(server) as sock:
            send_message(sock, {"op": "detonate"})
            response = recv_message(sock)
            assert response["ok"] is False and "unknown op" in response["error"]
            send_message(sock, {"op": "ping"})
            assert recv_message(sock)["pong"] is True


class TestTornConnections:
    def test_truncated_length_prefix_then_close(self, hardened):
        """Two bytes of a length prefix, then EOF: treated as a clean
        disconnect, not an error loop."""
        server, registry, dbs = hardened
        sock = raw_connection(server)
        sock.sendall(b"\x00\x00")
        sock.close()
        assert server_still_answers(server, dbs)

    def test_mid_frame_disconnect_is_counted(self, hardened):
        """A frame that promises 100 bytes and delivers 10 before EOF
        must produce an answered error or a counted disconnect."""
        server, registry, dbs = hardened
        sock = raw_connection(server)
        sock.sendall((100).to_bytes(4, "big") + b"0123456789")
        sock.close()
        assert server_still_answers(server, dbs)
        wait_for_count(
            registry,
            ["serve.server.errors", "serve.server.client_disconnects"],
        )

    def test_client_vanishes_between_requests(self, hardened):
        """An abrupt RST between frames never wedges the serving
        thread."""
        server, registry, dbs = hardened
        sock = raw_connection(server)
        send_message(sock, {"op": "ping"})
        assert recv_message(sock)["pong"] is True
        # Force an RST instead of a graceful FIN.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()
        assert server_still_answers(server, dbs)

    def test_hostile_clients_leave_no_stuck_threads(self, hardened):
        """After a burst of torn connections, shutdown-visible serving
        threads drain (no thread is parked on a dead socket)."""
        server, registry, dbs = hardened
        for _ in range(8):
            sock = raw_connection(server)
            sock.sendall((64).to_bytes(4, "big") + b"x")
            sock.close()
        assert server_still_answers(server, dbs)
        # The accept loop prunes dead threads on the next accept; every
        # connection above must eventually leave _serve_connection.
        deadline = time.monotonic() + ATTACK_TIMEOUT
        while time.monotonic() < deadline:
            alive = [t for t in threading.enumerate()
                     if t.name == f"probe-server-{server.port}-conn"
                     and t.is_alive()]
            if not alive:
                break
            time.sleep(0.1)
        else:
            raise AssertionError(
                f"serving threads stuck on dead sockets: {alive}"
            )
