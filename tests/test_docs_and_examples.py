"""Meta-tests: documentation coverage and example freshness."""

import ast
import inspect
import subprocess
import sys
from pathlib import Path

import pytest

import repro

SRC = Path(repro.__file__).parent
EXAMPLES = Path(__file__).parent.parent / "examples"


def public_modules():
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        if any(part.startswith("_") for part in rel.parts):
            continue
        yield path


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for path in public_modules():
            tree = ast.parse(path.read_text())
            if ast.get_docstring(tree) is None:
                missing.append(str(path))
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for path in public_modules():
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    if node.name.startswith("_"):
                        continue
                    if ast.get_docstring(node) is None:
                        missing.append(f"{path.name}:{node.name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_package_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestExamples:
    def test_every_example_has_module_docstring_and_main(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
            names = {
                n.name
                for n in tree.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            assert "main" in names, f"{path.name} lacks main()"

    @pytest.mark.parametrize(
        "example", ["other_games.py", "protocol_trace.py", "mpi_style.py"]
    )
    def test_fast_examples_run_clean(self, example):
        """The quick examples must execute end to end (the heavyweight
        sweeps are exercised by the benchmark suite instead)."""
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / example)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip()
