"""CLI and high-level API tests."""

import numpy as np
import pytest

from repro.api import solve_awari
from repro.cli import main


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    path = tmp_path_factory.mktemp("dbs") / "awari4.npz"
    assert main(["solve", "--stones", "4", "--out", str(path)]) == 0
    return path


class TestCLI:
    def test_solve_sequential(self, archive, capsys):
        out = capsys.readouterr().out
        assert archive.exists()

    def test_solve_parallel(self, capsys):
        assert main(["solve", "--stones", "3", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "simulated processors" in out
        assert "combining factor" in out

    def test_stats(self, archive, capsys):
        assert main(["stats", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "1,365" in out  # C(15, 11)

    def test_verify_clean(self, archive, capsys):
        assert main(["verify", str(archive), "--samples", "10"]) == 0
        out = capsys.readouterr().out
        assert "bellman ok" in out
        assert "all matched" in out

    def test_verify_detects_corruption(self, archive, tmp_path, capsys):
        from repro.db.store import DatabaseSet

        dbs = DatabaseSet.load(archive)
        dbs.values[4] = -dbs.values[4]
        bad = tmp_path / "bad.npz"
        dbs.save(bad)
        assert main(["verify", str(bad), "--samples", "1"]) == 1
        assert "VIOLATIONS" in capsys.readouterr().out

    def test_query(self, archive, capsys):
        assert main(["query", str(archive), "--board",
                     "0,0,0,0,0,1,1,0,0,0,0,2"]) == 0
        out = capsys.readouterr().out
        assert "value for the mover" in out

    def test_query_bad_board(self, archive, capsys):
        assert main(["query", str(archive), "--board", "1,2,3"]) == 2

    def test_query_missing_database(self, archive, capsys):
        board = ",".join(["4"] * 12)  # 48 stones, not in the archive
        assert main(["query", str(archive), "--board", board]) == 2


class TestAPI:
    def test_solve_awari_sequential(self):
        dbs, report = solve_awari(3)
        assert dbs.total_positions == 1 + 12 + 78 + 364
        assert report.wall_seconds > 0

    def test_solve_awari_parallel_matches(self):
        seq, _ = solve_awari(4)
        par, stats = solve_awari(4, procs=3)
        for n in range(5):
            np.testing.assert_array_equal(seq[n], par[n])
        assert stats[-1].n_procs == 3

    def test_negative_stones_rejected(self):
        with pytest.raises(ValueError):
            solve_awari(-1)

    def test_custom_rules(self):
        from repro.games.awari import AwariRules, GrandSlam

        dbs, _ = solve_awari(3, rules=AwariRules(grand_slam=GrandSlam.ALLOWED))
        assert "allowed" in dbs.rules


class TestMetricsCLI:
    @pytest.fixture(scope="class")
    def run_json(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("metrics") / "run.json"
        assert main([
            "solve", "--stones", "3", "--procs", "4",
            "--metrics-out", str(path),
        ]) == 0
        return path

    def test_manifest_schema(self, run_json):
        import json

        data = json.loads(run_json.read_text())
        assert data["schema"] == "repro/run-manifest/v1"
        assert data["game"] == "awari"
        assert data["command"] == "solve"
        assert data["config"]["stones"] == 3
        assert data["config"]["procs"] == 4
        for family in ("counters", "gauges", "histograms"):
            assert family in data["metrics"]
        assert data["metrics"]["counters"]["parallel.databases"] == 4
        assert "parallel.combining.packets" in data["metrics"]["counters"]
        assert "simnet.sent.UPDATE" in data["metrics"]["counters"]

    def test_deterministic_across_runs(self, run_json, tmp_path):
        import json

        again = tmp_path / "again.json"
        assert main([
            "solve", "--stones", "3", "--procs", "4",
            "--metrics-out", str(again),
        ]) == 0
        a = json.loads(run_json.read_text())
        b = json.loads(again.read_text())
        assert a["metrics"] == b["metrics"]

    def test_sequential_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "seq.json"
        assert main(["solve", "--stones", "2", "--metrics-out", str(path)]) == 0
        counters = json.loads(path.read_text())["metrics"]["counters"]
        assert counters["sequential.databases"] == 3
        assert "metrics written" in capsys.readouterr().out

    def test_render_command(self, run_json, capsys):
        assert main(["metrics", str(run_json)]) == 0
        out = capsys.readouterr().out
        assert "run manifest — awari (solve)" in out
        assert "communication summary (Table 3)" in out
        assert "counters" in out
        assert "parallel.combining.packets" in out
        assert "timers (wall clock)" in out

    def test_render_missing_file(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope.json")]) == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_render_bad_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/v1"}')
        assert main(["metrics", str(bad)]) == 2
        assert "schema" in capsys.readouterr().err


class TestServeCLI:
    @pytest.fixture(scope="class")
    def paged(self, archive, tmp_path_factory):
        path = tmp_path_factory.mktemp("paged") / "awari4.pgdb"
        assert main([
            "page", str(archive), str(path), "--block-positions", "256",
        ]) == 0
        return path

    def test_page_reports_compression(self, archive, tmp_path, capsys):
        assert main(["page", str(archive), str(tmp_path / "again.pgdb")]) == 0
        out = capsys.readouterr().out
        assert "paged 5 databases" in out and "ratio" in out

    def test_page_output_servable(self, archive, paged):
        from repro.db.store import DatabaseSet
        from repro.serve import ProbeService

        dbs = DatabaseSet.load(archive)
        with ProbeService.from_paged(paged, cache_bytes=4096) as service:
            assert service.probe(4, 0) == int(dbs[4][0])
            assert service.backend_kind == "paged"

    def test_page_rejects_missing_archive(self, tmp_path, capsys):
        assert main(["page", str(tmp_path / "nope.npz"),
                     str(tmp_path / "out.pgdb")]) == 2
        assert "cannot read archive" in capsys.readouterr().err

    @pytest.fixture(scope="class")
    def server(self, paged):
        from repro.serve import ProbeServer, ProbeService

        service = ProbeService.from_paged(paged, cache_bytes=8192)
        server = ProbeServer(service).start()
        yield server
        server.shutdown()
        service.close()

    def test_probe_value(self, archive, server, capsys):
        from repro.db.store import DatabaseSet

        dbs = DatabaseSet.load(archive)
        assert main(["probe", "--port", str(server.port),
                     "--db", "4", "--index", "7"]) == 0
        out = capsys.readouterr().out
        assert f"value {int(dbs[4][7]):+d}" in out

    def test_probe_board_and_stats(self, server, capsys):
        assert main(["probe", "--port", str(server.port),
                     "--board", "0,0,0,0,0,1,1,0,0,0,0,2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "value for the mover" in out
        assert "hit_rate" in out

    def test_probe_requires_a_question(self, server, capsys):
        assert main(["probe", "--port", str(server.port)]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_probe_db_without_index(self, server, capsys):
        assert main(["probe", "--port", str(server.port), "--db", "4"]) == 2

    def test_probe_bad_board(self, server, capsys):
        assert main(["probe", "--port", str(server.port),
                     "--board", "1,2,3"]) == 2

    def test_probe_server_error_is_reported(self, server, capsys):
        assert main(["probe", "--port", str(server.port),
                     "--db", "99", "--index", "0"]) == 1
        assert "probe failed" in capsys.readouterr().err

    def test_probe_no_server(self, capsys):
        import socket

        # Grab a port that is definitely closed.
        probe_sock = socket.socket()
        probe_sock.bind(("127.0.0.1", 0))
        port = probe_sock.getsockname()[1]
        probe_sock.close()
        assert main(["probe", "--port", str(port), "--db", "0",
                     "--index", "0"]) == 1
        assert "probe failed" in capsys.readouterr().err


class TestModelCommand:
    def test_model_headline(self, capsys):
        assert main(["model", "--stones", "13", "--procs", "64"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out and "speedup" in out

    def test_model_naive_is_wire_bound(self, capsys):
        assert main(["model", "--stones", "13", "--procs", "64",
                     "--combine", "1"]) == 0
        out = capsys.readouterr().out
        assert "combining factor : 1.0" in out
