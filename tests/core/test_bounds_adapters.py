"""Bounds-iteration solver, WDL adapter and heterogeneous-cluster tests."""

import numpy as np
import pytest

from repro.core.bounds import BoundsSolver, solve_bounds
from repro.core.graph import build_database_graph
from repro.core.parallel.driver import ParallelConfig, ParallelSolver
from repro.core.sequential import SequentialSolver
from repro.core.wdl import solve_wdl
from repro.core.wdl_adapter import WDLAsCapture, solve_wdl_parallel, values_to_status
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame
from repro.games.loopy import random_loopy_game
from repro.games.nim import NimGame


class TestBoundsSolver:
    @pytest.mark.parametrize("game_cls", [AwariCaptureGame, KalahCaptureGame])
    def test_matches_threshold_solver(self, game_cls):
        """Two completely different algorithms, identical databases."""
        game = game_cls()
        threshold, _ = SequentialSolver(game).solve(5)
        bounds, sweeps = BoundsSolver(game).solve(5)
        for n in range(6):
            np.testing.assert_array_equal(bounds[n], threshold[n])
        assert all(s >= 0 for s in sweeps.values())

    def test_bounds_bracket_values(self):
        game = AwariCaptureGame()
        values, _ = SequentialSolver(game).solve(4)
        graph = build_database_graph(game, 4, {n: values[n] for n in range(4)})
        result = solve_bounds(graph, 4)
        v = values[4].astype(np.int64)
        assert (result.lo <= v).all()
        assert (v <= result.hi).all()
        # Positive values are forced finitely: lo == v there.
        pos = v > 0
        np.testing.assert_array_equal(result.lo[pos], v[pos])
        neg = v < 0
        np.testing.assert_array_equal(result.hi[neg], v[neg])

    def test_draws_bracket_zero(self):
        game = AwariCaptureGame()
        values, _ = SequentialSolver(game).solve(4)
        graph = build_database_graph(game, 4, {n: values[n] for n in range(4)})
        result = solve_bounds(graph, 4)
        draws = values[4] == 0
        nonterm = graph.out_degree > 0
        sel = draws & nonterm
        assert (result.lo[sel] <= 0).all()
        assert (result.hi[sel] >= 0).all()

    def test_sweep_limit_raises(self):
        game = AwariCaptureGame()
        values, _ = SequentialSolver(game).solve(3)
        graph = build_database_graph(game, 3, {n: values[n] for n in range(3)})
        with pytest.raises(RuntimeError, match="converge"):
            solve_bounds(graph, 3, max_sweeps=1)


class TestWDLAdapter:
    def test_nim_parallel_equals_sequential(self):
        game = NimGame(heaps=2, cap=6)
        seq = solve_wdl(game)
        status, stats = solve_wdl_parallel(
            game,
            ParallelConfig(n_procs=3, predecessor_mode="unmove"),
            max_events=3_000_000,
        )
        np.testing.assert_array_equal(status, seq.status)
        assert stats.makespan_seconds > 0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_loopy_parallel_equals_sequential(self, seed):
        game = random_loopy_game(150, seed=seed)
        seq = solve_wdl(game)
        status, _ = solve_wdl_parallel(
            game,
            ParallelConfig(n_procs=4, predecessor_mode="unmove"),
            max_events=3_000_000,
        )
        np.testing.assert_array_equal(status, seq.status)

    def test_adapter_protocol(self):
        game = NimGame(heaps=2, cap=3)
        adapter = WDLAsCapture(game)
        assert adapter.db_sequence() == [0]
        assert adapter.db_size() == game.size
        assert adapter.value_bound() == 1
        with pytest.raises(ValueError):
            adapter.exit_db(0, 1)
        scan = adapter.scan_chunk(0, 0, game.size)
        assert (scan.capture == 0).all()
        # The empty position is terminal and lost: exit value -1.
        assert scan.terminal[0]
        assert scan.terminal_value[0] == -1

    def test_values_to_status(self):
        v = np.array([3, 0, -2, 1], dtype=np.int16)
        st = values_to_status(v)
        assert st.tolist() == [1, 0, 2, 1]


class TestHeterogeneousCluster:
    def test_values_unaffected_by_node_speeds(self):
        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        speeds = tuple(1.0 + 0.5 * (r % 3) for r in range(6))
        cfg = ParallelConfig(
            n_procs=6, predecessor_mode="unmove-cached", node_speeds=speeds
        )
        par, stats = ParallelSolver(game, cfg).solve(5, max_events=5_000_000)
        for n in range(6):
            np.testing.assert_array_equal(par[n], seq[n])

    def test_slow_nodes_stretch_makespan(self):
        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        lower = {n: seq[n] for n in range(5)}

        def run(speeds):
            cfg = ParallelConfig(
                n_procs=4,
                predecessor_mode="unmove-cached",
                node_speeds=speeds,
            )
            _, stats = ParallelSolver(game, cfg).solve_database(
                5, lower, max_events=5_000_000
            )
            return stats

        even = run(None)
        skewed = run((1.0, 1.0, 1.0, 2.0))
        assert skewed.makespan_seconds > even.makespan_seconds
        # With one half-speed node the static partition leaves an
        # imbalance the algorithm cannot fix.
        assert skewed.load_imbalance > even.load_imbalance

    def test_bad_speed_vectors_rejected(self):
        from repro.simnet.rts import Actor, SPMDRuntime

        with pytest.raises(ValueError):
            SPMDRuntime([Actor(), Actor()], node_speeds=[1.0])
        with pytest.raises(ValueError):
            SPMDRuntime([Actor()], node_speeds=[0.0])
