"""Unit tests for the value/status helpers."""

import numpy as np
import pytest

from repro.core.values import (
    LOSS,
    NO_EXIT,
    UNKNOWN,
    WIN,
    assemble_values,
    check_nested_thresholds,
    status_array,
)


class TestStatusArray:
    def test_fresh_is_unknown(self):
        s = status_array(5)
        assert (s == UNKNOWN).all()
        assert s.dtype == np.uint8

    def test_labels_distinct(self):
        assert len({int(UNKNOWN), int(WIN), int(LOSS)}) == 3

    def test_no_exit_below_any_value(self):
        assert NO_EXIT < -48


class TestAssembleValues:
    def test_single_threshold(self):
        w = np.array([True, False, False])
        l = np.array([False, True, False])
        v = assemble_values([w], [l])
        assert v.tolist() == [1, -1, 0]

    def test_higher_threshold_wins(self):
        w1 = np.array([True, True, False, False])
        l1 = np.array([False, False, True, True])
        w2 = np.array([True, False, False, False])
        l2 = np.array([False, False, True, False])
        v = assemble_values([w1, w2], [l1, l2])
        assert v.tolist() == [2, 1, -2, -1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            assemble_values([], [])


class TestNesting:
    def test_accepts_nested(self):
        w1 = np.array([True, True])
        w2 = np.array([True, False])
        l1 = np.array([False, False])
        l2 = np.array([False, False])
        check_nested_thresholds([w1, w2], [l1, l2])

    def test_rejects_win_violation(self):
        w1 = np.array([False, True])
        w2 = np.array([True, False])  # W_2 not within W_1
        l = np.array([False, False])
        with pytest.raises(AssertionError, match="W_2"):
            check_nested_thresholds([w1, w2], [l, l])

    def test_rejects_loss_violation(self):
        w = np.array([False, False])
        l1 = np.array([True, False])
        l2 = np.array([False, True])
        with pytest.raises(AssertionError, match="L_2"):
            check_nested_thresholds([w, w], [l1, l2])
