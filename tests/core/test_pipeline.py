"""Checkpointed pipeline tests."""

import json

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig, PipelineRunner
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame


@pytest.fixture(scope="module")
def reference():
    values, _ = SequentialSolver(AwariCaptureGame()).solve(5)
    return values


class TestBackends:
    @pytest.mark.parametrize("backend", ["sequential", "bounds", "parallel"])
    def test_backend_produces_reference_values(self, backend, reference):
        game = AwariCaptureGame()
        cfg = PipelineConfig(backend=backend)
        values, status = PipelineRunner(game, cfg).run(5)
        for n in range(6):
            np.testing.assert_array_equal(values[n], reference[n])
        assert status.solved == list(range(6))
        assert status.resumed == []

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(backend="quantum")


class TestCheckpointing:
    def test_resume_skips_solved_databases(self, tmp_path, reference):
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path / "ck"))
        runner = PipelineRunner(game, cfg)
        _, first = runner.run(3)
        assert first.solved == [0, 1, 2, 3]
        # Second run: everything comes from disk.
        values, second = PipelineRunner(game, cfg).run(5)
        assert second.resumed == [0, 1, 2, 3]
        assert second.solved == [4, 5]
        for n in range(6):
            np.testing.assert_array_equal(values[n], reference[n])

    def test_manifest_records_backend(self, tmp_path):
        game = AwariCaptureGame()
        cfg = PipelineConfig(backend="bounds", checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["game"] == "awari"
        assert manifest["databases"]["2"]["backend"] == "bounds"

    def test_mixed_backend_resume(self, tmp_path, reference):
        game = AwariCaptureGame()
        PipelineRunner(
            game, PipelineConfig(backend="bounds", checkpoint_dir=str(tmp_path))
        ).run(3)
        values, status = PipelineRunner(
            game,
            PipelineConfig(backend="sequential", checkpoint_dir=str(tmp_path)),
        ).run(5)
        assert status.resumed == [0, 1, 2, 3]
        np.testing.assert_array_equal(values[5], reference[5])

    def test_wrong_game_checkpoint_rejected(self, tmp_path):
        PipelineRunner(
            AwariCaptureGame(), PipelineConfig(checkpoint_dir=str(tmp_path))
        ).run(1)
        with pytest.raises(ValueError, match="not"):
            PipelineRunner(
                KalahCaptureGame(), PipelineConfig(checkpoint_dir=str(tmp_path))
            ).run(1)

    def test_corrupt_checkpoint_rebuilt(self, tmp_path, reference):
        """An overwritten checkpoint fails its CRC and is re-solved."""
        from repro.obs import MetricsRegistry

        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        bad = np.full(game.db_size(2), 99, dtype=np.int16)
        np.save(tmp_path / "db_2.npy", bad)
        metrics = MetricsRegistry()
        values, status = PipelineRunner(game, cfg, metrics=metrics).run(2)
        assert 2 in status.solved
        assert metrics.counters["resilience.checkpoints_rejected"] == 1
        np.testing.assert_array_equal(values[2], reference[2])

    def test_truncated_checkpoint_rebuilt(self, tmp_path, reference):
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        np.save(tmp_path / "db_2.npy", np.zeros(3, dtype=np.int16))
        values, status = PipelineRunner(game, cfg).run(2)
        assert 2 in status.solved
        np.testing.assert_array_equal(values[2], reference[2])

    def test_corrupt_legacy_checkpoint_raises(self, tmp_path):
        """A manifest record without a CRC (pre-resilience layout) keeps
        the strict value-range check: damage raises, never half-loads."""
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        for record in manifest["databases"].values():
            record.pop("crc32", None)
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        bad = np.full(game.db_size(2), 99, dtype=np.int16)
        np.save(tmp_path / "db_2.npy", bad)
        with pytest.raises(ValueError, match="corrupt"):
            PipelineRunner(game, cfg).run(2)

    def test_truncated_legacy_checkpoint_raises(self, tmp_path):
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        for record in manifest["databases"].values():
            record.pop("crc32", None)
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        np.save(tmp_path / "db_2.npy", np.zeros(3, dtype=np.int16))
        with pytest.raises(ValueError, match="entries"):
            PipelineRunner(game, cfg).run(2)

    def test_missing_file_resolves(self, tmp_path, reference):
        """A manifest entry whose file vanished is re-solved, not fatal."""
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        (tmp_path / "db_1.npy").unlink()
        values, status = PipelineRunner(game, cfg).run(2)
        assert 1 in status.solved
        np.testing.assert_array_equal(values[1], reference[1])

    def test_oversized_checkpoint_rebuilt(self, tmp_path, reference):
        """Size mismatch in the *larger* direction is caught too."""
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        np.save(
            tmp_path / "db_2.npy",
            np.zeros(game.db_size(2) + 7, dtype=np.int16),
        )
        values, status = PipelineRunner(game, cfg).run(2)
        assert 2 in status.solved
        np.testing.assert_array_equal(values[2], reference[2])


class TestBuildRecords:
    """Per-database build records (backend, wall time, metrics snapshot)
    written into the checkpoint manifest by the observability layer."""

    def test_manifest_records_metrics(self, tmp_path):
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        for key in ("0", "1", "2"):
            record = manifest["databases"][key]
            assert record["backend"] == "sequential"
            assert record["positions"] == game.db_size(int(key))
            assert record["wall_seconds"] >= 0
            counters = record["metrics"]["counters"]
            assert counters["sequential.databases"] == 1
            assert counters["sequential.positions_scanned"] == game.db_size(
                int(key)
            )

    def test_metrics_records_survive_resume(self, tmp_path):
        """Resuming after a partial build keeps the old build records
        verbatim and appends new ones alongside them."""
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        before = json.loads((tmp_path / "manifest.json").read_text())
        _, status = PipelineRunner(game, cfg).run(4)
        assert status.resumed == [0, 1, 2]
        assert status.solved == [3, 4]
        after = json.loads((tmp_path / "manifest.json").read_text())
        for key in ("0", "1", "2"):
            assert after["databases"][key] == before["databases"][key]
        assert "metrics" in after["databases"]["4"]

    def test_parallel_backend_records_combining(self, tmp_path):
        from repro.core.parallel.driver import ParallelConfig

        game = AwariCaptureGame()
        cfg = PipelineConfig(
            backend="parallel",
            checkpoint_dir=str(tmp_path),
            parallel=ParallelConfig(n_procs=2, predecessor_mode="unmove-cached"),
        )
        PipelineRunner(game, cfg).run(2)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        counters = manifest["databases"]["2"]["metrics"]["counters"]
        assert "parallel.combining.packets" in counters
        assert "simnet.ethernet.frames" in counters

    def test_run_level_registry_accumulates(self, tmp_path):
        from repro.obs import MetricsRegistry

        game = AwariCaptureGame()
        metrics = MetricsRegistry()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg, metrics=metrics).run(1)
        assert metrics.counters["pipeline.databases_solved"] == 2
        assert metrics.counters["sequential.databases"] == 2
        # A resume only touches the resume counter.
        metrics2 = MetricsRegistry()
        PipelineRunner(game, cfg, metrics=metrics2).run(1)
        assert metrics2.counters == {"pipeline.databases_resumed": 2}
