"""Checkpointed pipeline tests."""

import json

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig, PipelineRunner
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame


@pytest.fixture(scope="module")
def reference():
    values, _ = SequentialSolver(AwariCaptureGame()).solve(5)
    return values


class TestBackends:
    @pytest.mark.parametrize("backend", ["sequential", "bounds", "parallel"])
    def test_backend_produces_reference_values(self, backend, reference):
        game = AwariCaptureGame()
        cfg = PipelineConfig(backend=backend)
        values, status = PipelineRunner(game, cfg).run(5)
        for n in range(6):
            np.testing.assert_array_equal(values[n], reference[n])
        assert status.solved == list(range(6))
        assert status.resumed == []

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(backend="quantum")


class TestCheckpointing:
    def test_resume_skips_solved_databases(self, tmp_path, reference):
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path / "ck"))
        runner = PipelineRunner(game, cfg)
        _, first = runner.run(3)
        assert first.solved == [0, 1, 2, 3]
        # Second run: everything comes from disk.
        values, second = PipelineRunner(game, cfg).run(5)
        assert second.resumed == [0, 1, 2, 3]
        assert second.solved == [4, 5]
        for n in range(6):
            np.testing.assert_array_equal(values[n], reference[n])

    def test_manifest_records_backend(self, tmp_path):
        game = AwariCaptureGame()
        cfg = PipelineConfig(backend="bounds", checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["game"] == "awari"
        assert manifest["databases"]["2"]["backend"] == "bounds"

    def test_mixed_backend_resume(self, tmp_path, reference):
        game = AwariCaptureGame()
        PipelineRunner(
            game, PipelineConfig(backend="bounds", checkpoint_dir=str(tmp_path))
        ).run(3)
        values, status = PipelineRunner(
            game,
            PipelineConfig(backend="sequential", checkpoint_dir=str(tmp_path)),
        ).run(5)
        assert status.resumed == [0, 1, 2, 3]
        np.testing.assert_array_equal(values[5], reference[5])

    def test_wrong_game_checkpoint_rejected(self, tmp_path):
        PipelineRunner(
            AwariCaptureGame(), PipelineConfig(checkpoint_dir=str(tmp_path))
        ).run(1)
        with pytest.raises(ValueError, match="not"):
            PipelineRunner(
                KalahCaptureGame(), PipelineConfig(checkpoint_dir=str(tmp_path))
            ).run(1)

    def test_corrupt_checkpoint_detected(self, tmp_path):
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        bad = np.full(game.db_size(2), 99, dtype=np.int16)
        np.save(tmp_path / "db_2.npy", bad)
        with pytest.raises(ValueError, match="corrupt"):
            PipelineRunner(game, cfg).run(2)

    def test_truncated_checkpoint_detected(self, tmp_path):
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        np.save(tmp_path / "db_2.npy", np.zeros(3, dtype=np.int16))
        with pytest.raises(ValueError, match="entries"):
            PipelineRunner(game, cfg).run(2)

    def test_missing_file_resolves(self, tmp_path, reference):
        """A manifest entry whose file vanished is re-solved, not fatal."""
        game = AwariCaptureGame()
        cfg = PipelineConfig(checkpoint_dir=str(tmp_path))
        PipelineRunner(game, cfg).run(2)
        (tmp_path / "db_1.npy").unlink()
        values, status = PipelineRunner(game, cfg).run(2)
        assert 1 in status.solved
        np.testing.assert_array_equal(values[1], reference[1])
