"""Direct unit tests for graph construction and the kernel on hand-built
miniature problems (no game engine involved)."""

import numpy as np
import pytest

from repro.core.graph import CSR, build_database_graph, scan_chunk_to_parts
from repro.core.kernel import RAProblem, csr_provider, solve_kernel, threshold_init
from repro.core.values import LOSS, NO_EXIT, UNKNOWN, WIN
from repro.games.awari_db import AwariCaptureGame
from repro.simnet.costs import CostModel, DEFAULT_COSTS


def tiny_problem(edges, n, win0=(), loss0=(), loss_eligible=None):
    """Build an RAProblem over an explicit internal edge list."""
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    fwd = CSR.from_edges(n, src, dst)
    rev = CSR.from_edges(n, dst, src)
    status = np.zeros(n, dtype=np.uint8)
    status[list(win0)] = WIN
    status[list(loss0)] = LOSS
    counts = np.bincount(src, minlength=n).astype(np.int32)
    if loss_eligible is None:
        loss_eligible = np.ones(n, dtype=bool)
    return RAProblem(
        size=n,
        status=status,
        counts=counts,
        predecessors=csr_provider(rev),
        loss_eligible=np.asarray(loss_eligible),
    )


class TestKernelMicro:
    def test_chain_alternates(self):
        # 2 -> 1 -> 0, position 0 starts LOSS.
        problem = tiny_problem([(1, 0), (2, 1)], 3, loss0=[0])
        res = solve_kernel(problem)
        assert res.status.tolist() == [LOSS, WIN, LOSS]
        assert res.depth.tolist() == [0, 1, 2]

    def test_win_priority_over_counter(self):
        # 2 has moves to both a LOSS (0) and a WIN (1): must be WIN.
        problem = tiny_problem([(2, 0), (2, 1)], 3, win0=[1], loss0=[0])
        res = solve_kernel(problem)
        assert res.status[2] == WIN

    def test_counter_requires_all_children(self):
        # 2 -> {0, 1}; only 0 is WIN: 2 stays unknown (1 unresolved).
        problem = tiny_problem([(2, 0), (2, 1)], 3, win0=[0])
        res = solve_kernel(problem)
        assert res.status[2] == UNKNOWN

    def test_loss_eligibility_gates_losses(self):
        # Same shape, both children WIN, but 2 has a good exit: not LOSS.
        eligible = np.array([True, True, False])
        problem = tiny_problem(
            [(2, 0), (2, 1)], 3, win0=[0, 1], loss_eligible=eligible
        )
        res = solve_kernel(problem)
        assert res.status[2] == UNKNOWN

    def test_parallel_edges_counted_twice(self):
        # 1 has TWO moves to 0 (parallel edges); 0 wins -> both must drain.
        problem = tiny_problem([(1, 0), (1, 0)], 2, win0=[0])
        res = solve_kernel(problem)
        assert res.status[1] == LOSS

    def test_same_round_decrements_through_parallel_edges(self):
        # 2 holds four internal moves: two parallel edges into each of 0
        # and 1, and both children are WIN from round zero.  All four
        # decrements arrive at 2 in the SAME propagation round and every
        # one must count — an implementation that deduplicates (parent,
        # child) pairs or assigns instead of accumulating would leave the
        # counter at 2 and misreport 2 as a draw.
        edges = [(2, 0), (2, 0), (2, 1), (2, 1)]
        problem = tiny_problem(edges, 3, win0=[0, 1])
        res = solve_kernel(problem)
        assert res.status[2] == LOSS
        assert res.depth[2] == 1  # finalized by the first round's batch

    def test_parallel_edge_decrement_shortfall_is_not_a_loss(self):
        # Same shape, but only child 0 ever wins: the two parallel edges
        # into 0 drain 2 of 3 escape options, and 2 must stay undecided.
        problem = tiny_problem([(2, 0), (2, 0), (2, 1)], 3, win0=[0])
        res = solve_kernel(problem)
        assert res.status[2] == UNKNOWN

    def test_cycle_stays_drawn(self):
        problem = tiny_problem([(0, 1), (1, 0)], 2)
        res = solve_kernel(problem)
        assert (res.status == UNKNOWN).all()
        assert res.rounds == 0

    def test_notification_count(self):
        problem = tiny_problem([(1, 0), (2, 1)], 3, loss0=[0])
        res = solve_kernel(problem)
        # 0 notifies 1; 1 notifies 2; 2 notifies nobody.
        assert res.parent_notifications == 2

    def test_round_sizes_recorded(self):
        problem = tiny_problem([(1, 0), (2, 1)], 3, loss0=[0])
        res = solve_kernel(problem, record_rounds=True)
        assert res.round_sizes == [1, 1, 1]


class TestThresholdInit:
    @pytest.fixture(scope="class")
    def graph(self):
        game = AwariCaptureGame()
        from repro.core.sequential import SequentialSolver

        values, _ = SequentialSolver(game).solve(3)
        return build_database_graph(game, 4, {n: values[n] for n in range(4)})

    def test_rejects_nonpositive_threshold(self, graph):
        with pytest.raises(ValueError):
            threshold_init(graph, 0)

    def test_win_seeds_have_sufficient_exits(self, graph):
        problem = threshold_init(graph, 2)
        seeded = problem.status == WIN
        assert (graph.best_exit[seeded] >= 2).all()

    def test_loss_seeds_are_leaves_with_bad_exits(self, graph):
        problem = threshold_init(graph, 2)
        seeded = problem.status == LOSS
        assert (graph.out_degree[seeded] == 0).all()
        assert (graph.best_exit[seeded] <= -2).all()

    def test_higher_threshold_seeds_fewer_wins(self, graph):
        w1 = (threshold_init(graph, 1).status == WIN).sum()
        w4 = (threshold_init(graph, 4).status == WIN).sum()
        assert w4 < w1


class TestTransposeValidation:
    def test_rejects_n_smaller_than_source_rows(self):
        csr = CSR.from_edges(4, np.array([0, 3]), np.array([1, 2]))
        with pytest.raises(ValueError, match="source rows"):
            csr.transpose(3)

    def test_rejects_destinations_out_of_range(self):
        csr = CSR.from_edges(3, np.array([0, 1]), np.array([1, 7]))
        with pytest.raises(ValueError, match="out of range"):
            csr.transpose(3)

    def test_accepts_wider_node_range(self):
        # Transposing onto MORE nodes than the forward graph is legal
        # (extra nodes simply have no predecessors).
        csr = CSR.from_edges(2, np.array([0, 1]), np.array([1, 0]))
        rev = csr.transpose(5)
        assert rev.indptr.shape[0] == 6
        assert rev.n_edges == 2


class TestScanChunkToParts:
    """The shared chunk-scan helper is the single source of truth for
    terminal/capture/internal handling (used by the sequential builder
    and both multiprocess fan-out paths)."""

    @pytest.fixture(scope="class")
    def setup(self):
        game = AwariCaptureGame()
        from repro.core.sequential import SequentialSolver

        values, _ = SequentialSolver(game).solve(3)
        return game, {n: values[n] for n in range(4)}

    def test_chunked_parts_reassemble_the_whole_scan(self, setup):
        game, lower = setup
        size = game.db_size(4)
        whole = scan_chunk_to_parts(game, 4, lower, 0, size)
        pieces = [
            scan_chunk_to_parts(game, 4, lower, s, min(s + 97, size))
            for s in range(0, size, 97)
        ]
        np.testing.assert_array_equal(
            np.concatenate([p.best_exit for p in pieces]), whole.best_exit
        )
        np.testing.assert_array_equal(
            np.concatenate([p.out_degree for p in pieces]), whole.out_degree
        )
        # Global edge indices concatenate in scan order: bit-identical
        # edge list regardless of chunk boundaries.
        np.testing.assert_array_equal(
            np.concatenate([p.src for p in pieces]), whole.src
        )
        np.testing.assert_array_equal(
            np.concatenate([p.dst for p in pieces]), whole.dst
        )
        assert sum(p.moves_generated for p in pieces) == whole.moves_generated
        assert sum(p.exit_lookups for p in pieces) == whole.exit_lookups

    def test_parts_agree_with_built_graph(self, setup):
        game, lower = setup
        size = game.db_size(4)
        graph = build_database_graph(game, 4, lower)
        parts = scan_chunk_to_parts(game, 4, lower, 0, size)
        np.testing.assert_array_equal(parts.best_exit, graph.best_exit)
        np.testing.assert_array_equal(parts.out_degree, graph.out_degree)
        assert parts.n_edges == graph.forward.n_edges
        assert parts.moves_generated == graph.work.moves_generated
        assert parts.exit_lookups == graph.work.exit_lookups


class TestGraphBuild:
    def test_work_counters(self):
        game = AwariCaptureGame()
        from repro.core.sequential import SequentialSolver

        values, _ = SequentialSolver(game).solve(2)
        graph = build_database_graph(game, 3, {n: values[n] for n in range(3)})
        assert graph.work.positions_scanned == game.db_size(3)
        assert graph.work.moves_generated > 0
        assert graph.work.edges_internal == graph.forward.n_edges
        assert graph.memory_bytes() > 0

    def test_no_exit_sentinel_only_on_positions_without_exits(self):
        game = AwariCaptureGame()
        from repro.core.sequential import SequentialSolver

        values, _ = SequentialSolver(game).solve(3)
        graph = build_database_graph(game, 4, {n: values[n] for n in range(4)})
        scan = game.scan_chunk(4, 0, game.db_size(4))
        has_capture = (scan.legal & (scan.capture > 0)).any(axis=1)
        no_exit = graph.best_exit == np.int16(NO_EXIT)
        assert not (no_exit & (has_capture | scan.terminal)).any()

    def test_out_degree_matches_internal_moves(self):
        game = AwariCaptureGame()
        from repro.core.sequential import SequentialSolver

        values, _ = SequentialSolver(game).solve(2)
        graph = build_database_graph(game, 3, {n: values[n] for n in range(3)})
        scan = game.scan_chunk(3, 0, game.db_size(3))
        internal = (scan.legal & (scan.capture == 0)).sum(axis=1)
        np.testing.assert_array_equal(graph.out_degree, internal)


class TestCostModel:
    def test_scaled_cpu_only(self):
        scaled = DEFAULT_COSTS.scaled(cpu_factor=2.0)
        assert scaled.scan_position == 2 * DEFAULT_COSTS.scan_position
        assert scaled.msg_overhead_send == DEFAULT_COSTS.msg_overhead_send

    def test_scaled_msg_only(self):
        scaled = DEFAULT_COSTS.scaled(msg_factor=3.0)
        assert scaled.msg_overhead_recv == 3 * DEFAULT_COSTS.msg_overhead_recv
        assert scaled.update_generate == DEFAULT_COSTS.update_generate

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.scan_position = 1.0

    def test_custom_model(self):
        m = CostModel(scan_position=1.0)
        assert m.scan_position == 1.0
