"""Direct unit tests for graph construction and the kernel on hand-built
miniature problems (no game engine involved)."""

import numpy as np
import pytest

from repro.core.graph import CSR, build_database_graph
from repro.core.kernel import RAProblem, csr_provider, solve_kernel, threshold_init
from repro.core.values import LOSS, NO_EXIT, UNKNOWN, WIN
from repro.games.awari_db import AwariCaptureGame
from repro.simnet.costs import CostModel, DEFAULT_COSTS


def tiny_problem(edges, n, win0=(), loss0=(), loss_eligible=None):
    """Build an RAProblem over an explicit internal edge list."""
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    fwd = CSR.from_edges(n, src, dst)
    rev = CSR.from_edges(n, dst, src)
    status = np.zeros(n, dtype=np.uint8)
    status[list(win0)] = WIN
    status[list(loss0)] = LOSS
    counts = np.bincount(src, minlength=n).astype(np.int32)
    if loss_eligible is None:
        loss_eligible = np.ones(n, dtype=bool)
    return RAProblem(
        size=n,
        status=status,
        counts=counts,
        predecessors=csr_provider(rev),
        loss_eligible=np.asarray(loss_eligible),
    )


class TestKernelMicro:
    def test_chain_alternates(self):
        # 2 -> 1 -> 0, position 0 starts LOSS.
        problem = tiny_problem([(1, 0), (2, 1)], 3, loss0=[0])
        res = solve_kernel(problem)
        assert res.status.tolist() == [LOSS, WIN, LOSS]
        assert res.depth.tolist() == [0, 1, 2]

    def test_win_priority_over_counter(self):
        # 2 has moves to both a LOSS (0) and a WIN (1): must be WIN.
        problem = tiny_problem([(2, 0), (2, 1)], 3, win0=[1], loss0=[0])
        res = solve_kernel(problem)
        assert res.status[2] == WIN

    def test_counter_requires_all_children(self):
        # 2 -> {0, 1}; only 0 is WIN: 2 stays unknown (1 unresolved).
        problem = tiny_problem([(2, 0), (2, 1)], 3, win0=[0])
        res = solve_kernel(problem)
        assert res.status[2] == UNKNOWN

    def test_loss_eligibility_gates_losses(self):
        # Same shape, both children WIN, but 2 has a good exit: not LOSS.
        eligible = np.array([True, True, False])
        problem = tiny_problem(
            [(2, 0), (2, 1)], 3, win0=[0, 1], loss_eligible=eligible
        )
        res = solve_kernel(problem)
        assert res.status[2] == UNKNOWN

    def test_parallel_edges_counted_twice(self):
        # 1 has TWO moves to 0 (parallel edges); 0 wins -> both must drain.
        problem = tiny_problem([(1, 0), (1, 0)], 2, win0=[0])
        res = solve_kernel(problem)
        assert res.status[1] == LOSS

    def test_cycle_stays_drawn(self):
        problem = tiny_problem([(0, 1), (1, 0)], 2)
        res = solve_kernel(problem)
        assert (res.status == UNKNOWN).all()
        assert res.rounds == 0

    def test_notification_count(self):
        problem = tiny_problem([(1, 0), (2, 1)], 3, loss0=[0])
        res = solve_kernel(problem)
        # 0 notifies 1; 1 notifies 2; 2 notifies nobody.
        assert res.parent_notifications == 2

    def test_round_sizes_recorded(self):
        problem = tiny_problem([(1, 0), (2, 1)], 3, loss0=[0])
        res = solve_kernel(problem, record_rounds=True)
        assert res.round_sizes == [1, 1, 1]


class TestThresholdInit:
    @pytest.fixture(scope="class")
    def graph(self):
        game = AwariCaptureGame()
        from repro.core.sequential import SequentialSolver

        values, _ = SequentialSolver(game).solve(3)
        return build_database_graph(game, 4, {n: values[n] for n in range(4)})

    def test_rejects_nonpositive_threshold(self, graph):
        with pytest.raises(ValueError):
            threshold_init(graph, 0)

    def test_win_seeds_have_sufficient_exits(self, graph):
        problem = threshold_init(graph, 2)
        seeded = problem.status == WIN
        assert (graph.best_exit[seeded] >= 2).all()

    def test_loss_seeds_are_leaves_with_bad_exits(self, graph):
        problem = threshold_init(graph, 2)
        seeded = problem.status == LOSS
        assert (graph.out_degree[seeded] == 0).all()
        assert (graph.best_exit[seeded] <= -2).all()

    def test_higher_threshold_seeds_fewer_wins(self, graph):
        w1 = (threshold_init(graph, 1).status == WIN).sum()
        w4 = (threshold_init(graph, 4).status == WIN).sum()
        assert w4 < w1


class TestGraphBuild:
    def test_work_counters(self):
        game = AwariCaptureGame()
        from repro.core.sequential import SequentialSolver

        values, _ = SequentialSolver(game).solve(2)
        graph = build_database_graph(game, 3, {n: values[n] for n in range(3)})
        assert graph.work.positions_scanned == game.db_size(3)
        assert graph.work.moves_generated > 0
        assert graph.work.edges_internal == graph.forward.n_edges
        assert graph.memory_bytes() > 0

    def test_no_exit_sentinel_only_on_positions_without_exits(self):
        game = AwariCaptureGame()
        from repro.core.sequential import SequentialSolver

        values, _ = SequentialSolver(game).solve(3)
        graph = build_database_graph(game, 4, {n: values[n] for n in range(4)})
        scan = game.scan_chunk(4, 0, game.db_size(4))
        has_capture = (scan.legal & (scan.capture > 0)).any(axis=1)
        no_exit = graph.best_exit == np.int16(NO_EXIT)
        assert not (no_exit & (has_capture | scan.terminal)).any()

    def test_out_degree_matches_internal_moves(self):
        game = AwariCaptureGame()
        from repro.core.sequential import SequentialSolver

        values, _ = SequentialSolver(game).solve(2)
        graph = build_database_graph(game, 3, {n: values[n] for n in range(3)})
        scan = game.scan_chunk(3, 0, game.db_size(3))
        internal = (scan.legal & (scan.capture == 0)).sum(axis=1)
        np.testing.assert_array_equal(graph.out_degree, internal)


class TestCostModel:
    def test_scaled_cpu_only(self):
        scaled = DEFAULT_COSTS.scaled(cpu_factor=2.0)
        assert scaled.scan_position == 2 * DEFAULT_COSTS.scan_position
        assert scaled.msg_overhead_send == DEFAULT_COSTS.msg_overhead_send

    def test_scaled_msg_only(self):
        scaled = DEFAULT_COSTS.scaled(msg_factor=3.0)
        assert scaled.msg_overhead_recv == 3 * DEFAULT_COSTS.msg_overhead_recv
        assert scaled.update_generate == DEFAULT_COSTS.update_generate

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.scan_position = 1.0

    def test_custom_model(self):
        m = CostModel(scan_position=1.0)
        assert m.scan_position == 1.0
