"""Edge cases of the distributed worker protocol."""

import numpy as np
import pytest

from repro.core.parallel.driver import ParallelConfig, ParallelSolver
from repro.core.parallel.worker import WorkerConfig
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.games.synthetic import SyntheticCaptureGame

MAX_EVENTS = 3_000_000


@pytest.fixture(scope="module")
def game():
    return AwariCaptureGame()


@pytest.fixture(scope="module")
def seq(game):
    values, _ = SequentialSolver(game).solve(4)
    return values


class TestDegenerateShapes:
    def test_more_processors_than_positions(self, game, seq):
        """db 1 has 12 positions; run it on 20 workers (8 own nothing)."""
        cfg = ParallelConfig(n_procs=20, predecessor_mode="unmove-cached")
        values, stats = ParallelSolver(game, cfg).solve_database(
            1, {0: seq[0]}, max_events=MAX_EVENTS
        )
        np.testing.assert_array_equal(values, seq[1])
        assert stats.n_procs == 20

    def test_single_position_database(self, game):
        """db 0: one position, bound 0 — the degenerate fast path."""
        cfg = ParallelConfig(n_procs=4, predecessor_mode="unmove-cached")
        values, _ = ParallelSolver(game, cfg).solve_database(
            0, {}, max_events=MAX_EVENTS
        )
        assert values.shape == (1,)
        assert values[0] == 0

    def test_tiny_work_batches(self, game, seq):
        cfg = ParallelConfig(
            n_procs=4, work_batch=1, predecessor_mode="unmove-cached"
        )
        values, _ = ParallelSolver(game, cfg).solve_database(
            4, {n: seq[n] for n in range(4)}, max_events=MAX_EVENTS
        )
        np.testing.assert_array_equal(values, seq[4])

    def test_tiny_scan_batches(self, game, seq):
        cfg = ParallelConfig(
            n_procs=3, scan_batch=1, predecessor_mode="unmove-cached"
        )
        values, _ = ParallelSolver(game, cfg).solve_database(
            3, {n: seq[n] for n in range(3)}, max_events=MAX_EVENTS
        )
        np.testing.assert_array_equal(values, seq[3])


class TestTimersAndTokens:
    def test_zero_linger(self, game, seq):
        cfg = ParallelConfig(
            n_procs=4, flush_linger=0.0, predecessor_mode="unmove-cached"
        )
        values, _ = ParallelSolver(game, cfg).solve_database(
            4, {n: seq[n] for n in range(4)}, max_events=MAX_EVENTS
        )
        np.testing.assert_array_equal(values, seq[4])

    def test_huge_linger_still_terminates(self, game, seq):
        cfg = ParallelConfig(
            n_procs=4, flush_linger=10.0, predecessor_mode="unmove-cached"
        )
        values, stats = ParallelSolver(game, cfg).solve_database(
            4, {n: seq[n] for n in range(4)}, max_events=MAX_EVENTS
        )
        np.testing.assert_array_equal(values, seq[4])
        assert stats.makespan_seconds > 0

    def test_aggressive_token_interval(self, game, seq):
        """Probing for termination every millisecond costs tokens but
        cannot corrupt anything."""
        cfg = ParallelConfig(
            n_procs=4, token_interval=1e-3, predecessor_mode="unmove-cached"
        )
        values, stats = ParallelSolver(game, cfg).solve_database(
            4, {n: seq[n] for n in range(4)}, max_events=MAX_EVENTS
        )
        np.testing.assert_array_equal(values, seq[4])
        lazy = ParallelConfig(
            n_procs=4, token_interval=1.0, predecessor_mode="unmove-cached"
        )
        _, lazy_stats = ParallelSolver(game, lazy).solve_database(
            4, {n: seq[n] for n in range(4)}, max_events=MAX_EVENTS
        )
        assert stats.token_rounds >= lazy_stats.token_rounds

    def test_safra_never_terminates_early(self, game, seq):
        """With a glacial network (seconds of latency) updates stay in
        flight a long time; the run must still finish with exact values —
        early termination would freeze positions as draws."""
        from repro.simnet.ethernet import EthernetConfig

        cfg = ParallelConfig(
            n_procs=4,
            predecessor_mode="unmove-cached",
            token_interval=1e-3,  # probe constantly, tempting fate
            ethernet=EthernetConfig(
                bandwidth_bps=1e4, propagation_delay_s=0.5
            ),
        )
        values, _ = ParallelSolver(game, cfg).solve_database(
            3, {n: seq[n] for n in range(3)}, max_events=MAX_EVENTS
        )
        np.testing.assert_array_equal(values, seq[3])


class TestWorkerConfigValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            WorkerConfig(predecessor_mode="psychic")

    def test_combining_capacity_validated_in_buffers(self, game, seq):
        cfg = ParallelConfig(
            n_procs=2, combining_capacity=0, predecessor_mode="unmove-cached"
        )
        with pytest.raises(ValueError):
            ParallelSolver(game, cfg).solve_database(
                2, {n: seq[n] for n in range(2)}
            )


class TestSyntheticEdge:
    def test_databases_with_empty_levels(self):
        """Synthetic games can have 1-position levels anywhere in the
        chain; the pipeline must thread them through."""
        game = SyntheticCaptureGame(levels=5, max_size=3, seed=11)
        seq, _ = SequentialSolver(game).solve(4)
        cfg = ParallelConfig(n_procs=3, predecessor_mode="unmove")
        par, _ = ParallelSolver(game, cfg).solve(4, max_events=MAX_EVENTS)
        for d in range(5):
            np.testing.assert_array_equal(par[d], seq[d])
