"""Partition strategy tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    BlockPartition,
    CyclicPartition,
    HashPartition,
    balance_report,
    make_partition,
)

KINDS = ["block", "cyclic", "hash"]


class TestFactory:
    @pytest.mark.parametrize("kind", KINDS)
    def test_factory_builds(self, kind):
        p = make_partition(kind, 100, 7)
        assert p.name == kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown partition"):
            make_partition("striped", 10, 2)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            make_partition("block", -1, 2)
        with pytest.raises(ValueError):
            make_partition("block", 10, 0)


class TestBijection:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("size,parts", [(100, 7), (64, 8), (13, 5), (5, 8)])
    def test_ownership_partitions_everything(self, kind, size, parts):
        p = make_partition(kind, size, parts)
        seen = np.zeros(size, dtype=int)
        for r in range(parts):
            li = p.local_indices(r)
            seen[li] += 1
            # owner_of agrees with local_indices.
            assert (p.owner_of(li) == r).all()
            # to_local maps onto 0..len-1 in order.
            np.testing.assert_array_equal(
                p.to_local(li), np.arange(li.shape[0])
            )
        np.testing.assert_array_equal(seen, np.ones(size, dtype=int))

    @pytest.mark.parametrize("kind", KINDS)
    def test_roundtrip_global_local(self, kind):
        p = make_partition(kind, 1000, 9)
        idx = np.arange(1000)
        owners = p.owner_of(idx)
        slots = p.to_local(idx)
        for r in range(9):
            li = p.local_indices(r)
            np.testing.assert_array_equal(li[slots[owners == r]], idx[owners == r])

    @given(st.integers(1, 500), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_counts_sum_to_size(self, size, parts):
        for kind in KINDS:
            p = make_partition(kind, size, parts)
            assert sum(p.local_count(r) for r in range(parts)) == size


class TestBalance:
    @pytest.mark.parametrize("kind", KINDS)
    def test_near_even_split(self, kind):
        p = make_partition(kind, 10_000, 16)
        rep = balance_report(p)
        assert rep["imbalance"] < 1.10

    def test_block_is_contiguous(self):
        p = BlockPartition(100, 3)
        li = p.local_indices(1)
        np.testing.assert_array_equal(li, np.arange(li[0], li[0] + li.shape[0]))

    def test_cyclic_strides(self):
        p = CyclicPartition(20, 4)
        np.testing.assert_array_equal(p.local_indices(1), [1, 5, 9, 13, 17])

    def test_hash_is_deterministic(self):
        a = HashPartition(500, 7)
        b = HashPartition(500, 7)
        np.testing.assert_array_equal(a.owner_of(np.arange(500)), b.owner_of(np.arange(500)))

    def test_hash_scatters_neighbours(self):
        """Adjacent indices should mostly land on different owners — the
        property that balances frontier hot spots."""
        p = HashPartition(10_000, 8)
        owners = p.owner_of(np.arange(10_000))
        same = (owners[1:] == owners[:-1]).mean()
        assert same < 0.25  # random would give 1/8
