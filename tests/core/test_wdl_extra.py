"""Additional WDL solver coverage: chunking, draws, adapters, depths."""

import numpy as np
import pytest

from repro.core.values import LOSS, UNKNOWN, WIN
from repro.core.wdl import build_wdl_graph, solve_wdl
from repro.games.base import WDLScan
from repro.games.loopy import LoopyGraphGame, random_loopy_game
from repro.games.nim import NimGame


class TestChunking:
    @pytest.mark.parametrize("chunk", [1, 7, 64, 1 << 15])
    def test_chunk_size_is_invisible(self, chunk):
        game = random_loopy_game(123, seed=21)
        ref = solve_wdl(game)
        out = solve_wdl(game, chunk=chunk)
        np.testing.assert_array_equal(out.status, ref.status)
        np.testing.assert_array_equal(out.depth, ref.depth)

    def test_graph_counters(self):
        game = NimGame(heaps=2, cap=3)
        graph = build_wdl_graph(game, chunk=5)
        assert graph.work.positions_scanned == game.size
        assert graph.forward.n_edges == graph.reverse.n_edges
        # Terminal = the single all-empty position.
        assert graph.terminal.sum() == 1


class TestTerminalDraws:
    def test_terminal_draw_is_not_a_loss(self):
        """A stalemate-style terminal (no moves, drawn) must stay UNKNOWN
        and must not grant its predecessors a win."""

        class StalemateGame(LoopyGraphGame):
            """1 -> 0 where 0 is a terminal draw."""

            def scan_chunk(self, start, stop):
                scan = super().scan_chunk(start, stop)
                draw = np.zeros(stop - start, dtype=bool)
                for k in range(start, stop):
                    if k == 0:
                        draw[k - start] = True
                return WDLScan(
                    start=scan.start,
                    terminal=scan.terminal,
                    terminal_win=scan.terminal_win,
                    legal=scan.legal,
                    succ_index=scan.succ_index,
                    terminal_draw=draw,
                )

        game = StalemateGame([[], [0]])
        sol = solve_wdl(game)
        assert sol.status[0] == UNKNOWN  # drawn terminal
        assert sol.status[1] == UNKNOWN  # its only move reaches a draw

    def test_mixed_terminals(self):
        class MixedGame(LoopyGraphGame):
            """2 -> {0: lost terminal, 1: drawn terminal}."""

            def scan_chunk(self, start, stop):
                scan = super().scan_chunk(start, stop)
                draw = np.array(
                    [k == 1 for k in range(start, stop)], dtype=bool
                )
                return WDLScan(
                    start=scan.start,
                    terminal=scan.terminal,
                    terminal_win=scan.terminal_win,
                    legal=scan.legal,
                    succ_index=scan.succ_index,
                    terminal_draw=draw,
                )

        game = MixedGame([[], [], [0, 1]])
        sol = solve_wdl(game)
        assert sol.status[0] == LOSS
        assert sol.status[1] == UNKNOWN
        assert sol.status[2] == WIN  # moving to the lost terminal wins


class TestDepthSemantics:
    def test_depths_monotone_along_forced_line(self):
        game = NimGame(heaps=2, cap=5)
        sol = solve_wdl(game)
        scan = game.scan_chunk(0, game.size)
        for p in range(game.size):
            if sol.status[p] != WIN or scan.terminal[p]:
                continue
            succ = scan.succ_index[p][scan.legal[p]]
            lost = succ[sol.status[succ] == LOSS]
            assert lost.size > 0
            assert sol.depth[lost].min() == sol.depth[p] - 1

    def test_draws_have_negative_depth(self):
        game = random_loopy_game(200, seed=3)
        sol = solve_wdl(game)
        draws = sol.status == UNKNOWN
        assert (sol.depth[draws] == -1).all()
        assert (sol.depth[~draws] >= 0).all()
