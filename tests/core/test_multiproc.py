"""Multiprocessing backend tests (correctness only — this repository's CI
environment has a single core, so wall-clock speedups are not asserted)."""

import numpy as np
import pytest

from repro.core.multiproc import MultiprocessSolver
from repro.core.sequential import SequentialSolver
from repro.core.shm import ShmArena, shm_available
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame
from repro.games.synthetic import SyntheticCaptureGame
from repro.obs import MetricsRegistry


class TestMultiprocessSolver:
    def test_awari_matches_sequential(self):
        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(6)
        par = MultiprocessSolver(game, workers=3).solve(6)
        for n in range(7):
            np.testing.assert_array_equal(par[n], seq[n])

    def test_kalah_matches_sequential(self):
        game = KalahCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        par = MultiprocessSolver(game, workers=2).solve(5)
        for n in range(6):
            np.testing.assert_array_equal(par[n], seq[n])

    def test_synthetic_matches_sequential(self):
        game = SyntheticCaptureGame(levels=4, max_size=40, seed=9)
        seq, _ = SequentialSolver(game).solve(3)
        par = MultiprocessSolver(game, workers=2).solve(3)
        for d in range(4):
            np.testing.assert_array_equal(par[d], seq[d])

    def test_single_worker_falls_back_inline(self):
        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(4)
        par = MultiprocessSolver(game, workers=1).solve(4)
        for n in range(5):
            np.testing.assert_array_equal(par[n], seq[n])

    @pytest.mark.parametrize("use_shm", [True, False], ids=["shm", "pickle"])
    def test_parallel_graph_build_equals_sequential_build(self, use_shm):
        from repro.core.graph import build_database_graph

        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        lower = {n: seq[n] for n in range(6)}
        solver = MultiprocessSolver(game, workers=2, use_shm=use_shm)
        mp_graph = solver._build_graph(6, lower, chunk=1 << 12)
        ref = build_database_graph(game, 6, lower)
        np.testing.assert_array_equal(mp_graph.best_exit, ref.best_exit)
        np.testing.assert_array_equal(mp_graph.out_degree, ref.out_degree)
        np.testing.assert_array_equal(
            mp_graph.forward.indptr, ref.forward.indptr
        )
        np.testing.assert_array_equal(
            mp_graph.forward.indices, ref.forward.indices
        )
        np.testing.assert_array_equal(
            mp_graph.reverse.indices, ref.reverse.indices
        )

    def test_build_graph_work_counters_match_sequential(self):
        """Satellite parity fix: the fanned-out build must count
        ``moves_generated`` (all legal moves) and ``exit_lookups`` exactly
        as :func:`build_database_graph` does."""
        from repro.core.graph import build_database_graph

        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        lower = {n: seq[n] for n in range(6)}
        ref = build_database_graph(game, 6, lower)
        for use_shm in (True, False):
            solver = MultiprocessSolver(game, workers=2, use_shm=use_shm)
            work = solver._build_graph(6, lower, chunk=1 << 12).work
            assert work.positions_scanned == ref.work.positions_scanned
            assert work.moves_generated == ref.work.moves_generated
            assert work.edges_internal == ref.work.edges_internal
            assert work.exit_lookups == ref.work.exit_lookups


@pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
class TestShmFanout:
    def test_shm_and_pickle_paths_bit_identical(self):
        game = AwariCaptureGame()
        m_shm, m_pkl = MetricsRegistry(), MetricsRegistry()
        shm = MultiprocessSolver(
            game, workers=2, metrics=m_shm, chunk=1 << 11
        ).solve(5)
        pkl = MultiprocessSolver(
            game, workers=2, metrics=m_pkl, chunk=1 << 11, use_shm=False
        ).solve(5)
        for n in range(6):
            np.testing.assert_array_equal(shm[n], pkl[n])
        c_shm = m_shm.snapshot()["counters"]
        c_pkl = m_pkl.snapshot()["counters"]
        # The arena path ships zero array bytes through the pool; what it
        # saved is exactly what the pickle path paid.
        assert c_shm["multiproc.shm_segments"] > 0
        assert c_shm["multiproc.ipc_bytes_saved"] > 0
        assert "multiproc.ipc_bytes_pickled" not in c_shm
        assert "multiproc.ipc_bytes_saved" not in c_pkl
        assert (
            c_pkl["multiproc.ipc_bytes_pickled"]
            == c_shm["multiproc.ipc_bytes_saved"]
        )

    def test_replayed_kill_stays_bit_identical_with_shm(self, tmp_path):
        """A SIGKILLed worker's partial arena writes are fully overwritten
        by the replayed task: the database cannot tell the difference."""
        from repro.resilience.faults import FaultPlan

        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        for spec in ("kill-worker:chunk=1", "kill-worker:threshold=2"):
            plan = FaultPlan.from_specs(
                [spec], state_dir=str(tmp_path / spec.replace(":", "_"))
            )
            m = MetricsRegistry()
            vals = MultiprocessSolver(
                game, workers=2, metrics=m, chunk=1 << 11, faults=plan
            ).solve(5)
            for n in range(6):
                np.testing.assert_array_equal(vals[n], seq[n])
            counters = m.snapshot()["counters"]
            assert counters.get("resilience.pool_rebuilds", 0) >= 1
            assert counters["multiproc.ipc_bytes_saved"] > 0

    def test_arena_alloc_take_close(self):
        arena = ShmArena()
        a = arena.alloc("a", (8,), np.int16)
        assert (a == 0).all()
        a[:] = np.arange(8)
        with pytest.raises(ValueError):
            arena.alloc("a", (8,), np.int16)
        assert arena.segments == 1 and arena.nbytes == 16
        copied = arena.take("a")
        del a
        arena.close()
        assert copied.tolist() == list(range(8))
        arena.close()  # idempotent
