"""Multiprocessing backend tests (correctness only — this repository's CI
environment has a single core, so wall-clock speedups are not asserted)."""

import numpy as np
import pytest

from repro.core.multiproc import MultiprocessSolver
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame
from repro.games.synthetic import SyntheticCaptureGame


class TestMultiprocessSolver:
    def test_awari_matches_sequential(self):
        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(6)
        par = MultiprocessSolver(game, workers=3).solve(6)
        for n in range(7):
            np.testing.assert_array_equal(par[n], seq[n])

    def test_kalah_matches_sequential(self):
        game = KalahCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        par = MultiprocessSolver(game, workers=2).solve(5)
        for n in range(6):
            np.testing.assert_array_equal(par[n], seq[n])

    def test_synthetic_matches_sequential(self):
        game = SyntheticCaptureGame(levels=4, max_size=40, seed=9)
        seq, _ = SequentialSolver(game).solve(3)
        par = MultiprocessSolver(game, workers=2).solve(3)
        for d in range(4):
            np.testing.assert_array_equal(par[d], seq[d])

    def test_single_worker_falls_back_inline(self):
        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(4)
        par = MultiprocessSolver(game, workers=1).solve(4)
        for n in range(5):
            np.testing.assert_array_equal(par[n], seq[n])

    def test_parallel_graph_build_equals_sequential_build(self):
        from repro.core.graph import build_database_graph

        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        lower = {n: seq[n] for n in range(6)}
        solver = MultiprocessSolver(game, workers=2)
        mp_graph = solver._build_graph(6, lower, chunk=1 << 12)
        ref = build_database_graph(game, 6, lower)
        np.testing.assert_array_equal(mp_graph.best_exit, ref.best_exit)
        np.testing.assert_array_equal(mp_graph.out_degree, ref.out_degree)
        assert mp_graph.forward.n_edges == ref.forward.n_edges
