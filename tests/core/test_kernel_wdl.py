"""Kernel + WDL solver tests against closed-form and dense oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import CSR
from repro.core.oracle import oracle_wdl
from repro.core.values import LOSS, UNKNOWN, WIN
from repro.core.wdl import build_wdl_graph, solve_wdl
from repro.games.loopy import LoopyGraphGame, random_loopy_game
from repro.games.nim import NimGame


class TestCSR:
    def test_from_edges_and_neighbors(self):
        csr = CSR.from_edges(4, np.array([0, 0, 2, 3]), np.array([1, 2, 3, 0]))
        row, nbr = csr.neighbors_of(np.array([0, 2]))
        assert row.tolist() == [0, 0, 1]
        assert sorted(nbr.tolist()[:2]) == [1, 2]
        assert nbr.tolist()[2] == 3

    def test_parallel_edges_kept(self):
        csr = CSR.from_edges(2, np.array([0, 0]), np.array([1, 1]))
        row, nbr = csr.neighbors_of(np.array([0]))
        assert nbr.tolist() == [1, 1]

    def test_transpose_roundtrip(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 50, 200)
        dst = rng.integers(0, 50, 200)
        fwd = CSR.from_edges(50, src, dst)
        rev = fwd.transpose(50)
        back = rev.transpose(50)
        assert (back.indptr == fwd.indptr).all()
        # Edge multiset must match (order within a row may differ).
        for i in range(50):
            a = np.sort(back.indices[back.indptr[i] : back.indptr[i + 1]])
            b = np.sort(fwd.indices[fwd.indptr[i] : fwd.indptr[i + 1]])
            np.testing.assert_array_equal(a, b)

    def test_empty_graph(self):
        csr = CSR.from_edges(3, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        row, nbr = csr.neighbors_of(np.array([0, 1, 2]))
        assert row.size == 0 and nbr.size == 0


class TestNim:
    @pytest.mark.parametrize("heaps,cap", [(1, 5), (2, 4), (3, 3), (2, 7)])
    def test_matches_sprague_grundy(self, heaps, cap):
        game = NimGame(heaps=heaps, cap=cap)
        sol = solve_wdl(game)
        idx = np.arange(game.size)
        oracle = game.oracle_win(idx)
        # Nim has no draws: every position is WIN or LOSS.
        assert sol.draws == 0
        np.testing.assert_array_equal(sol.status == WIN, oracle)

    def test_terminal_is_loss_with_depth_zero(self):
        game = NimGame(heaps=2, cap=3)
        sol = solve_wdl(game)
        zero = int(game.encode(np.array([0, 0])))
        assert sol.status[zero] == LOSS
        assert sol.depth[zero] == 0

    def test_depth_is_optimal_play_length(self):
        # Single heap of k: the mover takes everything, win in 1 ply.
        game = NimGame(heaps=1, cap=6)
        sol = solve_wdl(game)
        for k in range(1, 7):
            assert sol.status[k] == WIN
            assert sol.depth[k] == 1

    def test_encode_decode_roundtrip(self):
        game = NimGame(heaps=3, cap=5)
        idx = np.arange(game.size)
        np.testing.assert_array_equal(game.encode(game.decode(idx)), idx)

    def test_encode_rejects_out_of_range(self):
        game = NimGame(heaps=2, cap=3)
        with pytest.raises(ValueError):
            game.encode(np.array([4, 0]))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            NimGame(heaps=0)


class TestLoopyHandmade:
    def test_two_cycle_is_draw(self):
        # 0 <-> 1, no terminals reachable: both drawn.
        game = LoopyGraphGame([[1], [0], []])
        sol = solve_wdl(game)
        assert sol.status[0] == UNKNOWN
        assert sol.status[1] == UNKNOWN
        assert sol.status[2] == LOSS  # terminal, mover loses

    def test_escape_from_cycle_to_losing_child(self):
        # 0 <-> 1 plus 0 -> 2 (terminal, mover of 2 loses): 0 wins.
        game = LoopyGraphGame([[1, 2], [0], []])
        sol = solve_wdl(game)
        assert sol.status[0] == WIN
        # 1's only move goes to the winning 0: 1 is lost? No - 1 can keep
        # cycling only via 0, and 0 wins ... all of 1's moves reach WIN
        # positions, so 1 is LOSS.
        assert sol.status[1] == LOSS

    def test_cycle_as_refuge(self):
        # 0 <-> 1; 0 -> 2 where 2 is terminal WIN for its mover (bad for 0).
        game = LoopyGraphGame([[1, 2], [0], []], terminal_win=[False, False, True])
        sol = solve_wdl(game)
        # Moving to 2 hands the opponent a win; cycling forever draws.
        assert sol.status[0] == UNKNOWN
        assert sol.status[1] == UNKNOWN
        assert sol.status[2] == WIN

    def test_chain_depths(self):
        # 3 -> 2 -> 1 -> 0 (terminal loss): alternating win/loss up the chain.
        game = LoopyGraphGame([[], [0], [1], [2]])
        sol = solve_wdl(game)
        assert [int(s) for s in sol.status] == [LOSS, WIN, LOSS, WIN]
        assert sol.depth.tolist() == [0, 1, 2, 3]

    def test_self_loop_draw(self):
        game = LoopyGraphGame([[0]])
        sol = solve_wdl(game)
        assert sol.status[0] == UNKNOWN

    def test_bad_successor_rejected(self):
        with pytest.raises(ValueError):
            LoopyGraphGame([[5]])

    def test_terminal_win_shape_checked(self):
        with pytest.raises(ValueError):
            LoopyGraphGame([[], []], terminal_win=[True])


class TestLoopyVsOracle:
    @given(st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_random_graphs_match_dense_oracle(self, seed):
        game = random_loopy_game(n=60, avg_degree=2.5, seed=seed)
        sol = solve_wdl(game)
        oracle = oracle_wdl(game)
        np.testing.assert_array_equal(sol.status, oracle)

    @given(st.integers(0, 500), st.floats(1.0, 4.0))
    @settings(max_examples=20, deadline=None)
    def test_degree_sweep_matches(self, seed, deg):
        game = random_loopy_game(n=40, avg_degree=deg, seed=seed)
        np.testing.assert_array_equal(solve_wdl(game).status, oracle_wdl(game))


class TestKernelInvariants:
    def test_statuses_partition_positions(self):
        game = random_loopy_game(n=200, seed=7)
        sol = solve_wdl(game)
        assert sol.wins + sol.losses + sol.draws == game.size

    def test_win_has_loss_child_certificate(self):
        """Every WIN position must have a move to a LOSS position (or be a
        terminal win); every LOSS non-terminal position must have all moves
        to WIN positions — the local Bellman certificate."""
        game = random_loopy_game(n=300, seed=11)
        sol = solve_wdl(game)
        graph = build_wdl_graph(game)
        scan = game.scan_chunk(0, game.size)
        for p in range(game.size):
            moves = scan.succ_index[p][scan.legal[p]]
            if sol.status[p] == WIN and not graph.terminal[p]:
                assert (sol.status[moves] == LOSS).any()
            if sol.status[p] == LOSS and not graph.terminal[p]:
                assert (sol.status[moves] == WIN).all()
            if sol.status[p] == UNKNOWN:
                assert not graph.terminal[p]
                assert (sol.status[moves] == LOSS).sum() == 0
                assert (sol.status[moves] == UNKNOWN).any()

    def test_depth_certificate(self):
        """A WIN at depth d has a LOSS child at depth < d; a LOSS at depth d
        has all children WIN with max child depth == d - 1."""
        game = random_loopy_game(n=250, seed=13)
        sol = solve_wdl(game)
        scan = game.scan_chunk(0, game.size)
        graph = build_wdl_graph(game)
        for p in range(game.size):
            if graph.terminal[p]:
                assert sol.depth[p] == 0
                continue
            moves = scan.succ_index[p][scan.legal[p]]
            if sol.status[p] == WIN:
                lost = moves[sol.status[moves] == LOSS]
                assert (sol.depth[lost] < sol.depth[p]).any()
            elif sol.status[p] == LOSS:
                assert sol.depth[moves].max() == sol.depth[p] - 1
