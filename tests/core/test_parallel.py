"""End-to-end tests of the simulated distributed solver.

The load-bearing property throughout: the parallel solver's databases are
bit-identical to the sequential solver's, for every processor count,
partition, combining capacity, predecessor mode and cost model — the
simulation may change *when* things happen but never *what* is computed.
"""

import numpy as np
import pytest

from repro.core.parallel.driver import ParallelConfig, ParallelSolver
from repro.core.parallel.worker import KIND_DEC, KIND_WIN, pack_kind, unpack_kind
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.simnet.costs import CostModel
from repro.simnet.ethernet import EthernetConfig

MAX_EVENTS = 5_000_000


@pytest.fixture(scope="module")
def game():
    return AwariCaptureGame()


@pytest.fixture(scope="module")
def sequential(game):
    values, report = SequentialSolver(game).solve(6)
    return values


def assert_matches(par_values, seq_values, upto):
    for n in range(upto + 1):
        np.testing.assert_array_equal(
            par_values[n], seq_values[n], err_msg=f"database {n} differs"
        )


class TestPackedKinds:
    def test_roundtrip(self):
        t = np.array([1, 13, 48], dtype=np.uint8)
        k = np.array([KIND_DEC, KIND_WIN, KIND_DEC], dtype=np.uint8)
        tt, kk = unpack_kind(pack_kind(t, k))
        np.testing.assert_array_equal(tt, t)
        np.testing.assert_array_equal(kk, k)


class TestEquivalence:
    @pytest.mark.parametrize("procs", [1, 2, 3, 8])
    def test_processor_counts(self, game, sequential, procs):
        cfg = ParallelConfig(n_procs=procs, predecessor_mode="unmove-cached")
        values, _ = ParallelSolver(game, cfg).solve(6, max_events=MAX_EVENTS)
        assert_matches(values, sequential, 6)

    @pytest.mark.parametrize("partition", ["block", "cyclic", "hash"])
    def test_partitions(self, game, sequential, partition):
        cfg = ParallelConfig(
            n_procs=5, partition=partition, predecessor_mode="unmove-cached"
        )
        values, _ = ParallelSolver(game, cfg).solve(6, max_events=MAX_EVENTS)
        assert_matches(values, sequential, 6)

    @pytest.mark.parametrize("mode", ["unmove", "unmove-cached", "csr"])
    def test_predecessor_modes(self, game, sequential, mode):
        cfg = ParallelConfig(n_procs=4, predecessor_mode=mode)
        values, _ = ParallelSolver(game, cfg).solve(5, max_events=MAX_EVENTS)
        assert_matches(values, sequential, 5)

    @pytest.mark.parametrize("capacity", [1, 2, 16, 4096])
    def test_combining_capacities(self, game, sequential, capacity):
        cfg = ParallelConfig(
            n_procs=4,
            combining_capacity=capacity,
            predecessor_mode="unmove-cached",
        )
        values, _ = ParallelSolver(game, cfg).solve(5, max_events=MAX_EVENTS)
        assert_matches(values, sequential, 5)

    def test_timing_independence(self, game, sequential):
        """Different hardware (cost model, slow network) must not change
        the computed databases — only the measurements."""
        for cpu, msg in [(0.1, 10.0), (10.0, 0.1)]:
            cfg = ParallelConfig(
                n_procs=4,
                predecessor_mode="unmove-cached",
                costs=CostModel().scaled(cpu_factor=cpu, msg_factor=msg),
                ethernet=EthernetConfig(bandwidth_bps=1e6),
            )
            values, _ = ParallelSolver(game, cfg).solve(5, max_events=MAX_EVENTS)
            assert_matches(values, sequential, 5)

    def test_work_batch_independence(self, game, sequential):
        for batch in (7, 100000):
            cfg = ParallelConfig(
                n_procs=3, work_batch=batch, predecessor_mode="unmove-cached"
            )
            values, _ = ParallelSolver(game, cfg).solve(5, max_events=MAX_EVENTS)
            assert_matches(values, sequential, 5)

    def test_rule_variants_parallel(self, game):
        from repro.games.awari import AwariRules, GrandSlam

        g = AwariCaptureGame(AwariRules(grand_slam=GrandSlam.ALLOWED))
        seq, _ = SequentialSolver(g).solve(5)
        cfg = ParallelConfig(n_procs=4, predecessor_mode="unmove-cached")
        par, _ = ParallelSolver(g, cfg).solve(5, max_events=MAX_EVENTS)
        assert_matches(par, seq, 5)


class TestDeterminism:
    def test_repeat_runs_bit_identical_stats(self, game):
        cfg = ParallelConfig(n_procs=4, predecessor_mode="unmove-cached")
        v1, s1 = ParallelSolver(game, cfg).solve(5, max_events=MAX_EVENTS)
        v2, s2 = ParallelSolver(game, cfg).solve(5, max_events=MAX_EVENTS)
        assert_matches(v1, v2, 5)
        for a, b in zip(s1, s2):
            assert a.makespan_seconds == b.makespan_seconds
            assert a.packets_sent == b.packets_sent
            assert a.events == b.events


class TestRunStats:
    @pytest.fixture(scope="class")
    def run(self, game):
        cfg = ParallelConfig(
            n_procs=4, predecessor_mode="unmove-cached", combining_capacity=32
        )
        seq, _ = SequentialSolver(game).solve(6)
        lower = {n: seq[n] for n in range(6)}
        values, stats = ParallelSolver(game, cfg).solve_database(
            6, lower, max_events=MAX_EVENTS
        )
        return values, stats, seq

    def test_values_match(self, run):
        values, _, seq = run
        np.testing.assert_array_equal(values, seq[6])

    def test_update_conservation(self, game):
        """Every generated update is either applied locally or shipped in
        exactly one packet, and every shipped update is applied remotely
        (buffers fully drain before termination)."""
        from repro.core.graph import build_database_graph
        from repro.core.parallel.worker import RAWorker, WorkerConfig
        from repro.core.partition import make_partition
        from repro.simnet.rts import SPMDRuntime

        seq, _ = SequentialSolver(game).solve(5)
        graph = build_database_graph(game, 5, {n: seq[n] for n in range(5)})
        partition = make_partition("cyclic", graph.size, 4)
        cfg = WorkerConfig(predecessor_mode="unmove-cached", combining_capacity=16)
        workers = [
            RAWorker(r, game, 5, graph, partition, 5, cfg) for r in range(4)
        ]
        runtime = SPMDRuntime(workers, costs=cfg.costs)
        runtime.run(max_events=MAX_EVENTS)
        stats = runtime.node_stats

        def total(name):
            return sum(s.counters.get(name, 0) for s in stats)

        generated = total("updates_generated")
        local = total("updates_local")
        sent = total("updates_sent")
        applied = total("updates_applied")
        assert generated == local + sent
        assert applied == local + sent
        # Nothing left buffered at the end.
        assert all(w.buffers.total_pending == 0 for w in workers)

    def test_makespan_bounds(self, run):
        """Makespan is at least the critical CPU path and at most the sum
        of all CPU work plus wire time (gross sanity bounds)."""
        _, stats, _ = run
        cpu = stats.cpu_seconds_per_node
        assert stats.makespan_seconds >= max(cpu) * 0.999
        assert stats.makespan_seconds <= sum(cpu) + stats.ethernet_busy_seconds + 1.0

    def test_combining_factor_positive(self, run):
        _, stats, _ = run
        assert stats.combining_factor > 1.0

    def test_memory_accounted(self, run):
        _, stats, _ = run
        mem = stats.memory_modeled_bytes_per_node
        assert len(mem) == 4
        # 4 bytes per owned position plus replicated lower databases.
        assert all(m > 0 for m in mem)

    def test_ethernet_utilization_in_unit_range(self, run):
        _, stats, _ = run
        assert 0.0 <= stats.ethernet_utilization <= 1.0


class TestCombiningEffect:
    def test_combining_reduces_packets_and_time(self, game):
        """The paper's core claim at bench scale: combining cuts the
        number of messages by an order of magnitude and the makespan
        substantially, at identical output."""
        seq, _ = SequentialSolver(game).solve(6)
        lower = {n: seq[n] for n in range(6)}
        runs = {}
        for cap in (1, 256):
            cfg = ParallelConfig(
                n_procs=8,
                combining_capacity=cap,
                predecessor_mode="unmove-cached",
            )
            values, stats = ParallelSolver(game, cfg).solve_database(
                6, lower, max_events=MAX_EVENTS
            )
            np.testing.assert_array_equal(values, seq[6])
            runs[cap] = stats
        assert runs[256].packets_sent * 5 < runs[1].packets_sent
        assert runs[256].makespan_seconds < runs[1].makespan_seconds
        assert runs[256].combining_factor > 5.0

    def test_speedup_grows_with_processors(self, game):
        seq, _ = SequentialSolver(game).solve(6)
        lower = {n: seq[n] for n in range(6)}
        times = []
        for procs in (1, 4, 16):
            cfg = ParallelConfig(n_procs=procs, predecessor_mode="unmove-cached")
            _, stats = ParallelSolver(game, cfg).solve_database(
                6, lower, max_events=MAX_EVENTS
            )
            times.append(stats.makespan_seconds)
        assert times[0] > times[1] > times[2]
