"""Unit tests: message-combining buffers and Safra termination state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combining import UPDATE_BYTES, CombiningBuffers
from repro.core.termination import BLACK, WHITE, SafraState, Token


class TestCombiningBuffers:
    def test_buffer_fills_at_capacity(self):
        buf = CombiningBuffers(n_dest=4, capacity=3)
        ready = buf.append(
            np.array([1, 1, 1, 2]), np.arange(4), np.zeros(4, dtype=np.uint8)
        )
        assert len(ready) == 1
        dest, packet = ready[0]
        assert dest == 1
        assert packet.n_updates == 3
        assert buf.pending(2) == 1

    def test_packet_sizes(self):
        buf = CombiningBuffers(n_dest=2, capacity=2)
        ready = buf.append(
            np.array([1, 1]), np.array([10, 20]), np.zeros(2, dtype=np.uint8)
        )
        assert ready[0][1].size_bytes == 2 * UPDATE_BYTES

    def test_order_preserved_per_destination(self):
        buf = CombiningBuffers(n_dest=2, capacity=100)
        buf.append(np.array([1, 1]), np.array([5, 7]), np.array([0, 1], dtype=np.uint8))
        buf.append(np.array([1]), np.array([9]), np.array([0], dtype=np.uint8))
        ready = buf.flush_all()
        (dest, packet), = ready
        assert packet.positions.tolist() == [5, 7, 9]
        assert packet.kinds.tolist() == [0, 1, 0]

    def test_oversize_batch_splits_into_multiple_packets(self):
        buf = CombiningBuffers(n_dest=2, capacity=10)
        ready = buf.append(
            np.full(25, 1), np.arange(25), np.zeros(25, dtype=np.uint8)
        )
        assert [p.n_updates for _, p in ready] == [10, 10]
        assert buf.pending(1) == 5

    def test_flush_all_drains_everything(self):
        buf = CombiningBuffers(n_dest=3, capacity=100)
        buf.append(np.array([0, 1, 2]), np.arange(3), np.zeros(3, dtype=np.uint8))
        ready = buf.flush_all()
        assert len(ready) == 3
        assert buf.total_pending == 0

    def test_flush_fullest_picks_max(self):
        buf = CombiningBuffers(n_dest=3, capacity=100)
        buf.append(
            np.array([0, 1, 1, 1, 2]), np.arange(5), np.zeros(5, dtype=np.uint8)
        )
        ready = buf.flush_fullest()
        assert len(ready) == 1
        assert ready[0][0] == 1
        assert buf.total_pending == 2

    def test_flush_fullest_empty(self):
        buf = CombiningBuffers(n_dest=3, capacity=10)
        assert buf.flush_fullest() == []

    def test_capacity_one_is_naive_mode(self):
        buf = CombiningBuffers(n_dest=2, capacity=1)
        ready = buf.append(
            np.array([1, 1, 1]), np.arange(3), np.zeros(3, dtype=np.uint8)
        )
        assert len(ready) == 3
        assert all(p.n_updates == 1 for _, p in ready)

    def test_stats_combining_factor(self):
        buf = CombiningBuffers(n_dest=2, capacity=4)
        buf.append(np.full(8, 1), np.arange(8), np.zeros(8, dtype=np.uint8))
        assert buf.stats.combining_factor == pytest.approx(4.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CombiningBuffers(n_dest=0, capacity=1)
        with pytest.raises(ValueError):
            CombiningBuffers(n_dest=1, capacity=0)

    def test_rejects_mismatched_arrays(self):
        buf = CombiningBuffers(n_dest=2, capacity=4)
        with pytest.raises(ValueError):
            buf.append(np.array([1]), np.array([1, 2]), np.zeros(2, dtype=np.uint8))

    @given(st.lists(st.integers(0, 7), min_size=0, max_size=200), st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_no_update_lost_or_duplicated(self, dests, capacity):
        """Conservation: every appended update appears in exactly one
        packet, in per-destination FIFO order."""
        buf = CombiningBuffers(n_dest=8, capacity=capacity)
        dests = np.asarray(dests, dtype=np.int64)
        positions = np.arange(dests.shape[0], dtype=np.int64)
        out = buf.append(dests, positions, (positions % 2).astype(np.uint8))
        out += buf.flush_all()
        seen = {}
        for dest, packet in out:
            seen.setdefault(dest, []).extend(packet.positions.tolist())
        for d in range(8):
            expected = positions[dests == d].tolist()
            assert seen.get(d, []) == expected


class TestSafra:
    def test_clean_ring_terminates(self):
        """No traffic at all: one round proves termination."""
        states = [SafraState(r, 4) for r in range(4)]
        token = states[0].start_round()
        for r in range(1, 4):
            token = states[r].forward(token)
        assert states[0].coordinator_check(token)

    def test_in_flight_message_defers_termination(self):
        states = [SafraState(r, 3) for r in range(3)]
        states[1].on_app_send()  # message still in flight
        token = states[0].start_round()
        token = states[1].forward(token)
        token = states[2].forward(token)
        assert not states[0].coordinator_check(token)

    def _round(self, states):
        token = states[0].start_round()
        for r in range(1, len(states)):
            token = states[r].forward(token)
        return states[0].coordinator_check(token)

    def test_traffic_behind_the_token_never_terminates_early(self):
        """The classic race: the token passes worker 1, then a message
        flows 2 -> 1 behind its back.  Safra must refuse to terminate
        until a full clean round has seen the quiet system."""
        states = [SafraState(r, 3) for r in range(3)]
        token = states[0].start_round()
        token = states[1].forward(token)
        states[2].on_app_send()
        states[1].on_app_receive()
        token = states[2].forward(token)
        # Counters are skewed (1's receive happened after it forwarded).
        assert not states[0].coordinator_check(token)
        # Next round: counters now sum to zero, but 1 is black.
        assert not self._round(states)
        # Third round: all white, all quiet — terminate.
        assert self._round(states)

    def test_balanced_quiet_system_terminates(self):
        states = [SafraState(r, 3) for r in range(3)]
        states[0].on_app_send()
        states[1].on_app_receive()
        # At most two rounds are needed once the system is quiet.
        first = self._round(states)
        second = self._round(states)
        assert first or second

    def test_hold_and_release(self):
        s = SafraState(1, 4)
        t = Token()
        s.hold(t)
        with pytest.raises(RuntimeError):
            s.hold(Token())
        assert s.release() is t
        assert s.release() is None

    def test_only_coordinator_starts_and_checks(self):
        s = SafraState(2, 4)
        with pytest.raises(RuntimeError):
            s.start_round()
        with pytest.raises(RuntimeError):
            s.coordinator_check(Token())
        with pytest.raises(RuntimeError):
            SafraState(0, 4).forward(Token())

    def test_reset_clears_state(self):
        s = SafraState(1, 4)
        s.on_app_send()
        s.on_app_receive()
        s.hold(Token())
        s.reset()
        assert s.counter == 0
        assert s.color == WHITE
        assert s.held_token is None

    def test_ring_order(self):
        assert SafraState(3, 4).next_rank() == 0
        assert SafraState(0, 4).next_rank() == 1

    def test_receive_turns_black(self):
        s = SafraState(1, 3)
        assert s.color == WHITE
        s.on_app_receive()
        assert s.color == BLACK
