"""ShmArena claims-ledger (race detector) tests.

A deliberately overlapping claim must raise, a replayed task's
re-claim must not, and debug mode must change nothing observable
about a solve except the one ``multiproc.shm_claims_checked``
counter — including under kill-worker fault injection.
"""

import numpy as np
import pytest

from repro.core.multiproc import MultiprocessSolver
from repro.core.sequential import SequentialSolver
from repro.core.shm import (
    ShmArena,
    ShmRaceError,
    shm_available,
    shm_debug_requested,
)
from repro.games.awari_db import AwariCaptureGame
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no shared memory on this platform"
)


def _arena(slots=4):
    arena = ShmArena(debug=True)
    arena.alloc("values", (100,), np.int16)
    arena.enable_claims(slots)
    return arena


class TestClaimsLedger:
    def test_deliberate_overlap_raises(self):
        with _arena() as arena:
            arena.claim("values", 0, 60, slot=0, owner=1)
            arena.claim("values", 50, 100, slot=1, owner=2)
            with pytest.raises(ShmRaceError, match="overlapping"):
                arena.check_claims()

    def test_disjoint_claims_pass(self):
        with _arena() as arena:
            arena.claim("values", 0, 50, slot=0)
            arena.claim("values", 50, 100, slot=1)
            assert arena.check_claims() == 2

    def test_replayed_task_overwrites_its_own_claim(self):
        # Kill-replay semantics: the replay claims the same region
        # under the same task slot — not an overlap.
        with _arena() as arena:
            arena.claim("values", 0, 60, slot=0)
            arena.claim("values", 0, 60, slot=0)
            arena.claim("values", 60, 100, slot=1)
            assert arena.check_claims() == 2

    def test_out_of_bounds_claim_raises_immediately(self):
        with _arena() as arena:
            with pytest.raises(ShmRaceError, match="outside"):
                arena.claim("values", 90, 101, slot=0)

    def test_unknown_slot_raises(self):
        with _arena(slots=2) as arena:
            with pytest.raises(ShmRaceError, match="slot"):
                arena.claim("values", 0, 10, slot=2)

    def test_empty_claims_cannot_overlap(self):
        with _arena() as arena:
            arena.claim("values", 10, 10, slot=0)
            arena.claim("values", 0, 100, slot=1)
            assert arena.check_claims() == 2

    def test_claims_are_free_when_debug_is_off(self):
        with ShmArena() as arena:
            arena.alloc("values", (10,), np.int16)
            arena.enable_claims(4)  # no-op without debug
            arena.claim("values", 0, 1000, slot=99)  # no ledger, ignored
            assert arena.check_claims() == 0

    def test_enable_claims_twice_raises(self):
        with _arena() as arena:
            with pytest.raises(ValueError, match="already"):
                arena.enable_claims(4)

    def test_ledger_stays_out_of_segment_accounting(self):
        with ShmArena() as plain:
            plain.alloc("values", (100,), np.int16)
            with _arena() as debug:
                assert debug.segments == plain.segments
                assert debug.nbytes == plain.nbytes


def test_shm_debug_requested_reads_the_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SHM_DEBUG", raising=False)
    assert not shm_debug_requested()
    monkeypatch.setenv("REPRO_SHM_DEBUG", "1")
    assert shm_debug_requested()
    monkeypatch.setenv("REPRO_SHM_DEBUG", "off")
    assert not shm_debug_requested()


def test_env_var_drives_the_solver_default(monkeypatch):
    monkeypatch.setenv("REPRO_SHM_DEBUG", "true")
    assert MultiprocessSolver(AwariCaptureGame()).shm_debug
    monkeypatch.delenv("REPRO_SHM_DEBUG")
    assert not MultiprocessSolver(AwariCaptureGame()).shm_debug
    assert MultiprocessSolver(AwariCaptureGame(), shm_debug=True).shm_debug


class TestSolverDebugParity:
    def test_debug_solve_matches_and_counts_claims(self):
        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(4)
        m_dbg, m_plain = MetricsRegistry(), MetricsRegistry()
        dbg = MultiprocessSolver(
            game, workers=2, metrics=m_dbg, chunk=256, shm_debug=True
        ).solve(4)
        plain = MultiprocessSolver(
            game, workers=2, metrics=m_plain, chunk=256, shm_debug=False
        ).solve(4)
        for n in range(5):
            np.testing.assert_array_equal(dbg[n], seq[n])
            np.testing.assert_array_equal(plain[n], seq[n])
        c_dbg = m_dbg.snapshot()["counters"]
        c_plain = m_plain.snapshot()["counters"]
        assert c_dbg["multiproc.shm_claims_checked"] > 0
        assert "multiproc.shm_claims_checked" not in c_plain
        # Apart from that one counter, debug mode is invisible — the
        # ledger never shifts shm_segments or the byte accounting.
        del c_dbg["multiproc.shm_claims_checked"]
        assert c_dbg == c_plain

    def test_debug_stays_silent_under_kill_replay(self, tmp_path):
        from repro.resilience.faults import FaultPlan

        game = AwariCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        plan = FaultPlan.from_specs(
            ["kill-worker:chunk=2"], state_dir=str(tmp_path / "faults")
        )
        m = MetricsRegistry()
        vals = MultiprocessSolver(
            game, workers=2, metrics=m, chunk=1 << 10,
            shm_debug=True, faults=plan,
        ).solve(5)
        for n in range(6):
            np.testing.assert_array_equal(vals[n], seq[n])
        counters = m.snapshot()["counters"]
        assert counters.get("resilience.pool_rebuilds", 0) >= 1
        assert counters["multiproc.shm_claims_checked"] > 0
