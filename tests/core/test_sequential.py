"""Sequential capture-difference solver vs. the dense oracle."""

import numpy as np
import pytest

from repro.core.oracle import oracle_capture_solve
from repro.core.sequential import SequentialSolver
from repro.games.awari import AwariRules, GrandSlam
from repro.games.awari_db import AwariCaptureGame


@pytest.fixture(scope="module")
def game():
    return AwariCaptureGame()


@pytest.fixture(scope="module")
def solved_to_5(game):
    solver = SequentialSolver(game, check_invariants=True)
    return solver.solve(5)


class TestSmallDatabases:
    def test_db0_single_draw(self, solved_to_5):
        values, _ = solved_to_5
        assert values[0].shape == (1,)
        assert values[0][0] == 0

    def test_db1_values(self, game, solved_to_5):
        values, _ = solved_to_5
        idx = game.engine.indexer(1)
        boards = idx.all_boards()
        v = values[1]
        # One stone somewhere: |value| <= 1 and stones are conserved, so
        # value is exactly +1 (mover ends with it), -1 (opponent does) or 0.
        assert set(np.unique(v)).issubset({-1, 0, 1})
        # A stone in an opponent pit with the mover unable to move: -1.
        b = np.zeros(12, dtype=np.int16)
        b[7] = 1
        assert v[int(idx.rank(b))] == -1
        # A stone in mover pit 0 cannot feed: terminal, mover keeps it.
        b = np.zeros(12, dtype=np.int16)
        b[0] = 1
        assert v[int(idx.rank(b))] == 1

    def test_values_within_bound(self, solved_to_5):
        values, _ = solved_to_5
        for n, v in values.items():
            assert np.abs(v).max() <= n

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5])
    def test_matches_dense_oracle(self, game, solved_to_5, n):
        values, _ = solved_to_5
        oracle = oracle_capture_solve(game, 5)
        np.testing.assert_array_equal(values[n], oracle[n])

    def test_report_counts(self, game, solved_to_5):
        _, report = solved_to_5
        assert len(report.databases) == 6
        r5 = report.by_id()[5]
        assert r5.size == game.db_size(5)
        assert r5.thresholds == 5
        assert r5.work.positions_scanned == r5.size
        assert report.total_ops > 0


class TestPredecessorModes:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_unmove_mode_identical(self, game, solved_to_5, n):
        values, _ = solved_to_5
        solver = SequentialSolver(game, predecessor_mode="unmove")
        vals, _ = solver.solve(n)
        np.testing.assert_array_equal(vals[n], values[n])

    def test_unknown_mode_rejected(self, game):
        with pytest.raises(ValueError):
            SequentialSolver(game, predecessor_mode="bogus")


class TestRuleVariants:
    @pytest.mark.parametrize(
        "rules",
        [
            AwariRules(grand_slam=GrandSlam.ALLOWED),
            AwariRules(grand_slam=GrandSlam.FORBIDDEN),
            AwariRules(must_feed=False),
        ],
        ids=["slam-allowed", "slam-forbidden", "no-feeding"],
    )
    def test_variant_matches_oracle(self, rules):
        game = AwariCaptureGame(rules)
        solver = SequentialSolver(game)
        values, _ = solver.solve(4)
        oracle = oracle_capture_solve(game, 4)
        for n in range(5):
            np.testing.assert_array_equal(values[n], oracle[n])

    def test_variants_actually_differ(self):
        """Sanity: the rule switch changes at least some database values."""
        base, _ = SequentialSolver(AwariCaptureGame()).solve(4)
        allowed, _ = SequentialSolver(
            AwariCaptureGame(AwariRules(grand_slam=GrandSlam.ALLOWED))
        ).solve(4)
        assert any(
            (base[n] != allowed[n]).any() for n in range(5)
        ), "grand-slam rule had no effect on any 0..4 stone database"


class TestBellmanConsistency:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_values_satisfy_bellman_equation(self, game, solved_to_5, n):
        """value(p) == max over moves of (capture - value(successor));
        terminal positions carry their terminal value.  The true value
        function of a zero-cycle total-payoff game satisfies this exactly."""
        values, _ = solved_to_5
        scan = game.scan_chunk(n, 0, game.db_size(n))
        v = values[n].astype(np.int64)
        best = np.full(v.shape[0], -10**9, dtype=np.int64)
        for s in range(scan.legal.shape[1]):
            mv = scan.legal[:, s]
            if not mv.any():
                continue
            cap = scan.capture[:, s]
            succ = scan.succ_index[:, s]
            move_val = np.full(v.shape[0], -10**9, dtype=np.int64)
            internal = mv & (cap == 0)
            move_val[internal] = -v[succ[internal]]
            for amount in np.unique(cap[mv & (cap > 0)]):
                sel = mv & (cap == amount)
                move_val[sel] = amount - values[n - int(amount)][succ[sel]]
            best = np.maximum(best, np.where(mv, move_val, -10**9))
        term = scan.terminal
        np.testing.assert_array_equal(v[term], scan.terminal_value[term])
        np.testing.assert_array_equal(v[~term], best[~term])
