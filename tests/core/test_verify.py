"""Verification-module tests (and, through them, more solver validation)."""

import numpy as np
import pytest

from repro.core.sequential import SequentialSolver
from repro.core.verify import check_bellman, replay_certificate
from repro.db.store import DatabaseSet
from repro.games.awari_db import AwariCaptureGame


@pytest.fixture(scope="module")
def game():
    return AwariCaptureGame()


@pytest.fixture(scope="module")
def solved(game):
    values, _ = SequentialSolver(game).solve(7)
    return values


class TestBellman:
    @pytest.mark.parametrize("n", [1, 3, 5, 7])
    def test_solved_databases_pass(self, game, solved, n):
        report = check_bellman(game, n, solved)
        assert report.ok
        assert report.checked == game.db_size(n)

    def test_corrupted_database_detected(self, game, solved):
        corrupt = dict(solved)
        bad = solved[5].copy()
        bad[123] += 1
        corrupt[5] = bad
        report = check_bellman(game, 5, corrupt)
        assert not report.ok
        assert report.violations >= 1
        # Position 123 itself violates (and possibly its parents).
        assert report.first_violation is not None

    def test_systematic_corruption_detected(self, game, solved):
        corrupt = dict(solved)
        corrupt[6] = -solved[6]  # sign flip
        report = check_bellman(game, 6, corrupt)
        assert report.violations > 100

    def test_wrong_shape_rejected(self, game, solved):
        broken = dict(solved)
        broken[4] = solved[4][:-1]
        with pytest.raises(ValueError):
            check_bellman(game, 4, broken)


class TestReplay:
    def test_replay_matches_stored_values(self, game, solved):
        dbs = DatabaseSet(game_name="awari", values=solved)
        n = replay_certificate(game, dbs, n_stones=6, samples=80, seed=3)
        assert n == 80

    def test_replay_catches_corruption(self, game, solved):
        values = dict(solved)
        bad = solved[6].copy()
        # Flip a decisive value: +k -> -k for the first winning position.
        winners = np.flatnonzero(bad > 0)
        bad[winners[0]] = -bad[winners[0]]
        values[6] = bad
        dbs = DatabaseSet(game_name="awari", values=values)
        # Sampling the corrupted position must blow up.
        idx = winners[0]
        board = game.engine.indexer(6).unrank(np.array([idx]))[0]
        from repro.db.query import optimal_line

        realized, _ = optimal_line(game, dbs, board)
        assert realized != int(bad[idx])
