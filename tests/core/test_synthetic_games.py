"""Property tests: all solvers agree on arbitrary random capture games.

The synthetic games have no structure to exploit — random stratified
move graphs with cycles, random terminal labels, random capture fan-out.
If the threshold solver, the bounds solver, the parallel solver and the
dense oracle agree on these, the agreement on awari/kalah is not an
artifact of mancala regularities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import BoundsSolver
from repro.core.oracle import oracle_capture_solve
from repro.core.parallel.driver import ParallelConfig, ParallelSolver
from repro.core.sequential import SequentialSolver
from repro.games.synthetic import SyntheticCaptureGame


def make_game(seed, levels=4, max_size=50):
    return SyntheticCaptureGame(levels=levels, max_size=max_size, seed=seed)


class TestSequentialVsOracle:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_threshold_solver_matches_oracle(self, seed):
        game = make_game(seed)
        top = game.levels - 1
        solver, _ = SequentialSolver(game).solve(top)
        oracle = oracle_capture_solve(game, top)
        for d in range(top + 1):
            np.testing.assert_array_equal(solver[d], oracle[d])

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_bounds_solver_matches_oracle(self, seed):
        game = make_game(seed)
        top = game.levels - 1
        bounds, _ = BoundsSolver(game).solve(top)
        oracle = oracle_capture_solve(game, top)
        for d in range(top + 1):
            np.testing.assert_array_equal(bounds[d], oracle[d])

    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_parallel_matches_sequential(self, seed, procs):
        game = make_game(seed)
        top = game.levels - 1
        seq, _ = SequentialSolver(game).solve(top)
        cfg = ParallelConfig(n_procs=procs, predecessor_mode="unmove")
        par, _ = ParallelSolver(game, cfg).solve(top, max_events=2_000_000)
        for d in range(top + 1):
            np.testing.assert_array_equal(par[d], seq[d])

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_unmove_mode_matches_csr_mode(self, seed):
        game = make_game(seed, levels=3)
        top = game.levels - 1
        seq, _ = SequentialSolver(game).solve(top)
        for mode in ("unmove", "csr"):
            cfg = ParallelConfig(n_procs=3, predecessor_mode=mode)
            par, _ = ParallelSolver(game, cfg).solve(top, max_events=2_000_000)
            np.testing.assert_array_equal(par[top], seq[top])


class TestSyntheticStructure:
    def test_deterministic_generation(self):
        a = make_game(42)
        b = make_game(42)
        for d in range(a.levels):
            sa, sb = a.scan_chunk(d, 0, a.db_size(d)), b.scan_chunk(d, 0, b.db_size(d))
            np.testing.assert_array_equal(sa.legal, sb.legal)
            np.testing.assert_array_equal(sa.succ_index, sb.succ_index)

    def test_predecessors_match_forward(self):
        game = make_game(7)
        for d in range(game.levels):
            size = game.db_size(d)
            scan = game.scan_chunk(d, 0, size)
            internal = scan.legal & (scan.capture == 0)
            fwd = []
            src, slot = np.nonzero(internal)
            for s, c in zip(src, scan.succ_index[internal]):
                fwd.append((int(s), int(c)))
            rows, parents = game.predecessors_internal(d, np.arange(size))
            bwd = [(int(p), int(rows[k])) for k, p in enumerate(parents)]
            assert sorted(fwd) == sorted(bwd)

    def test_values_within_bound(self):
        game = make_game(3)
        top = game.levels - 1
        values, _ = SequentialSolver(game).solve(top)
        for d in range(top + 1):
            assert np.abs(values[d]).max() <= d

    def test_bad_params(self):
        with pytest.raises(ValueError):
            SyntheticCaptureGame(levels=0)
        game = make_game(0)
        with pytest.raises(ValueError):
            game.exit_db(2, 5)
