"""Unit tests for the metrics registry and run manifest."""

import json

import pytest

from repro.obs import (
    NULL_METRICS,
    HistogramSummary,
    MetricsRegistry,
    NullMetrics,
    RunManifest,
)
from repro.obs.manifest import SCHEMA


class TestRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        m.inc("b", 2)
        assert m.counters == {"a": 5, "b": 2}

    def test_gauges_overwrite(self):
        m = MetricsRegistry()
        m.set_gauge("x", 1)
        m.set_gauge("x", 2.5)
        assert m.gauges == {"x": 2.5}

    def test_histograms_summarize(self):
        m = MetricsRegistry()
        for v in (3, 1, 2):
            m.observe("sizes", v)
        h = m.histograms["sizes"]
        assert (h.count, h.total, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == 2.0

    def test_phase_times_into_timers(self):
        ticks = iter([10.0, 10.5])
        m = MetricsRegistry(clock=lambda: next(ticks))
        with m.phase("build"):
            pass
        assert m.timers["build"].total == pytest.approx(0.5)
        # Timers stay out of the deterministic snapshot by default.
        assert "timers" not in m.snapshot()
        assert m.snapshot(timers=True)["timers"]["build"]["count"] == 1

    def test_scoped_prefixes_every_family(self):
        m = MetricsRegistry()
        s = m.scoped("simnet")
        s.inc("frames")
        s.set_gauge("util", 0.5)
        s.observe("busy", 1.0)
        s.scoped("eth").inc("deep")
        assert m.counters == {"simnet.frames": 1, "simnet.eth.deep": 1}
        assert m.gauges == {"simnet.util": 0.5}
        assert "simnet.busy" in m.histograms

    def test_snapshot_sorted_and_plain(self):
        m = MetricsRegistry()
        m.inc("z")
        m.inc("a")
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)  # JSON-serializable

    def test_merge_folds_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        b.set_gauge("g", 7)
        b.observe("h", 4)
        b.observe("h", 6)
        a.merge(b.snapshot())
        assert a.counters["n"] == 3
        assert a.gauges["g"] == 7.0
        assert a.histograms["h"].count == 2
        assert a.histograms["h"].min == 4.0

    def test_empty_histogram_serializes_finite(self):
        h = HistogramSummary()
        d = h.to_dict()
        assert d["min"] == 0.0 and d["max"] == 0.0 and d["mean"] == 0.0


class TestNullMetrics:
    def test_all_instruments_are_noops(self):
        n = NullMetrics()
        n.inc("x")
        n.set_gauge("x", 1)
        n.observe("x", 1)
        n.observe_seconds("x", 1)
        with n.phase("x"):
            pass
        n.merge({"counters": {"x": 1}})
        assert n.scoped("y") is n
        assert not n.enabled
        assert n.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_shared_singleton_disabled(self):
        assert NULL_METRICS.enabled is False


class TestRunManifest:
    def _registry(self):
        m = MetricsRegistry()
        m.inc("parallel.packets_sent", 10)
        m.set_gauge("parallel.combining_factor", 6.5)
        m.observe("parallel.makespan_seconds", 2.0)
        m.observe_seconds("wall", 0.1)
        return m

    def test_roundtrip(self, tmp_path):
        man = RunManifest.from_registry(
            self._registry(),
            game="awari",
            command="solve",
            rules="must_feed=True",
            config={"stones": 4, "procs": 4},
            seed=0,
        )
        path = man.save(tmp_path / "run.json")
        back = RunManifest.load(path)
        assert back.game == "awari"
        assert back.config == {"stones": 4, "procs": 4}
        assert back.metrics == man.metrics
        assert back.timers["wall"]["count"] == 1

    def test_schema_is_stamped(self, tmp_path):
        man = RunManifest.from_registry(self._registry(), game="awari")
        path = man.save(tmp_path / "run.json")
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/v9"}))
        with pytest.raises(ValueError, match="schema"):
            RunManifest.load(path)

    def test_timers_separated_from_metrics(self):
        man = RunManifest.from_registry(self._registry(), game="awari")
        assert "timers" not in man.metrics
        assert "wall" in man.timers
        assert "parallel.packets_sent" in man.metrics["counters"]
