"""The instrumented hot paths report honestly: registry contents must
match the subsystems' own pre-existing measurements exactly, and two
identical runs must produce identical metric values."""

import numpy as np
import pytest

from repro.core.multiproc import MultiprocessSolver
from repro.core.parallel.driver import ParallelConfig, ParallelSolver
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.obs import MetricsRegistry

STONES = 3
PROCS = 4


def _parallel_run(**overrides):
    metrics = MetricsRegistry()
    config = ParallelConfig(
        n_procs=PROCS, predecessor_mode="unmove-cached", **overrides
    )
    solver = ParallelSolver(AwariCaptureGame(), config, metrics=metrics)
    values, stats = solver.solve(STONES)
    return metrics, values, stats


class TestSequentialInstrumentation:
    def test_counters_match_solve_report(self):
        metrics = MetricsRegistry()
        _, report = SequentialSolver(
            AwariCaptureGame(), metrics=metrics
        ).solve(4)
        c = metrics.counters
        assert c["sequential.databases"] == len(report.databases)
        assert c["sequential.positions_scanned"] == sum(
            r.work.positions_scanned for r in report.databases
        )
        assert c["sequential.parent_notifications"] == sum(
            r.parent_notifications for r in report.databases
        )
        assert c["sequential.thresholds"] == sum(
            r.thresholds for r in report.databases
        )
        assert metrics.timers["sequential.solve_database"].count == len(
            report.databases
        )

    def test_null_registry_by_default(self):
        solver = SequentialSolver(AwariCaptureGame())
        assert solver.metrics.enabled is False


class TestParallelInstrumentation:
    def test_combining_counters_match_combining_stats_exactly(self):
        metrics, _, stats = _parallel_run(combining_capacity=256)
        c = metrics.counters
        assert c["parallel.combining.updates"] == sum(
            s.updates_sent for s in stats
        )
        assert c["parallel.combining.packets"] == sum(
            s.packets_sent for s in stats
        )
        assert c["parallel.packets_sent"] == sum(s.packets_sent for s in stats)
        assert c["parallel.updates_sent"] == sum(s.updates_sent for s in stats)
        assert c["parallel.updates_local"] == sum(
            s.updates_local for s in stats
        )
        assert c["parallel.bytes_sent"] == sum(s.bytes_sent for s in stats)
        assert c["parallel.control_messages"] == sum(
            s.control_messages for s in stats
        )
        assert c["parallel.token_rounds"] == sum(s.token_rounds for s in stats)

    def test_no_combining_degenerates_to_one_update_per_packet(self):
        metrics, _, _ = _parallel_run(combining_capacity=1)
        c = metrics.counters
        assert c["parallel.combining.packets"] == c["parallel.combining.updates"]

    def test_simnet_events_feed_the_same_registry(self):
        metrics, _, stats = _parallel_run()
        c = metrics.counters
        # Per-tag traffic from the runtime, on the same surface.
        assert c["simnet.sent.UPDATE"] == sum(s.packets_sent for s in stats)
        assert c["simnet.sent.TOKEN"] > 0
        assert c["simnet.sent.PHASE"] > 0
        assert c["simnet.bytes_sent"] == c["parallel.bytes_sent"]
        assert c["simnet.ethernet.frames"] == sum(s.ethernet_frames for s in stats)
        # Simulated makespans are histogram observations, one per database.
        assert metrics.histograms["parallel.makespan_seconds"].count == len(stats)

    def test_two_runs_are_bit_identical(self):
        a, values_a, _ = _parallel_run()
        b, values_b, _ = _parallel_run()
        assert a.snapshot() == b.snapshot()
        for db_id in values_a:
            np.testing.assert_array_equal(values_a[db_id], values_b[db_id])

    def test_disabled_metrics_change_nothing(self):
        _, values_on, stats_on = _parallel_run()
        config = ParallelConfig(n_procs=PROCS, predecessor_mode="unmove-cached")
        values_off, stats_off = ParallelSolver(
            AwariCaptureGame(), config
        ).solve(STONES)
        for db_id in values_on:
            np.testing.assert_array_equal(values_on[db_id], values_off[db_id])
        assert [s.packets_sent for s in stats_on] == [
            s.packets_sent for s in stats_off
        ]
        assert [s.makespan_seconds for s in stats_on] == [
            s.makespan_seconds for s in stats_off
        ]


class TestMultiprocInstrumentation:
    def test_pool_timings_aggregate(self):
        metrics = MetricsRegistry()
        solver = MultiprocessSolver(AwariCaptureGame(), workers=2, metrics=metrics)
        values = solver.solve(4)
        c = metrics.counters
        assert c["multiproc.databases"] == 5
        assert c["multiproc.thresholds"] == sum(range(1, 5))
        assert c["multiproc.positions_scanned"] == sum(
            v.shape[0] for v in values.values()
        )
        timers = metrics.timers
        assert timers["multiproc.solve_database"].count == 5
        # One per-process timing per threshold run, whichever process ran it.
        assert timers["multiproc.threshold_seconds"].count == sum(range(1, 5))
