"""Differential cluster-identity suite.

The cluster's whole correctness claim is *identity*: a sharded cluster
is indistinguishable from the in-memory ``DatabaseSet`` it was split
from.  For every game (awari, kalah, synthetic) and every topology
(single server, two shards, four shards with a replica each), every
position is probed through the router and must come back bit-identical
to direct array indexing — values, depth contract, and best moves.
"""

import numpy as np
import pytest

from repro.db.query import best_moves
from repro.obs import MetricsRegistry

from .conftest import LocalCluster, cluster_dir, solved_set


class TestBitIdenticalValues:
    def test_every_position_every_topology(self, solved, cluster):
        """Exhaustive: all positions of all databases, request order =
        global index order."""
        name, game, dbs = solved
        topo, local = cluster
        with local.router() as router:
            for db_id in dbs.ids():
                n = dbs[db_id].shape[0]
                got = router.probe_many([(db_id, i) for i in range(n)])
                np.testing.assert_array_equal(
                    got, dbs[db_id],
                    err_msg=f"{topo} diverges on {name} db {db_id}",
                )

    def test_shuffled_cross_database_batch(self, solved, cluster):
        """One batch mixing every database in scrambled order: locality
        sorting and scatter-gather must not leak into result order."""
        name, game, dbs = solved
        topo, local = cluster
        rng = np.random.default_rng(17)
        pairs = [
            (db_id, int(i))
            for db_id in dbs.ids()
            for i in rng.integers(0, dbs[db_id].shape[0], size=50)
        ]
        rng.shuffle(pairs)
        expected = np.array([int(dbs[d][i]) for d, i in pairs], dtype=np.int16)
        with local.router() as router:
            np.testing.assert_array_equal(
                router.probe_many(pairs), expected, err_msg=f"{name}/{topo}"
            )

    def test_single_probe_matches(self, solved, cluster):
        name, game, dbs = solved
        topo, local = cluster
        with local.router() as router:
            for db_id in dbs.ids():
                n = dbs[db_id].shape[0]
                for index in (0, n // 2, n - 1):
                    assert router.probe(db_id, index) == int(
                        dbs[db_id][index]
                    ), f"{name}/{topo} db {db_id} index {index}"

    def test_depth_contract(self, solved, cluster):
        """Depths are not served over the wire: the router answers
        ``None`` exactly like a single ProbeClient would."""
        name, game, dbs = solved
        topo, local = cluster
        with local.router() as router:
            assert router.depth_of(dbs.ids()[0], 0) is None


class TestMetadataParity:
    def test_catalog_matches_oracle(self, solved, cluster):
        name, game, dbs = solved
        topo, local = cluster
        with local.router() as router:
            assert router.game_name == dbs.game_name
            assert router.rules == dbs.rules
            assert router.ids() == dbs.ids()
            for db_id in dbs.ids():
                assert router.positions(db_id) == dbs[db_id].shape[0]
                assert db_id in router
            assert max(dbs.ids()) + 40 not in router

    def test_out_of_range_and_missing_db(self, solved, cluster):
        """Bad addresses fail at the router, before any socket traffic,
        with the same exception types as ProbeService."""
        name, game, dbs = solved
        topo, local = cluster
        top = dbs.ids()[-1]
        with local.router() as router:
            with pytest.raises(IndexError, match="out of range"):
                router.probe(top, dbs[top].shape[0])
            with pytest.raises(IndexError):
                router.probe_many([(top, 0), (top, -1)])
            with pytest.raises(KeyError):
                router.probe(max(dbs.ids()) + 40, 0)

    def test_empty_batch(self, solved, cluster):
        name, game, dbs = solved
        topo, local = cluster
        with local.router() as router:
            assert router.probe_many([]).shape == (0,)


class TestBestMoves:
    def test_best_moves_match_oracle(self, solved, cluster):
        """Best-move answers over the cluster equal the in-memory query
        path on a sample of boards (synthetic has no reconstructable
        game, so no best-move surface to compare)."""
        name, game, dbs = solved
        if name == "synthetic":
            pytest.skip("synthetic game is not board-based")
        topo, local = cluster
        target = max(dbs.ids())
        indexer = game.engine.indexer(target)
        rng = np.random.default_rng(23)
        with local.router() as router:
            if hasattr(game, "rules"):
                assert router.game.rules.describe() == game.rules.describe()
            for idx in rng.integers(0, indexer.count, size=8):
                board = indexer.unrank(np.array([int(idx)]))[0]
                want_value, want_moves = best_moves(game, dbs, board)
                got_value, got_moves = router.best_moves(board)
                assert got_value == want_value, f"{name}/{topo} idx {idx}"
                assert [m.pit for m in got_moves] == [
                    m.pit for m in want_moves
                ], f"{name}/{topo} idx {idx}"


class TestLiveFailover:
    def test_dead_primary_changes_no_answer(self, tmp_path_factory):
        """Kill a shard's primary under a live router: every later probe
        still comes back bit-identical (via the replica) and the event
        is visible on ``cluster.failovers``.  Uses its own cluster — the
        kill must not leak into the shared topology fixtures."""
        game, dbs = solved_set("awari")
        directory = cluster_dir("awari", 2, tmp_path_factory)
        local = LocalCluster(directory, replicas=1)
        registry = MetricsRegistry()
        top = dbs.ids()[-1]
        n = dbs[top].shape[0]
        pairs = [(db_id, i) for db_id in dbs.ids()
                 for i in range(dbs[db_id].shape[0])]
        expected = np.array(
            [int(dbs[d][i]) for d, i in pairs], dtype=np.int16
        )
        try:
            with local.router(metrics=registry) as router:
                # Warm both shards' primaries, then kill one.
                np.testing.assert_array_equal(
                    router.probe_many([(top, i) for i in range(n)]),
                    dbs[top],
                )
                local.kill(shard=0, endpoint=0)
                np.testing.assert_array_equal(
                    router.probe_many(pairs), expected,
                    err_msg="answers changed after primary death",
                )
                assert router.probe(top, 0) == int(dbs[top][0])
        finally:
            local.close()
        assert registry.counters["cluster.failovers"] >= 1
        assert registry.counters["cluster.shard_errors"] >= 1

    def test_shard_with_no_replica_fails_loudly(self, tmp_path_factory):
        """With nothing to fail over to, the router reports exhaustion
        as a ProbeError naming the shard — never a wrong answer."""
        from repro.serve.client import ProbeError

        solved_set("awari")
        directory = cluster_dir("awari", 2, tmp_path_factory)
        local = LocalCluster(directory, replicas=0)
        try:
            with local.router() as router:
                local.kill(shard=1, endpoint=0)
                with pytest.raises(ProbeError, match="shard 1"):
                    router.probe_many(
                        [(5, i) for i in range(20)]
                    )
        finally:
            local.close()


class TestRouterMetrics:
    def test_counters_account_for_the_workload(self, solved, cluster):
        name, game, dbs = solved
        topo, local = cluster
        registry = MetricsRegistry()
        top = dbs.ids()[-1]
        n = dbs[top].shape[0]
        with local.router(metrics=registry) as router:
            router.probe(top, 0)
            router.probe_many([(top, i) for i in range(n)])
        counters = registry.counters
        assert counters["cluster.probes"] == 1 + n
        assert counters["cluster.batches"] == 1
        # One fan-out per shard that owns at least one probed position.
        assert counters["cluster.fanouts"] == local.manifest.n_shards
        assert registry.gauges["cluster.shards"] == local.manifest.n_shards
        assert registry.gauges["cluster.endpoints"] == sum(
            len(group) for group in local.endpoints
        )
