"""Codec axis of the cluster differential suite.

``cluster split --codec`` must be invisible end-to-end: for every
paged-store codec, a 2-shard+replica awari cluster answers bit-identical
to the oracle through both router transports, keeps answering through a
primary kill (failover), and records the codec in the manifest it was
split with.
"""

import numpy as np
import pytest

from repro.cluster.manifest import ShardManifest
from repro.obs import MetricsRegistry
from repro.serve.pagedstore import CODECS

from .conftest import LocalCluster, cluster_dir, solved_set

CODEC_IDS = [c.replace("+", "-") for c in CODECS]


@pytest.fixture(scope="module", params=CODECS, ids=CODEC_IDS)
def codec_cluster(request, tmp_path_factory):
    """(codec, game, dbs, LocalCluster) — a 2-shard awari cluster with
    one replica per shard, split with the parametrized codec.  The
    endpoints are async servers, whose JSON version-byte fallback lets
    one cluster exercise both router transports."""
    codec = request.param
    game, dbs = solved_set("awari")
    directory = cluster_dir(
        "awari", 2, tmp_path_factory, codec=codec
    )
    local = LocalCluster(directory, replicas=1, protocol="binary")
    yield codec, game, dbs, local
    local.close()


def all_pairs(dbs, seed=17):
    rng = np.random.default_rng(seed)
    pairs = [
        (db_id, i)
        for db_id in dbs.ids()
        for i in range(dbs[db_id].shape[0])
    ]
    rng.shuffle(pairs)
    return pairs


class TestCodecClusterIdentity:
    def test_manifest_records_codec(self, codec_cluster):
        codec, _, _, local = codec_cluster
        assert local.manifest.codec == codec
        reloaded = ShardManifest.load(local.directory)
        assert reloaded.codec == codec

    @pytest.mark.parametrize("transport", ["json", "binary"])
    def test_scatter_gather_bit_identical(self, codec_cluster, transport):
        codec, _, dbs, local = codec_cluster
        pairs = all_pairs(dbs)
        expected = np.array(
            [int(dbs[d][i]) for d, i in pairs], dtype=np.int16
        )
        with local.router(transport=transport) as router:
            np.testing.assert_array_equal(
                router.probe_many(pairs), expected, err_msg=codec
            )

    def test_best_moves_match_oracle(self, codec_cluster):
        from repro.db.query import best_moves

        codec, game, dbs, local = codec_cluster
        indexer = game.engine.indexer(max(dbs.ids()))
        rng = np.random.default_rng(37)
        with local.router() as router:
            for idx in rng.integers(0, indexer.count, size=5):
                board = indexer.unrank(np.array([int(idx)]))[0]
                want_value, want_moves = best_moves(game, dbs, board)
                got_value, got_moves = router.best_moves(board)
                assert got_value == want_value, f"{codec} idx {idx}"
                assert [m.pit for m in got_moves] == [
                    m.pit for m in want_moves
                ], f"{codec} idx {idx}"

    def test_failover_stays_bit_identical(self, codec_cluster):
        """Kill shard 0's primary mid-session: the replica answers the
        rest of the sweep identically and the failover is counted."""
        codec, _, dbs, local = codec_cluster
        pairs = all_pairs(dbs, seed=53)
        expected = np.array(
            [int(dbs[d][i]) for d, i in pairs], dtype=np.int16
        )
        half = len(pairs) // 2
        registry = MetricsRegistry()
        with local.router(metrics=registry) as router:
            np.testing.assert_array_equal(
                router.probe_many(pairs[:half]), expected[:half],
                err_msg=codec,
            )
            local.kill(0, 0)
            np.testing.assert_array_equal(
                router.probe_many(pairs[half:]), expected[half:],
                err_msg=f"{codec} post-failover",
            )
        assert registry.counters.get("cluster.failovers", 0) >= 1
        local.restart(0, 0)
