"""Fixtures for the cluster suite.

``LocalCluster`` runs a real sharded serving cluster *in-process*: one
:class:`~repro.serve.service.ProbeService` over each shard's paged file
plus one :class:`~repro.serve.server.ProbeServer` per endpoint (primary
and replicas), all on loopback ephemeral ports.  Tests get genuine
sockets, genuine scatter-gather, and a ``kill`` switch that takes an
endpoint down hard — without subprocess management (the subprocess path
is covered by ``scripts/cluster_smoke.py``).

Splits are memoized per (game, shards, partition) through
:mod:`tests.workloads`, so each topology is solved and split once per
session no matter how many tests consume it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.aserve.server import AsyncProbeServer
from repro.cluster.manifest import ShardManifest
from repro.cluster.router import ShardRouter
from repro.resilience import ReconnectPolicy
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService

from tests.workloads import (  # noqa: F401 — shared across the suite
    BLOCK_POSITIONS,
    GAMES,
    cluster_dir,
    solved_set,
)

#: Reconnect policy for tests: bounded like production, fast like tests.
#: One reconnect attempt and ~10ms backoff means a dead endpoint is
#: detected in milliseconds instead of the default multi-second budget.
FAST_POLICY = ReconnectPolicy(
    connect_attempts=2,
    request_replays=1,
    backoff_seconds=0.01,
    backoff_max_seconds=0.02,
)

#: Paged cache budget per shard service — small enough that even the
#: shard-local databases span many cache misses.
SHARD_CACHE_BYTES = 4 * BLOCK_POSITIONS * 2


class LocalCluster:
    """A live sharded cluster on loopback, one server per endpoint.

    ``endpoints`` has the router's shape: one list per shard, primary
    first, replicas after.  ``kill(shard, endpoint)`` stops a server and
    closes its service so later connections are refused — the sharpest
    failure a router can meet short of a SIGKILLed subprocess.
    """

    def __init__(self, directory, replicas: int = 0,
                 protocol: str = "json"):
        self.directory = Path(directory)
        self.manifest = ShardManifest.load(self.directory)
        self.servers: list = []
        self.services: list[list[ProbeService]] = []
        server_cls = AsyncProbeServer if protocol == "binary" else ProbeServer
        for shard_file in self.manifest.shard_files:
            shard_servers, shard_services = [], []
            for _ in range(1 + replicas):
                service = ProbeService.from_paged(
                    self.directory / shard_file,
                    cache_bytes=SHARD_CACHE_BYTES,
                )
                shard_services.append(service)
                shard_servers.append(server_cls(service).start())
            self.servers.append(shard_servers)
            self.services.append(shard_services)
        self._dead: set = set()

    @property
    def endpoints(self) -> list:
        """Per-shard (host, port) lists in router order."""
        return [
            [(s.host, s.port) for s in shard] for shard in self.servers
        ]

    def kill(self, shard: int, endpoint: int = 0) -> None:
        """Take one endpoint down: refuse all future connections."""
        key = (shard, endpoint)
        if key in self._dead:
            return
        self._dead.add(key)
        self.servers[shard][endpoint].shutdown()
        self.services[shard][endpoint].close()

    def restart(self, shard: int, endpoint: int = 0) -> None:
        """Bring a killed endpoint back **on its original port** — the
        in-process equivalent of the supervisor's respawn, so breaker
        reinstatement is testable without subprocesses."""
        key = (shard, endpoint)
        if key not in self._dead:
            return
        old = self.servers[shard][endpoint]
        shard_file = self.manifest.shard_files[shard]
        service = ProbeService.from_paged(
            self.directory / shard_file, cache_bytes=SHARD_CACHE_BYTES,
        )
        server = type(old)(service, host=old.host, port=old.port).start()
        self.servers[shard][endpoint] = server
        self.services[shard][endpoint] = service
        self._dead.discard(key)

    def router(self, metrics=None, policy=FAST_POLICY,
               transport: str = "json") -> ShardRouter:
        """A fresh router over this cluster's current endpoints."""
        return ShardRouter(
            self.manifest, self.endpoints, metrics=metrics, policy=policy,
            transport=transport,
        )

    def close(self) -> None:
        for shard in range(len(self.servers)):
            for endpoint in range(len(self.servers[shard])):
                self.kill(shard, endpoint)


#: The topology grid of the differential suite: name, shard count,
#: replicas per shard.  ``single`` pins the degenerate one-shard cluster
#: against the plain single-server path.
TOPOLOGIES = {
    "single": (1, 0),
    "two-shard": (2, 0),
    "four-shard-replica": (4, 1),
}


@pytest.fixture(scope="module", params=sorted(GAMES), ids=sorted(GAMES))
def solved(request):
    """(name, game, DatabaseSet oracle) per game — memoized solve."""
    name = request.param
    game, dbs = solved_set(name)
    return name, game, dbs


@pytest.fixture(
    scope="module", params=sorted(TOPOLOGIES), ids=sorted(TOPOLOGIES)
)
def cluster(request, solved, tmp_path_factory):
    """A live LocalCluster of the parametrized game and topology."""
    name, game, dbs = solved
    n_shards, replicas = TOPOLOGIES[request.param]
    directory = cluster_dir(name, n_shards, tmp_path_factory)
    local = LocalCluster(directory, replicas=replicas)
    yield request.param, local
    local.close()
