"""Property tests for partition and routing invariants.

Two layers.  The partition layer is checked directly: for every
``make_partition`` kind on a randomized (size, n_parts) grid, the
bijection invariants must hold — each position owned by exactly one
shard, local counts summing to the global size, ``spec()`` round-trips.
The routing layer is checked with injected fake clients (no sockets):
the router must send each probe *only* to its owner's endpoint at the
owner-local slot, and fail over to the replica endpoint exactly when a
primary raises a transport error.
"""

import numpy as np
import pytest

from repro.cluster.manifest import ShardManifest
from repro.cluster.router import ShardRouter
from repro.core.partition import make_partition, partition_from_spec
from repro.obs import MetricsRegistry
from repro.serve.client import ProbeError, ProbeTransportError

KINDS = ("block", "cyclic", "hash")


def grid():
    """Deterministic edge cases plus a seeded random (size, n_parts)
    sample — the same grid on every run."""
    cases = [(0, 1), (0, 3), (1, 1), (1, 4), (7, 7), (7, 16), (64, 2)]
    rng = np.random.default_rng(42)
    for _ in range(10):
        cases.append(
            (int(rng.integers(2, 3000)), int(rng.integers(1, 17)))
        )
    return cases


GRID = grid()


@pytest.mark.parametrize("kind", KINDS)
class TestPartitionInvariants:
    @pytest.mark.parametrize("size,n_parts", GRID)
    def test_exactly_one_owner(self, kind, size, n_parts):
        """The union of all ranks' local index sets is exactly the
        global index range — every position owned once, none twice,
        none dropped."""
        part = make_partition(kind, size, n_parts)
        owned = [part.local_indices(r) for r in range(n_parts)]
        merged = np.sort(np.concatenate(owned)) if owned else np.array([])
        np.testing.assert_array_equal(merged, np.arange(size))
        assert sum(part.local_count(r) for r in range(n_parts)) == size

    @pytest.mark.parametrize("size,n_parts", GRID)
    def test_owner_and_local_are_consistent(self, kind, size, n_parts):
        """owner_of/to_local agree with local_indices: the position at
        rank r's local slot s is the s-th entry of local_indices(r)."""
        part = make_partition(kind, size, n_parts)
        if size:
            everyone = np.arange(size)
            owners = part.owner_of(everyone)
            assert owners.min() >= 0 and owners.max() < n_parts
        for rank in range(n_parts):
            mine = part.local_indices(rank)
            np.testing.assert_array_equal(
                part.owner_of(mine), np.full(mine.shape[0], rank)
            )
            np.testing.assert_array_equal(
                part.to_local(mine), np.arange(mine.shape[0])
            )

    @pytest.mark.parametrize("size,n_parts", GRID)
    def test_spec_roundtrip_rebuilds_the_same_bijection(
        self, kind, size, n_parts
    ):
        """partition_from_spec(spec()) is the manifest's correctness
        contract: the rebuilt partition must map every index to the
        same (owner, local) pair."""
        part = make_partition(kind, size, n_parts)
        spec = part.spec()
        assert spec == {"kind": kind, "size": size, "n_parts": n_parts}
        rebuilt = partition_from_spec(spec)
        idx = np.arange(size)
        np.testing.assert_array_equal(rebuilt.owner_of(idx), part.owner_of(idx))
        np.testing.assert_array_equal(rebuilt.to_local(idx), part.to_local(idx))


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown partition"):
            partition_from_spec({"kind": "striped", "size": 10, "n_parts": 2})

    @pytest.mark.parametrize("missing", ["kind", "size", "n_parts"])
    def test_missing_field_rejected(self, missing):
        spec = {"kind": "cyclic", "size": 10, "n_parts": 2}
        del spec[missing]
        with pytest.raises(ValueError, match="bad partition spec"):
            partition_from_spec(spec)

    def test_non_numeric_size_rejected(self):
        with pytest.raises(ValueError, match="bad partition spec"):
            partition_from_spec(
                {"kind": "cyclic", "size": "many", "n_parts": 2}
            )


# --------------------------------------------------------------- routing

#: Fake endpoint ports: shard r's primary is PRIMARY_BASE + r, its
#: replica REPLICA_BASE + r — the port alone identifies the endpoint.
PRIMARY_BASE = 1000
REPLICA_BASE = 2000


def encode(port: int, local: int) -> int:
    """The value a fake endpoint serves for one local slot: identifies
    (endpoint, slot) so misrouted or misgathered probes are visible in
    the output, not just in the request log."""
    return (port // 1000) * 8000 + (port % 1000) * 500 + (local % 500)


class FakeClient:
    """Records every request; answers with endpoint-identifying values."""

    def __init__(self, host, port, log):
        self.host, self.port, self.log = host, port, log

    def probe(self, db_id, local):
        self.log.append((self.port, db_id, int(local)))
        return encode(self.port, int(local))

    def probe_many(self, pairs):
        pairs = list(pairs)
        for db_id, local in pairs:
            self.log.append((self.port, db_id, int(local)))
        return np.array(
            [encode(self.port, int(local)) for _, local in pairs],
            dtype=np.int16,
        )

    def close(self):
        pass


class FailingClient(FakeClient):
    """A primary that records the attempt, then dies on the wire."""

    def probe(self, db_id, local):
        super().probe(db_id, local)
        raise ProbeTransportError(f"injected failure on port {self.port}")

    def probe_many(self, pairs):
        super().probe_many(list(pairs))
        raise ProbeTransportError(f"injected failure on port {self.port}")


def make_manifest(kind: str, sizes: dict, n_shards: int) -> ShardManifest:
    """An in-memory manifest over fake databases — no files involved."""
    return ShardManifest(
        game="awari",
        rules="",
        partition=kind,
        n_shards=n_shards,
        block_positions=64,
        databases={
            db_id: make_partition(kind, size, n_shards).spec()
            for db_id, size in sizes.items()
        },
        shard_files=[f"shard_{r:02d}.pgdb" for r in range(n_shards)],
    )


def make_router(kind, sizes, n_shards, log, replicas=False, fail_primary=False,
                metrics=None):
    """A router over fake endpoints; requests land in ``log``."""
    endpoints = [
        [("fake", PRIMARY_BASE + r)]
        + ([("fake", REPLICA_BASE + r)] if replicas else [])
        for r in range(n_shards)
    ]

    def factory(host, port):
        if fail_primary and port < REPLICA_BASE:
            return FailingClient(host, port, log)
        return FakeClient(host, port, log)

    return ShardRouter(
        make_manifest(kind, sizes, n_shards), endpoints,
        metrics=metrics, client_factory=factory,
    )


SIZES = {0: 1, 3: 64, 5: 119}


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
class TestRouterSendsOnlyToOwner:
    def test_single_probes_hit_the_owner_slot(self, kind, n_shards):
        log = []
        with make_router(kind, SIZES, n_shards, log) as router:
            for db_id, size in SIZES.items():
                part = router.manifest.partition_for(db_id)
                for index in range(size):
                    got = router.probe(db_id, index)
                    owner = int(part.owner_of(index))
                    local = int(part.to_local(index))
                    assert log[-1] == (PRIMARY_BASE + owner, db_id, local)
                    assert got == encode(PRIMARY_BASE + owner, local)
        # Exactly one request per probe: no shard ever saw a position
        # it does not own.
        assert len(log) == sum(SIZES.values())

    def test_batch_scatter_respects_ownership(self, kind, n_shards):
        """A scrambled cross-database batch: every logged request goes
        to the owner's endpoint, and the gathered values decode to the
        exact (owner, local) pair of each requested position."""
        log = []
        rng = np.random.default_rng(7)
        pairs = [
            (db_id, int(i))
            for db_id, size in SIZES.items()
            for i in rng.permutation(size)
        ]
        with make_router(kind, SIZES, n_shards, log) as router:
            values = router.probe_many(pairs)
            parts = {
                db_id: router.manifest.partition_for(db_id)
                for db_id in SIZES
            }
        for (db_id, index), value in zip(pairs, values):
            owner = int(parts[db_id].owner_of(index))
            local = int(parts[db_id].to_local(index))
            assert value == encode(PRIMARY_BASE + owner, local), (
                f"{kind}/{n_shards}: position ({db_id}, {index}) answered "
                f"by the wrong endpoint or slot"
            )
        for port, db_id, local in log:
            shard = port - PRIMARY_BASE
            owned = parts[db_id].local_indices(shard)
            assert local < owned.shape[0], (
                f"shard {shard} asked for slot {local} beyond its "
                f"{owned.shape[0]} owned positions of db {db_id}"
            )
        assert len(log) == len(pairs)


@pytest.mark.parametrize("kind", KINDS)
class TestFailoverRouting:
    def test_failover_lands_on_the_replica_owner(self, kind):
        """Dead primaries: the replay goes to the *same shard's* replica
        with the identical sub-batch, and ``cluster.failovers`` counts
        one rotation per shard."""
        n_shards = 3
        log = []
        registry = MetricsRegistry()
        pairs = [(5, i) for i in range(SIZES[5])]
        with make_router(
            kind, SIZES, n_shards, log,
            replicas=True, fail_primary=True, metrics=registry,
        ) as router:
            values = router.probe_many(pairs)
            part = router.manifest.partition_for(5)
            for (db_id, index), value in zip(pairs, values):
                owner = int(part.owner_of(index))
                local = int(part.to_local(index))
                assert value == encode(REPLICA_BASE + owner, local)
            # The replica received exactly what its primary was asked.
            by_port: dict = {}
            for port, db_id, local in log:
                by_port.setdefault(port, []).append((db_id, local))
            for shard in range(n_shards):
                assert (
                    by_port[PRIMARY_BASE + shard]
                    == by_port[REPLICA_BASE + shard]
                ), f"shard {shard} replay diverged from the original"
            assert registry.counters["cluster.failovers"] == n_shards
            assert registry.counters["cluster.shard_errors"] == n_shards
            # The rotation sticks: the next batch goes straight to the
            # replicas, no further failovers.
            router.probe_many(pairs)
            assert registry.counters["cluster.failovers"] == n_shards

    def test_exhausted_shard_raises_not_misroutes(self, kind):
        """No replicas and a dead primary: a loud ProbeError naming the
        shard, never a value from a non-owner."""
        log = []
        with make_router(
            kind, SIZES, 2, log, replicas=False, fail_primary=True
        ) as router:
            with pytest.raises(ProbeError, match="endpoints failed"):
                router.probe(5, 0)

    def test_application_rejection_does_not_fail_over(self, kind):
        """ok:false (plain ProbeError) must re-raise unrotated — a
        replica would reject identically, so rotating only hides the
        real error and doubles the load."""

        class RejectingClient(FakeClient):
            def probe(self, db_id, local):
                super().probe(db_id, local)
                raise ProbeError("db 5 not present")

        log = []
        registry = MetricsRegistry()
        endpoints = [
            [("fake", PRIMARY_BASE + r), ("fake", REPLICA_BASE + r)]
            for r in range(2)
        ]
        router = ShardRouter(
            make_manifest(kind, SIZES, 2), endpoints, metrics=registry,
            client_factory=lambda host, port: RejectingClient(
                host, port, log
            ),
        )
        with router:
            with pytest.raises(ProbeError, match="not present"):
                router.probe(5, 0)
        assert registry.counters.get("cluster.failovers", 0) == 0
        assert len(log) == 1  # one attempt, no replay anywhere
