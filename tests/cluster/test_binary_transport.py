"""Router identity and failover over the binary transport.

The exhaustive per-game binary differential lives in
``tests/serve/test_aserve.py``; this module pins the *cluster* claims:
a ``transport="binary"`` ShardRouter — pipelined clients sharing one
event-loop thread, future-based scatter instead of a thread per shard —
answers bit-identically to the oracle and to the JSON-transport router,
and fails over to replicas when a shard's primary dies mid-session.
"""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.serve.client import ProbeError

from .conftest import FAST_POLICY, LocalCluster, cluster_dir, solved_set


@pytest.fixture(scope="module")
def binary_cluster(tmp_path_factory):
    """A three-shard awari cluster whose endpoints speak binary."""
    game, dbs = solved_set("awari")
    directory = cluster_dir("awari", 3, tmp_path_factory)
    local = LocalCluster(directory, protocol="binary")
    yield game, dbs, local
    local.close()


def all_pairs(dbs):
    return [
        (db_id, i)
        for db_id in dbs.ids()
        for i in range(dbs[db_id].shape[0])
    ]


class TestBinaryRouterIdentity:
    def test_exhaustive_scatter_gather(self, binary_cluster):
        """Every position through the async fan-out, shuffled across
        databases so every batch crosses shards."""
        game, dbs, local = binary_cluster
        rng = np.random.default_rng(11)
        pairs = all_pairs(dbs)
        rng.shuffle(pairs)
        expected = np.array(
            [int(dbs[d][i]) for d, i in pairs], dtype=np.int16
        )
        with local.router(transport="binary") as router:
            np.testing.assert_array_equal(
                router.probe_many(pairs), expected
            )

    def test_matches_json_transport(self, binary_cluster):
        """Both transports over the same live shards answer the same
        bytes (binary shard servers accept JSON clients, so the JSON
        router runs against the identical cluster)."""
        game, dbs, local = binary_cluster
        rng = np.random.default_rng(13)
        pairs = all_pairs(dbs)
        rng.shuffle(pairs)
        pairs = pairs[:500]
        with local.router(transport="binary") as binary_router, \
                local.router(transport="json") as json_router:
            np.testing.assert_array_equal(
                binary_router.probe_many(pairs),
                json_router.probe_many(pairs),
            )

    def test_single_probe_and_metadata(self, binary_cluster):
        game, dbs, local = binary_cluster
        with local.router(transport="binary") as router:
            assert router.game_name == dbs.game_name
            top = dbs.ids()[-1]
            assert router.probe(top, 0) == int(dbs[top][0])
            assert router.depth_of(top, 0) is None
            stats = router.stats()
            assert stats["shards"] == 3

    def test_unknown_transport_rejected(self, binary_cluster):
        game, dbs, local = binary_cluster
        with pytest.raises(ValueError, match="transport"):
            local.router(transport="carrier-pigeon")


class TestBinaryRouterFailover:
    def test_dead_primary_changes_no_answer(self, tmp_path_factory):
        """Kill a shard primary under a live binary router: later
        scatters still come back bit-identical via the replica and the
        failover is counted — same contract as the threaded transport."""
        game, dbs = solved_set("awari")
        directory = cluster_dir("awari", 2, tmp_path_factory)
        local = LocalCluster(directory, replicas=1, protocol="binary")
        registry = MetricsRegistry()
        pairs = all_pairs(dbs)
        expected = np.array(
            [int(dbs[d][i]) for d, i in pairs], dtype=np.int16
        )
        try:
            with local.router(
                metrics=registry, transport="binary"
            ) as router:
                np.testing.assert_array_equal(
                    router.probe_many(pairs), expected
                )
                local.kill(shard=0, endpoint=0)
                np.testing.assert_array_equal(
                    router.probe_many(pairs), expected,
                    err_msg="answers changed after primary death",
                )
        finally:
            local.close()
        assert registry.counters["cluster.shard_errors"] >= 1

    def test_no_replica_fails_loudly(self, tmp_path_factory):
        """With nothing to fail over to, exhaustion surfaces as a
        ProbeError naming the shard — never a wrong answer."""
        game, dbs = solved_set("awari")
        directory = cluster_dir("awari", 2, tmp_path_factory)
        local = LocalCluster(directory, replicas=0, protocol="binary")
        pairs = all_pairs(dbs)
        try:
            with local.router(
                transport="binary", policy=FAST_POLICY
            ) as router:
                assert router.probe_many(pairs[:50]).shape == (50,)
                local.kill(shard=0, endpoint=0)
                local.kill(shard=1, endpoint=0)
                with pytest.raises(ProbeError, match="endpoints failed"):
                    router.probe_many(pairs)
        finally:
            local.close()
