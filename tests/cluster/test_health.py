"""Circuit breakers, candidate ordering, and the liveness probe.

The breaker tests drive state transitions with an injected fake clock —
no sleeping — and pin the transition counters the chaos soak and the
CLI read.  The :func:`probe_endpoint` tests run against live servers of
*both* wire protocols, because one probe implementation health-checking
every cluster protocol is the whole point of the JSON ping fallback.
"""

import pytest

from repro.aserve.server import AsyncProbeServer
from repro.cluster.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    EndpointHealth,
    probe_endpoint,
)
from repro.obs import MetricsRegistry
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService

from tests.workloads import solved_set


class FakeClock:
    """Monotonic seconds under test control."""

    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold=1, reset=1.0, registry=None):
    clock = FakeClock()
    breaker = CircuitBreaker(
        threshold=threshold, reset_seconds=reset, clock=clock,
        metrics=registry,
    )
    return breaker, clock


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_default_threshold_trips_on_first_failure(self):
        registry = MetricsRegistry()
        breaker, _ = make_breaker(registry=registry)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert registry.counters["cluster.breaker.opens"] == 1

    def test_higher_threshold_needs_consecutive_failures(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure()
        assert not breaker.record_success()  # closed stays closed
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED  # count restarted

    def test_open_turns_half_open_after_reset_window(self):
        registry = MetricsRegistry()
        breaker, clock = make_breaker(reset=5.0, registry=registry)
        breaker.record_failure()
        clock.advance(4.99)
        assert breaker.state == BREAKER_OPEN
        clock.advance(0.02)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()  # probe-back traffic flows
        assert registry.counters["cluster.breaker.probes"] == 1
        # The lazy transition fires once, not on every read.
        assert breaker.state == BREAKER_HALF_OPEN
        assert registry.counters["cluster.breaker.probes"] == 1

    def test_half_open_success_reinstates(self):
        registry = MetricsRegistry()
        breaker, clock = make_breaker(reset=1.0, registry=registry)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.record_success() is True  # reinstatement
        assert breaker.state == BREAKER_CLOSED
        assert registry.counters["cluster.breaker.closes"] == 1

    def test_half_open_failure_reopens_instantly(self):
        breaker, clock = make_breaker(threshold=3, reset=1.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.state == BREAKER_HALF_OPEN
        # One failed probe re-opens — no second threshold to climb.
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.advance(1.5)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="reset_seconds"):
            CircuitBreaker(reset_seconds=0)


class TestEndpointHealth:
    def test_healthy_cluster_routes_in_topology_order(self):
        health = EndpointHealth([3, 2])
        assert health.candidates(0) == [0, 1, 2]
        assert health.candidates(1) == [0, 1]

    def test_open_primary_is_demoted_not_excluded(self):
        clock = FakeClock()
        health = EndpointHealth([3], clock=clock)
        health.breaker(0, 0).record_failure()
        assert health.candidates(0) == [1, 2, 0]
        assert health.snapshot() == [
            [BREAKER_OPEN, BREAKER_CLOSED, BREAKER_CLOSED]
        ]

    def test_half_open_is_preferred_over_closed(self):
        clock = FakeClock()
        health = EndpointHealth([2], reset_seconds=1.0, clock=clock)
        health.breaker(0, 0).record_failure()
        assert health.candidates(0) == [1, 0]
        clock.advance(2.0)
        # Probe-back first: the recovering primary leads again.
        assert health.candidates(0) == [0, 1]
        health.breaker(0, 0).record_success()
        assert health.candidates(0) == [0, 1]
        assert health.snapshot() == [[BREAKER_CLOSED, BREAKER_CLOSED]]


@pytest.fixture(scope="module")
def live_service():
    _, dbs = solved_set("synthetic")
    service = ProbeService.from_database_set(dbs)
    yield service
    service.close()


class TestProbeEndpoint:
    @pytest.mark.parametrize("server_cls", [ProbeServer, AsyncProbeServer],
                             ids=["json", "binary"])
    def test_live_server_pongs_on_both_protocols(self, live_service,
                                                 server_cls):
        server = server_cls(live_service).start()
        try:
            assert probe_endpoint(server.host, server.port, timeout=5.0)
        finally:
            server.shutdown()
        # The very same address refuses after shutdown: no false pong.
        assert not probe_endpoint(server.host, server.port, timeout=0.5)

    def test_unused_port_is_not_alive(self):
        assert not probe_endpoint("127.0.0.1", 1, timeout=0.2)
