"""Router recovery semantics: reinstatement, deadlines, hedging,
overload failover.

Two layers again.  Fake clients (no sockets) pin the router's
classification and timing contracts exactly — an overloaded endpoint
fails over without tripping its breaker, a deadline fails loudly within
budget, a slow primary loses the hedge race to the replica.  The live
layer closes the loop the original rotation design could not: a killed
*and restarted* primary serves traffic again.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster.manifest import ShardManifest
from repro.cluster.router import ShardRouter
from repro.core.partition import make_partition
from repro.obs import MetricsRegistry
from repro.serve.client import (
    ProbeError,
    ProbeOverloadedError,
    ProbeTransportError,
)

from .conftest import FAST_POLICY, LocalCluster, cluster_dir, solved_set

PRIMARY_BASE = 1000
REPLICA_BASE = 2000

SIZES = {5: 40}


def encode(port: int, local: int) -> int:
    """Endpoint-identifying value, as in the partition props suite."""
    return (port // 1000) * 8000 + (port % 1000) * 500 + (local % 500)


class FakeClient:
    """Records requests; answers with endpoint-identifying values."""

    def __init__(self, host, port, log):
        self.host, self.port, self.log = host, port, log
        self.timeouts: list = []

    def set_timeout(self, timeout) -> None:
        self.timeouts.append(float(timeout))

    def probe(self, db_id, local):
        self.log.append((self.port, db_id, int(local)))
        return encode(self.port, int(local))

    def probe_many(self, pairs):
        pairs = list(pairs)
        for db_id, local in pairs:
            self.log.append((self.port, db_id, int(local)))
        return np.array(
            [encode(self.port, int(local)) for _, local in pairs],
            dtype=np.int16,
        )

    def close(self):
        pass


class OverloadedClient(FakeClient):
    """An endpoint that is alive but shedding every request."""

    def probe(self, db_id, local):
        super().probe(db_id, local)
        raise ProbeOverloadedError("server overloaded (1 in flight)")

    def probe_many(self, pairs):
        super().probe_many(pairs)
        raise ProbeOverloadedError("server overloaded (1 in flight)")


class SlowClient(FakeClient):
    """Answers correctly, after a fixed delay (wall clock — the hedge
    race is genuinely concurrent)."""

    def __init__(self, host, port, log, delay):
        super().__init__(host, port, log)
        self.delay = delay

    def probe_many(self, pairs):
        time.sleep(self.delay)
        return super().probe_many(pairs)


class BlackholedClient(FakeClient):
    """Never answers within any timeout the router grants: sleeps the
    granted budget, then fails like a timed-out socket would."""

    def probe(self, db_id, local):
        super().probe(db_id, local)
        time.sleep(self.timeouts[-1] if self.timeouts else 0.5)
        raise ProbeTransportError("timed out")

    probe_many = probe


def make_manifest(n_shards: int) -> ShardManifest:
    return ShardManifest(
        game="awari",
        rules="",
        partition="cyclic",
        n_shards=n_shards,
        block_positions=64,
        databases={
            db_id: make_partition("cyclic", size, n_shards).spec()
            for db_id, size in SIZES.items()
        },
        shard_files=[f"shard_{r:02d}.pgdb" for r in range(n_shards)],
    )


def make_router(factory, n_shards=1, replicas=1, **kwargs) -> ShardRouter:
    endpoints = [
        [("fake", PRIMARY_BASE + r)]
        + ([("fake", REPLICA_BASE + r)] if replicas else [])
        for r in range(n_shards)
    ]
    return ShardRouter(
        make_manifest(n_shards), endpoints, client_factory=factory,
        **kwargs,
    )


class TestOverloadFailover:
    def test_shed_fails_over_without_tripping_the_breaker(self):
        """An overloaded primary loses this request but keeps its
        routing rank: no breaker trip, no shard_errors, and the next
        call tries the primary first again."""
        log = []
        registry = MetricsRegistry()

        def factory(host, port):
            cls = OverloadedClient if port < REPLICA_BASE else FakeClient
            return cls(host, port, log)

        with make_router(factory, metrics=registry) as router:
            for attempt in range(1, 3):
                value = router.probe(5, 0)
                assert value == encode(REPLICA_BASE, 0)
                assert registry.counters["cluster.overloads"] == attempt
                assert registry.counters["cluster.failovers"] == attempt
                # The shed endpoint is still trusted and still first.
                assert router.health_snapshot() == [["closed", "closed"]]
                assert router.active_endpoint(0).port == PRIMARY_BASE
            assert registry.counters.get("cluster.shard_errors", 0) == 0
            assert registry.counters.get("cluster.breaker.opens", 0) == 0

    def test_every_endpoint_shedding_raises_loudly(self):
        log = []
        factory = lambda host, port: OverloadedClient(host, port, log)
        with make_router(factory) as router:
            with pytest.raises(ProbeError, match="all 2 endpoints failed"):
                router.probe(5, 0)


class TestDeadlines:
    def test_call_fails_within_the_deadline_budget(self):
        """A wedged shard: the call must fail with a loud deadline
        error within D plus scheduling slack, not hang for the transport
        timeout, and the granted socket timeouts never exceed D."""
        log = []
        registry = MetricsRegistry()
        clients = []

        def factory(host, port):
            client = BlackholedClient(host, port, log)
            clients.append(client)
            return client

        deadline = 0.3
        with make_router(factory, metrics=registry,
                         deadline=deadline, timeout=30.0) as router:
            started = time.monotonic()
            with pytest.raises(ProbeError, match="deadline"):
                router.probe(5, 0)
            elapsed = time.monotonic() - started
        assert elapsed < deadline + 0.5
        assert registry.counters["cluster.deadline_exceeded"] == 1
        for client in clients:
            for granted in client.timeouts:
                assert granted <= deadline + 1e-6

    def test_no_deadline_means_no_budget_errors(self):
        log = []
        factory = lambda host, port: FakeClient(host, port, log)
        registry = MetricsRegistry()
        with make_router(factory, metrics=registry) as router:
            assert router.probe(5, 0) == encode(PRIMARY_BASE, 0)
        assert registry.counters.get("cluster.deadline_exceeded", 0) == 0


class TestHedgedReads:
    def test_slow_primary_loses_the_race_to_the_backup(self):
        """The primary answers, but slowly; the hedge fires and the
        replica's (bit-identical) answer wins."""
        log = []
        registry = MetricsRegistry()

        def factory(host, port):
            if port < REPLICA_BASE:
                return SlowClient(host, port, log, delay=0.5)
            return FakeClient(host, port, log)

        pairs = [(5, i) for i in range(SIZES[5])]
        with make_router(factory, metrics=registry,
                         hedge_after_ms=20) as router:
            values = router.probe_many(pairs)
        for (db_id, index), value in zip(pairs, values):
            part = make_manifest(1).partition_for(db_id)
            assert value == encode(REPLICA_BASE, int(part.to_local(index)))
        assert registry.counters["cluster.hedges"] == 1
        assert registry.counters["cluster.hedge_wins"] == 1
        # Nothing failed: hedging is latency insurance, not failover.
        assert registry.counters.get("cluster.shard_errors", 0) == 0

    def test_fast_primary_never_hedges(self):
        log = []
        registry = MetricsRegistry()
        factory = lambda host, port: FakeClient(host, port, log)
        pairs = [(5, i) for i in range(SIZES[5])]
        with make_router(factory, metrics=registry,
                         hedge_after_ms=200) as router:
            values = router.probe_many(pairs)
        assert registry.counters.get("cluster.hedges", 0) == 0
        part = make_manifest(1).partition_for(5)
        for (db_id, index), value in zip(pairs, values):
            assert value == encode(PRIMARY_BASE, int(part.to_local(index)))

    def test_fast_primary_failure_follows_sequential_failover(self):
        """A transport error before the hedge delay skips the hedge:
        ordinary failover, one shard_error, one failover, no hedges."""
        log = []
        registry = MetricsRegistry()

        class FailingClient(FakeClient):
            def probe_many(self, pairs):
                super().probe_many(pairs)
                raise ProbeTransportError("injected")

        def factory(host, port):
            cls = FailingClient if port < REPLICA_BASE else FakeClient
            return cls(host, port, log)

        pairs = [(5, i) for i in range(SIZES[5])]
        with make_router(factory, metrics=registry,
                         hedge_after_ms=500) as router:
            values = router.probe_many(pairs)
        part = make_manifest(1).partition_for(5)
        for (db_id, index), value in zip(pairs, values):
            assert value == encode(REPLICA_BASE, int(part.to_local(index)))
        assert registry.counters.get("cluster.hedges", 0) == 0
        assert registry.counters["cluster.failovers"] == 1
        assert registry.counters["cluster.shard_errors"] == 1


class TestReinstatement:
    """The regression the breaker exists for: under the old one-way
    rotation, a killed-then-restarted primary never served again."""

    def test_restarted_primary_serves_again(self, tmp_path_factory):
        name = "synthetic"
        _, dbs = solved_set(name)
        directory = cluster_dir(name, 2, tmp_path_factory)
        local = LocalCluster(directory, replicas=1)
        registry = MetricsRegistry()
        router = ShardRouter(
            local.manifest, local.endpoints, metrics=registry,
            policy=FAST_POLICY, breaker_reset_seconds=0.2,
        )
        db_id = local.manifest.ids()[-1]
        pairs = [
            (db_id, i) for i in range(local.manifest.positions(db_id))
        ]
        expected = [int(dbs[db_id][i]) for _, i in pairs]
        primary_port = local.endpoints[0][0][1]
        try:
            assert list(router.probe_many(pairs)) == expected

            local.kill(0, 0)
            assert list(router.probe_many(pairs)) == expected
            assert registry.counters["cluster.failovers"] >= 1
            assert router.health_snapshot()[0][0] == "open"
            assert router.active_endpoint(0).port != primary_port

            local.restart(0, 0)
            time.sleep(0.25)  # past the breaker reset: half-open
            assert list(router.probe_many(pairs)) == expected
            # The probe-back succeeded: the primary is reinstated and
            # leads the candidate order again.
            assert router.health_snapshot()[0][0] == "closed"
            assert router.active_endpoint(0).port == primary_port
            assert registry.counters["cluster.breaker.closes"] >= 1
            assert list(router.probe_many(pairs)) == expected
        finally:
            router.close()
            local.close()
