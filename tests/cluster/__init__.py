"""Cluster-grade test battery: differential identity and routing invariants."""
