"""Supervisor policy and the self-healing loop.

The policy layer runs against a fake supervisor and an injected clock:
backoff gating, flap giveup, and wedged-process detection are pure
bookkeeping and must be testable without a single real process.  The
live layer launches a real subprocess cluster, SIGKILLs a primary, and
watches the monitor respawn it **on its original port** — plus the
shutdown-escalation contract for a child that ignores SIGINT.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cluster.health import probe_endpoint
from repro.cluster.launch import (
    ClusterLaunchError,
    ClusterSupervisor,
    launch_cluster,
)
from repro.cluster.supervise import (
    PROBE_FAILURES_TO_KILL,
    ClusterMonitor,
    RestartPolicy,
)
from repro.cluster.topology import ClusterTopology, ShardEndpoint
from repro.obs import MetricsRegistry

from tests.workloads import cluster_dir, solved_set


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeProc:
    """Just enough Popen for the monitor: poll/kill/wait."""

    def __init__(self, alive: bool = True, returncode: int = 0):
        self._alive = alive
        self.returncode = None if alive else returncode

    def poll(self):
        return self.returncode

    def kill(self):
        self._alive = False
        self.returncode = -9

    def wait(self, timeout=None):
        return self.returncode


class FakeSupervisor:
    """One endpoint per shard; ``respawn`` is scripted per test."""

    def __init__(self, n_shards: int = 1, respawn_fails: bool = False,
                 born_dead: bool = False):
        self._processes = [[FakeProc()] for _ in range(n_shards)]
        self.topology = ClusterTopology(
            cluster_dir="",
            endpoints=[
                [ShardEndpoint(host="127.0.0.1", port=9000 + s, pid=1000 + s)]
                for s in range(n_shards)
            ],
        )
        self.respawn_fails = respawn_fails
        self.born_dead = born_dead
        self.respawns: list = []

    def process(self, shard, endpoint=0):
        return self._processes[shard][endpoint]

    def endpoints(self):
        for shard, group in enumerate(self._processes):
            for endpoint in range(len(group)):
                yield shard, endpoint

    def alive(self):
        return sum(1 for g in self._processes for p in g
                   if p.poll() is None)

    def respawn(self, shard, endpoint, **kwargs):
        self.respawns.append((shard, endpoint))
        if self.respawn_fails:
            raise ClusterLaunchError("injected respawn failure")
        proc = FakeProc(alive=not self.born_dead, returncode=1)
        self._processes[shard][endpoint] = proc
        address = self.topology.endpoints[shard][endpoint]
        replacement = ShardEndpoint(
            host=address.host, port=address.port, pid=5000 + len(self.respawns)
        )
        self.topology.endpoints[shard][endpoint] = replacement
        return replacement


def make_monitor(supervisor, clock, probe_ok=True, **kwargs):
    """A monitor whose liveness probe is scripted, never a socket."""
    monitor = ClusterMonitor(
        supervisor, clock=clock, sleep=lambda t: None, **kwargs
    )
    monitor._probe = (
        probe_ok if callable(probe_ok)
        else lambda shard, endpoint, _ok=probe_ok: _ok
    )
    return monitor


class TestRestartPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            RestartPolicy(max_restarts=0)
        with pytest.raises(ValueError, match="window_seconds"):
            RestartPolicy(window_seconds=0)

    def test_backoff_curve_is_bounded(self):
        policy = RestartPolicy(backoff_base=0.2, backoff_cap=5.0)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.8)
        assert policy.delay(10) == pytest.approx(5.0)  # capped


class TestMonitorPolicy:
    def test_dead_endpoint_respawns_after_backoff(self, tmp_path):
        clock = FakeClock()
        supervisor = FakeSupervisor()
        registry = MetricsRegistry()
        events = []
        topology_path = tmp_path / "topology.json"
        supervisor.topology.save(topology_path)
        monitor = make_monitor(
            supervisor, clock, metrics=registry,
            policy=RestartPolicy(backoff_base=0.2),
            topology_path=topology_path,
            on_event=lambda *a: events.append(a),
        )
        supervisor.process(0).kill()
        monitor.check_once()  # death noticed, respawn gated on backoff
        assert supervisor.respawns == []
        monitor.check_once()  # clock has not moved: still gated
        assert supervisor.respawns == []
        clock.advance(0.25)
        monitor.check_once()
        assert supervisor.respawns == [(0, 0)]
        assert monitor.restarts() == 1
        assert monitor.restarts_of(0) == 1
        assert registry.counters["cluster.supervisor.restarts"] == 1
        assert [e[0] for e in events] == ["restart"]
        # The topology was re-saved with the replacement pid.
        reloaded = ClusterTopology.load(topology_path)
        assert reloaded.endpoints[0][0].pid == 5001
        # Gauges refreshed every pass.
        assert registry.gauges["cluster.supervisor.alive"] == 1

    def test_flap_detector_gives_up_loudly(self):
        clock = FakeClock()
        supervisor = FakeSupervisor(n_shards=2, born_dead=True)
        registry = MetricsRegistry()
        events = []
        monitor = make_monitor(
            supervisor, clock, metrics=registry,
            policy=RestartPolicy(max_restarts=2, window_seconds=60.0,
                                 backoff_base=0.1, backoff_cap=0.1),
            on_event=lambda *a: events.append(a),
        )
        supervisor.process(0).kill()
        for _ in range(12):
            clock.advance(0.2)
            monitor.check_once()
        # Two tolerated restarts, then abandonment — not a fourth try.
        assert supervisor.respawns == [(0, 0), (0, 0)]
        assert monitor.gave_up_on() == [(0, 0)]
        assert registry.counters["cluster.supervisor.giveups"] == 1
        assert [e[0] for e in events].count("giveup") == 1
        # The healthy shard is still supervised: kill it, it restarts.
        supervisor.born_dead = False
        supervisor.process(1).kill()
        for _ in range(4):
            clock.advance(0.2)
            monitor.check_once()
        assert (1, 0) in supervisor.respawns
        assert monitor.gave_up_on() == [(0, 0)]

    def test_restarts_outside_the_window_are_forgiven(self):
        clock = FakeClock()
        supervisor = FakeSupervisor()
        monitor = make_monitor(
            supervisor, clock,
            policy=RestartPolicy(max_restarts=1, window_seconds=10.0,
                                 backoff_base=0.1, backoff_cap=0.1),
        )
        for round_no in range(3):
            supervisor.process(0).kill()
            monitor.check_once()  # death noticed, gated on backoff
            clock.advance(0.2)
            monitor.check_once()  # respawned
            assert monitor.restarts() == round_no + 1
            clock.advance(30.0)  # well past the flap window
        assert monitor.gave_up_on() == []

    def test_wedged_process_is_killed_after_consecutive_probe_failures(self):
        clock = FakeClock()
        supervisor = FakeSupervisor()
        events = []
        monitor = make_monitor(
            supervisor, clock, probe_ok=False,
            policy=RestartPolicy(backoff_base=0.1, backoff_cap=0.1),
            on_event=lambda *a: events.append(a),
        )
        proc = supervisor.process(0)
        for _ in range(PROBE_FAILURES_TO_KILL - 1):
            monitor.check_once()
            assert proc.poll() is None  # still tolerated
        monitor.check_once()  # third strike: killed, respawn pending
        assert proc.poll() == -9
        assert [e[0] for e in events] == ["unresponsive"]
        clock.advance(0.2)
        monitor.check_once()
        assert supervisor.respawns == [(0, 0)]

    def test_one_good_pong_resets_the_strike_count(self):
        clock = FakeClock()
        supervisor = FakeSupervisor()
        answers = [False, False, True] * 5
        monitor = make_monitor(
            supervisor, clock,
            probe_ok=lambda s, e: answers.pop(0),
        )
        for _ in range(9):
            monitor.check_once()
        assert supervisor.process(0).poll() is None  # never killed

    def test_failed_respawn_backs_off_and_retries(self):
        clock = FakeClock()
        supervisor = FakeSupervisor(respawn_fails=True)
        events = []
        monitor = make_monitor(
            supervisor, clock,
            policy=RestartPolicy(backoff_base=0.1, backoff_cap=10.0),
            on_event=lambda *a: events.append(a),
        )
        supervisor.process(0).kill()
        monitor.check_once()  # death noticed, gated on backoff
        clock.advance(0.2)
        monitor.check_once()  # respawn attempt runs — and fails
        assert [e[0] for e in events] == ["restart-failed"]
        assert monitor.restarts() == 0
        # Harder backoff after the failure: the immediate next pass
        # does not retry, a later one does.
        monitor.check_once()
        assert len(supervisor.respawns) == 1
        clock.advance(1.0)
        monitor.check_once()
        assert len(supervisor.respawns) == 2


class TestLiveSupervision:
    def test_sigkilled_primary_is_respawned_on_its_port(
            self, tmp_path_factory):
        """The full self-healing loop on real subprocesses: SIGKILL a
        primary, watch the monitor bring it back at the same address,
        and see the exit status of the killed child recorded."""
        solved_set("synthetic")
        directory = cluster_dir("synthetic", 2, tmp_path_factory)
        registry = MetricsRegistry()
        supervisor = launch_cluster(directory, replicas=0, cache_kb=256)
        monitor = ClusterMonitor(
            supervisor,
            policy=RestartPolicy(backoff_base=0.05, backoff_cap=0.2),
            health_interval=0.05, probe_timeout=2.0, metrics=registry,
        )
        try:
            victim = supervisor.topology.endpoints[0][0]
            assert probe_endpoint(victim.host, victim.port, timeout=5.0)
            monitor.start()
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (monitor.restarts_of(0) >= 1
                        and probe_endpoint(victim.host, victim.port,
                                           timeout=1.0)):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError(
                    f"primary never came back: restarts="
                    f"{monitor.restarts()} statuses="
                    f"{supervisor.exit_statuses}"
                )
            replacement = supervisor.topology.endpoints[0][0]
            assert replacement.port == victim.port
            assert replacement.pid != victim.pid
            # The respawn recorded how the old child died.
            assert supervisor.exit_statuses[(0, 0)] == -signal.SIGKILL
            assert registry.counters["cluster.supervisor.restarts"] >= 1
            assert registry.counters["cluster.supervisor.health_probes"] >= 1
        finally:
            monitor.stop()
            supervisor.shutdown(grace_seconds=10.0)
        # Shutdown recorded a status for every endpoint.
        assert set(supervisor.exit_statuses) == set(supervisor.endpoints())

    def test_shutdown_escalates_to_sigkill_for_a_stuck_child(self, tmp_path):
        """A child that ignores SIGINT must not stall shutdown: after
        the grace period it is SIGKILLed and its status recorded."""
        ready = tmp_path / "ignoring-sigint"
        stubborn = subprocess.Popen([
            sys.executable, "-c",
            "import pathlib, signal, time; "
            "signal.signal(signal.SIGINT, signal.SIG_IGN); "
            f"pathlib.Path({str(ready)!r}).touch(); "
            "time.sleep(600)",
        ])
        deadline = time.monotonic() + 30.0
        while not ready.exists():  # handler installed before any signal
            assert time.monotonic() < deadline, "stubborn child never ready"
            time.sleep(0.01)
        topology = ClusterTopology(
            cluster_dir="",
            endpoints=[[
                ShardEndpoint(host="127.0.0.1", port=0, pid=stubborn.pid)
            ]],
        )
        supervisor = ClusterSupervisor(topology, [[stubborn]])
        started = time.monotonic()
        supervisor.shutdown(grace_seconds=1.0)
        assert time.monotonic() - started < 30.0
        assert stubborn.poll() == -signal.SIGKILL
        assert supervisor.exit_statuses == {(0, 0): -signal.SIGKILL}
        # Idempotent: a second shutdown is a no-op, statuses stay.
        supervisor.shutdown(grace_seconds=0.1)
        assert supervisor.exit_statuses == {(0, 0): -signal.SIGKILL}
