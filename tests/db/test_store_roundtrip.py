"""DatabaseSet round-trip regression tests: depths arrays, exotic
database ids (negative ints, strings — ``_parse_id``), and the error
contract on missing databases."""

import numpy as np
import pytest

from repro.db.store import DatabaseSet


def _arr(*vals):
    return np.array(vals, dtype=np.int16)


class TestDepthsRoundtrip:
    def test_depths_survive_save_load(self, tmp_path):
        dbs = DatabaseSet(
            game_name="awari",
            values={0: _arr(0), 1: _arr(1, -1, 0)},
            rules="must_feed=True",
            depths={1: np.array([2, 3, -1], dtype=np.int32)},
        )
        dbs.save(tmp_path / "d.npz")
        loaded = DatabaseSet.load(tmp_path / "d.npz")
        assert loaded.depths is not None
        np.testing.assert_array_equal(loaded.depths[1], dbs.depths[1])
        assert loaded.depth_of(1, 0) == 2
        assert loaded.depth_of(1, 2) == -1

    def test_depth_of_missing_is_none(self, tmp_path):
        dbs = DatabaseSet(game_name="awari", values={0: _arr(0)})
        assert dbs.depth_of(0, 0) is None
        dbs.save(tmp_path / "nodepth.npz")
        loaded = DatabaseSet.load(tmp_path / "nodepth.npz")
        # Empty depths dict collapses back to None on load.
        assert loaded.depths is None
        assert loaded.depth_of(0, 0) is None


class TestIdParsing:
    def test_negative_ids_roundtrip_as_ints(self, tmp_path):
        dbs = DatabaseSet(
            game_name="synthetic", values={-2: _arr(1), -1: _arr(0), 3: _arr(-1)}
        )
        dbs.save(tmp_path / "neg.npz")
        loaded = DatabaseSet.load(tmp_path / "neg.npz")
        assert loaded.ids() == [-2, -1, 3]
        assert all(isinstance(i, int) for i in loaded.ids())
        np.testing.assert_array_equal(loaded[-2], _arr(1))

    def test_string_ids_roundtrip_as_strings(self, tmp_path):
        dbs = DatabaseSet(
            game_name="krk", values={"kqk": _arr(5), "krk": _arr(7, 0)}
        )
        dbs.save(tmp_path / "str.npz")
        loaded = DatabaseSet.load(tmp_path / "str.npz")
        assert loaded.ids() == ["kqk", "krk"]
        assert all(isinstance(i, str) for i in loaded.ids())
        np.testing.assert_array_equal(loaded["krk"], _arr(7, 0))

    def test_parse_id_cases(self):
        assert DatabaseSet._parse_id("7") == 7
        assert DatabaseSet._parse_id("-7") == -7
        assert DatabaseSet._parse_id("kqk") == "kqk"
        assert DatabaseSet._parse_id("7a") == "7a"


class TestMemoryAccounting:
    def test_memory_bytes_counts_values_and_depths(self):
        """Fig-2-style measurements must account every resident array:
        values *and* the optional per-database depth arrays."""
        values = {0: _arr(0), 1: _arr(1, -1, 0)}
        depths = {1: np.array([2, 3, -1], dtype=np.int32)}
        without = DatabaseSet(game_name="awari", values=values)
        with_depths = DatabaseSet(
            game_name="awari", values=values, depths=depths
        )
        value_bytes = sum(v.nbytes for v in values.values())
        assert without.memory_bytes() == value_bytes
        assert with_depths.memory_bytes() == value_bytes + depths[1].nbytes

    def test_modeled_bytes_unaffected_by_depths(self):
        dbs = DatabaseSet(
            game_name="awari",
            values={1: _arr(1, -1, 0)},
            depths={1: np.array([2, 3, -1], dtype=np.int32)},
        )
        assert dbs.memory_modeled_bytes() == 3


class TestMissingDatabase:
    def test_keyerror_names_missing_and_available(self):
        dbs = DatabaseSet(game_name="awari", values={0: _arr(0), 1: _arr(1)})
        with pytest.raises(KeyError, match=r"database 99 not present"):
            dbs[99]
        with pytest.raises(KeyError, match=r"have \[0, 1\]"):
            dbs[99]

    def test_contains_does_not_raise(self):
        dbs = DatabaseSet(game_name="awari", values={0: _arr(0)})
        assert 0 in dbs and 99 not in dbs
