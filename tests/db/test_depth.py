"""Distance-to-outcome (DTM) tests for awari databases."""

import numpy as np
import pytest

from repro.api import solve_awari
from repro.core.sequential import SequentialSolver
from repro.db.query import evaluate_moves, optimal_line
from repro.db.store import DatabaseSet
from repro.games.awari_db import AwariCaptureGame


@pytest.fixture(scope="module")
def deep_dbs():
    dbs, _ = solve_awari(6, with_depth=True)
    return dbs


class TestDepthCollection:
    def test_depths_present_for_every_db(self, deep_dbs):
        assert deep_dbs.depths is not None
        for n in range(7):
            assert n in deep_dbs.depths or n == 0
            if n in deep_dbs.depths:
                assert deep_dbs.depths[n].shape == deep_dbs[n].shape

    def test_draws_have_no_depth(self, deep_dbs):
        for n in range(1, 7):
            d = deep_dbs.depths[n]
            v = deep_dbs[n]
            assert (d[v == 0] == -1).all()
            assert (d[v != 0] >= 0).all()

    def test_depth_zero_means_immediate(self, deep_dbs):
        """Depth-0 positions realize their value without any internal
        propagation: terminal, or decided by exits alone."""
        game = AwariCaptureGame()
        n = 5
        d = deep_dbs.depths[n]
        v = deep_dbs[n]
        zero = np.flatnonzero((d == 0) & (v > 0))[:50]
        scan = game.scan_chunk(n, 0, game.db_size(n))
        for p in zero:
            caps = scan.capture[p][scan.legal[p]]
            succ = scan.succ_index[p][scan.legal[p]]
            exits = [
                int(c - deep_dbs[n - int(c)][s])
                for c, s in zip(caps, succ)
                if c > 0
            ]
            assert scan.terminal[p] or (exits and max(exits) >= int(v[p]))

    def test_depth_is_progress_measure(self, deep_dbs):
        """Along non-capturing value-optimal moves the successor's depth
        is strictly smaller — the property that makes optimal replay
        terminate."""
        game = AwariCaptureGame()
        n = 6
        v = deep_dbs[n]
        d = deep_dbs.depths[n]
        idx = game.engine.indexer(n)
        rng = np.random.default_rng(1)
        decided = np.flatnonzero((v != 0) & (d > 0))
        for p in rng.choice(decided, size=min(80, decided.size), replace=False):
            board = idx.unrank(np.array([p]))[0]
            evals = evaluate_moves(game, deep_dbs, board)
            best = max(e.value for e in evals)
            assert best == int(v[p])
            optimal = [e for e in evals if e.value == best]
            noncap = [e for e in optimal if e.captures == 0]
            if noncap and not any(e.captures > 0 for e in optimal):
                assert min(e.successor_depth for e in noncap) < int(d[p])

    def test_depth_guided_replay_terminates_exactly(self, deep_dbs):
        game = AwariCaptureGame()
        idx = game.engine.indexer(6)
        v = deep_dbs[6]
        rng = np.random.default_rng(2)
        wins = np.flatnonzero(v != 0)
        for p in rng.choice(wins, size=60, replace=False):
            board = idx.unrank(np.array([int(p)]))[0]
            realized, line = optimal_line(game, deep_dbs, board, max_plies=500)
            assert realized == int(v[p])

    def test_save_load_roundtrip_with_depths(self, deep_dbs, tmp_path):
        path = tmp_path / "deep.npz"
        deep_dbs.save(path)
        loaded = DatabaseSet.load(path)
        assert loaded.depths is not None
        for n in deep_dbs.depths:
            np.testing.assert_array_equal(loaded.depths[n], deep_dbs.depths[n])

    def test_depth_of_accessor(self, deep_dbs):
        assert deep_dbs.depth_of(5, 0) is not None
        shallow = DatabaseSet(game_name="x", values={1: np.zeros(3, np.int16)})
        assert shallow.depth_of(1, 0) is None

    def test_with_depth_rejected_for_parallel(self):
        with pytest.raises(ValueError, match="sequential"):
            solve_awari(3, procs=2, with_depth=True)
