"""Packed-encoding and database-probing-search tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequential import SequentialSolver
from repro.db.packing import (
    MAX_BITS,
    PackedDatabase,
    bit_width,
    pack_bits,
    pack_values,
    packed_nbytes,
    unpack_bits,
    unpack_values,
)
from repro.db.search import DatabaseProbingSearch
from repro.games.awari_db import AwariCaptureGame


class TestPacking:
    def test_nibble_roundtrip(self):
        v = np.array([-7, -1, 0, 3, 7, 2, -5], dtype=np.int16)
        packed = pack_values(v)
        assert packed.codec == "nibble"
        np.testing.assert_array_equal(unpack_values(packed), v)

    def test_int8_roundtrip(self):
        v = np.array([-48, 0, 13, 48], dtype=np.int16)
        packed = pack_values(v, bound=48)
        assert packed.codec == "int8"
        np.testing.assert_array_equal(unpack_values(packed), v)

    def test_nibble_halves_int8(self):
        v = np.zeros(1000, dtype=np.int16)
        assert pack_values(v, bound=5).nbytes == 500
        assert pack_values(v, bound=20).nbytes == 1000

    def test_ratio(self):
        v = np.zeros(100, dtype=np.int16)
        assert pack_values(v, bound=3).ratio() == pytest.approx(4.0)

    def test_odd_length_nibble(self):
        v = np.array([1, 2, 3], dtype=np.int16)
        np.testing.assert_array_equal(unpack_values(pack_values(v)), v)

    def test_bound_violation_rejected(self):
        with pytest.raises(ValueError):
            pack_values(np.array([9], dtype=np.int16), bound=7)

    def test_too_large_bound_rejected(self):
        with pytest.raises(ValueError):
            pack_values(np.array([200], dtype=np.int16), bound=200)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            pack_values(np.zeros((2, 2)))

    def test_unknown_codec_rejected(self):
        bad = PackedDatabase(codec="zip", count=0, payload=np.zeros(0, np.uint8))
        with pytest.raises(ValueError):
            unpack_values(bad)

    @given(
        st.lists(st.integers(-7, 7), max_size=100),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, values, force_int8):
        v = np.array(values, dtype=np.int16)
        packed = pack_values(v, bound=48 if force_int8 else 7)
        np.testing.assert_array_equal(unpack_values(packed), v)

    def test_real_database_packs(self):
        game = AwariCaptureGame()
        values, _ = SequentialSolver(game).solve(5)
        packed = pack_values(values[5], bound=5)
        assert packed.codec == "nibble"
        np.testing.assert_array_equal(unpack_values(packed), values[5])

    def test_count_payload_mismatch_rejected_at_construction(self):
        # 3 nibble values need exactly 2 bytes.
        with pytest.raises(ValueError, match="payload"):
            PackedDatabase(
                codec="nibble", count=3, payload=np.zeros(3, np.uint8)
            )
        with pytest.raises(ValueError, match="payload"):
            PackedDatabase(
                codec="int8", count=4, payload=np.zeros(5, np.uint8)
            )

    def test_phantom_nibble_regression(self):
        """A count the payload cannot hold must raise, never decode the
        odd-length padding nibble as a phantom -7 or silently truncate.
        (Bypasses the constructor the way a buggy deserializer would.)"""
        good = pack_values(np.array([1, 2, 3], dtype=np.int16))
        tampered = object.__new__(PackedDatabase)
        object.__setattr__(tampered, "codec", "nibble")
        object.__setattr__(tampered, "count", 5)  # lies: payload holds 3
        object.__setattr__(tampered, "payload", good.payload)
        with pytest.raises(ValueError, match="count"):
            unpack_values(tampered)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PackedDatabase(codec="int8", count=-1, payload=np.zeros(0, np.uint8))

    def test_empty_ratio_defined(self):
        empty = pack_values(np.zeros(0, dtype=np.int16))
        assert empty.ratio() == 1.0


class TestBitCodec:
    """Property tests for the general arbitrary-bit-width codec."""

    def test_bit_width_examples(self):
        assert bit_width(0, 0) == 1
        assert bit_width(0, 1) == 1
        assert bit_width(0, 2) == 2
        assert bit_width(-7, 7) == 4
        assert bit_width(-5, 5) == 4
        assert bit_width(0, 255) == 8
        assert bit_width(-32768, 32767) == 16

    def test_bit_width_rejects_empty_and_wide(self):
        with pytest.raises(ValueError):
            bit_width(1, 0)
        with pytest.raises(ValueError):
            bit_width(0, 1 << 16)

    def test_packed_nbytes(self):
        assert packed_nbytes(0, 4) == 0
        assert packed_nbytes(3, 4) == 2
        assert packed_nbytes(8, 1) == 1
        assert packed_nbytes(9, 1) == 2
        with pytest.raises(ValueError):
            packed_nbytes(-1, 4)
        with pytest.raises(ValueError):
            packed_nbytes(4, 17)

    @given(
        st.integers(min_value=1, max_value=MAX_BITS),
        st.integers(min_value=0, max_value=400),
        st.booleans(),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_any_width(self, bits, size, signed, seed):
        """Random widths x sizes x signed/unsigned: round-trip exact,
        payload exactly ceil(size*bits/8) bytes."""
        rng = np.random.default_rng(seed)
        span = (1 << bits) - 1
        lo = -(span // 2) - (span % 2) if signed else 0
        values = rng.integers(lo, lo + span + 1, size=size).astype(np.int64)
        # int16 is the storage dtype everywhere; clamp the 16-bit case.
        values = np.clip(values, -32768, 32767).astype(np.int16)
        payload = pack_bits(values, bits, offset=lo)
        assert payload.nbytes == packed_nbytes(size, bits)
        out = unpack_bits(payload, size, bits, offset=lo)
        assert out.dtype == np.int16
        np.testing.assert_array_equal(out, values)

    @given(
        st.integers(min_value=1, max_value=MAX_BITS),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_count_validation(self, bits, size):
        """A count the payload cannot hold exactly raises, never
        mis-slices — same contract as the 1995 codecs."""
        values = np.zeros(size, dtype=np.int16)
        payload = pack_bits(values, bits)
        exact = packed_nbytes(size, bits)
        for bad_count in (size + 8, max(0, size - 8)):
            if packed_nbytes(bad_count, bits) == exact:
                continue  # padding can absorb small count deltas
            with pytest.raises(ValueError, match="bytes"):
                unpack_bits(payload, bad_count, bits)

    def test_out_of_field_values_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            pack_bits(np.array([8], dtype=np.int16), 3)
        with pytest.raises(ValueError, match="exceed"):
            pack_bits(np.array([-1], dtype=np.int16), 3)  # below offset 0

    def test_empty_roundtrip(self):
        payload = pack_bits(np.zeros(0, dtype=np.int16), 5)
        assert payload.nbytes == 0
        assert unpack_bits(payload, 0, 5).shape == (0,)

    def test_msb_first_layout(self):
        # Two 4-bit fields share one byte, first value in the high
        # nibble — the on-disk layout docs/SERVING.md promises.
        payload = pack_bits(np.array([0xA, 0x3], dtype=np.int16), 4)
        assert payload.tobytes() == b"\xa3"


@pytest.fixture(scope="module")
def awari7():
    game = AwariCaptureGame()
    values, _ = SequentialSolver(game).solve(7)
    return game, values


class TestProbingSearch:
    def test_direct_probe_when_database_present(self, awari7):
        game, values = awari7
        search = DatabaseProbingSearch(game, values)
        idx = game.engine.indexer(7)
        rng = np.random.default_rng(0)
        for i in rng.integers(0, idx.count, size=30):
            board = idx.unrank(np.array([i]))[0]
            res = search.solve(board)
            assert res.exact
            assert res.value == int(values[7][i])
            assert res.stats.db_probes >= 1

    def test_search_above_database_horizon(self, awari7):
        """Solve 7-stone positions with only <=5-stone databases: forward
        search must bridge the gap and land on the full-database truth.

        Decisive positions (|value| >= 3) force captures quickly and
        resolve within the node budget; balanced positions sit in huge
        drawish cycle regions where depth-first search degenerates — the
        honest limitation that motivates retrograde analysis, reported
        through ``exact=False`` (checked separately below)."""
        game, values = awari7
        solver = SequentialSolver(game, collect_depth=True)
        deep_values, _ = solver.solve(7)
        depth = solver.depths[7]
        partial = {n: values[n] for n in range(6)}
        search = DatabaseProbingSearch(game, partial, max_depth=24, max_nodes=60_000)
        idx = game.engine.indexer(7)
        rng = np.random.default_rng(1)
        shallow = np.flatnonzero(
            (np.abs(values[7]) >= 1) & (depth >= 0) & (depth <= 6)
        )
        exact_checked = 0
        for i in rng.choice(shallow, size=25, replace=False):
            board = idx.unrank(np.array([int(i)]))[0]
            res = search.solve(board)
            if res.exact:
                assert res.value == int(values[7][i]), f"position {i}"
                exact_checked += 1
        assert exact_checked >= 6

    def test_inexact_results_are_flagged_not_wrong(self, awari7):
        """Random (often drawish) positions: whatever the search labels
        exact must equal the truth; the rest must be flagged."""
        game, values = awari7
        partial = {n: values[n] for n in range(6)}
        search = DatabaseProbingSearch(game, partial, max_depth=30, max_nodes=15_000)
        idx = game.engine.indexer(7)
        rng = np.random.default_rng(3)
        for i in rng.integers(0, idx.count, size=15):
            board = idx.unrank(np.array([i]))[0]
            res = search.solve(board)
            if res.exact:
                assert res.value == int(values[7][i])

    def test_depth_limit_marks_inexact(self, awari7):
        game, values = awari7
        search = DatabaseProbingSearch(game, {0: values[0]}, max_depth=2)
        board = game.engine.indexer(7).unrank(np.array([1234]))[0]
        res = search.solve(board)
        assert not res.exact
        assert res.stats.depth_limit_hits > 0

    def test_terminal_position(self, awari7):
        game, values = awari7
        search = DatabaseProbingSearch(game, {})
        board = np.zeros(12, dtype=np.int16)
        board[7] = 4  # mover cannot move
        res = search.solve(board)
        assert res.exact
        assert res.value == -4
        assert res.best_pit is None

    def test_best_pit_is_optimal(self, awari7):
        game, values = awari7
        from repro.db.query import best_moves
        from repro.db.store import DatabaseSet

        dbs = DatabaseSet(game_name="awari", values=values)
        partial = {n: values[n] for n in range(6)}
        search = DatabaseProbingSearch(game, partial, max_depth=30, max_nodes=40_000)
        idx = game.engine.indexer(7)
        rng = np.random.default_rng(2)
        for i in rng.integers(0, idx.count, size=10):
            board = idx.unrank(np.array([i]))[0]
            res = search.solve(board)
            value, moves = best_moves(game, dbs, board)
            if res.exact and moves:
                assert res.best_pit in {m.pit for m in moves}
