"""Database storage, statistics and query tests."""

import numpy as np
import pytest

from repro.core.partition import make_partition
from repro.core.sequential import SequentialSolver
from repro.db.query import best_moves, evaluate_moves, optimal_line
from repro.db.stats import database_stats, set_stats
from repro.db.store import DatabaseSet
from repro.games.awari_db import AwariCaptureGame


@pytest.fixture(scope="module")
def game():
    return AwariCaptureGame()


@pytest.fixture(scope="module")
def dbs(game):
    values, _ = SequentialSolver(game).solve(6)
    return DatabaseSet(game_name="awari", values=values, rules=game.rules.describe())


class TestStore:
    def test_roundtrip_save_load(self, dbs, tmp_path):
        path = tmp_path / "awari.npz"
        dbs.save(path)
        loaded = DatabaseSet.load(path)
        assert loaded.game_name == "awari"
        assert loaded.rules == dbs.rules
        assert loaded.ids() == dbs.ids()
        for n in dbs.ids():
            np.testing.assert_array_equal(loaded[n], dbs[n])

    def test_missing_database_raises(self, dbs):
        with pytest.raises(KeyError, match="database 99"):
            dbs[99]

    def test_contains(self, dbs):
        assert 3 in dbs
        assert 99 not in dbs

    def test_total_positions(self, dbs, game):
        assert dbs.total_positions == sum(game.db_size(n) for n in range(7))

    def test_memory_accounting(self, dbs):
        assert dbs.memory_bytes() == 2 * dbs.total_positions  # int16
        assert dbs.memory_modeled_bytes() == dbs.total_positions

    def test_shard_views(self, dbs):
        part = make_partition("cyclic", dbs[5].shape[0], 4)
        shards = dbs.shard(5, part)
        assert sum(s.shape[0] for s in shards) == dbs[5].shape[0]
        np.testing.assert_array_equal(shards[1], dbs[5][part.local_indices(1)])


class TestStats:
    def test_counts_partition(self, dbs):
        for st in set_stats(dbs):
            assert st.wins + st.draws + st.losses == st.positions
            assert sum(st.histogram.values()) == st.positions

    def test_histogram_values_bounded_and_parity_consistent(self, dbs):
        """Values never exceed the stone count in magnitude.  (No ±
        symmetry is expected: the side swap is not value-negating —
        zugzwang is real, e.g. the 1-stone database splits 5 wins vs 7
        losses.)"""
        for n in range(1, 7):
            st = database_stats(n, dbs[n])
            assert max(abs(v) for v in st.histogram) <= n

    def test_known_one_stone_split(self, dbs):
        """Hand-checked: with one stone, the mover keeps it only when it
        sits in own pits 0-4 (cannot feed => game ends, stone stays)."""
        st = database_stats(1, dbs[1])
        assert st.histogram == {1: 5, -1: 7}

    def test_db0_stats(self, dbs):
        st = database_stats(0, dbs[0])
        assert st.positions == 1
        assert st.draws == 1

    def test_row_renders(self, dbs):
        st = database_stats(4, dbs[4])
        row = st.row()
        assert "1,365" in row


class TestQuery:
    def test_evaluate_moves_capture(self, game, dbs):
        # Mover captures 2 from pit 5 (extra stones avoid the grand slam).
        board = np.array([0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 4], dtype=np.int16)
        evals = evaluate_moves(game, dbs, board)
        assert len(evals) == 1
        assert evals[0].captures == 2

    def test_best_moves_value_matches_database(self, game, dbs):
        idx = game.engine.indexer(6)
        rng = np.random.default_rng(0)
        for i in rng.integers(0, idx.count, size=40):
            board = idx.unrank(np.array([i]))[0]
            value, moves = best_moves(game, dbs, board)
            assert value == int(dbs[6][i])
            if moves:
                assert all(m.value == value for m in moves)

    def test_terminal_board_query(self, game, dbs):
        board = np.zeros(12, dtype=np.int16)
        board[7] = 3  # mover cannot move
        value, moves = best_moves(game, dbs, board)
        assert moves == []
        assert value == -3

    def test_optimal_line_on_draw_scores_zero(self, game, dbs):
        draws = np.flatnonzero(dbs[6] == 0)
        idx = game.engine.indexer(6)
        board = idx.unrank(draws[:1])[0]
        realized, _ = optimal_line(game, dbs, board, max_plies=60)
        assert realized == 0
