"""The shared successor-resolution helper: serving and in-memory query
paths both build on it, so it is pinned against the engine directly."""

import numpy as np
import pytest

from repro.core.sequential import SequentialSolver
from repro.db.query import evaluate_moves
from repro.db.store import DatabaseSet
from repro.db.successors import resolve_successors
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame


@pytest.fixture(scope="module", params=["awari", "kalah"])
def game_and_dbs(request):
    game = (AwariCaptureGame if request.param == "awari" else KalahCaptureGame)()
    values, _ = SequentialSolver(game).solve(4)
    return game, DatabaseSet(game_name=game.name, values=values)


def _boards(game, stones, count, seed):
    indexer = game.engine.indexer(stones)
    rng = np.random.default_rng(seed)
    return indexer.unrank(rng.integers(0, indexer.count, size=count))


def test_matches_engine_per_move(game_and_dbs):
    game, _ = game_and_dbs
    for board in _boards(game, 4, 30, seed=1):
        refs = resolve_successors(game, board)
        n = int(board.sum())
        pits_seen = []
        for ref in refs:
            pits_seen.append(ref.pit)
            out = game.engine.apply_move(
                board[None, :].astype(np.int16), np.array([ref.pit])
            )
            assert out.legal[0]
            assert ref.captures == int(out.captured[0])
            np.testing.assert_array_equal(ref.board, out.boards[0])
            assert ref.db_id == n - ref.captures
            assert ref.index == int(
                game.engine.indexer(ref.db_id).rank(ref.board[None, :])[0]
            )
        assert pits_seen == sorted(pits_seen)  # pit order


def test_evaluate_moves_uses_the_same_resolution(game_and_dbs):
    """Every move evaluation probes exactly the entry the helper names."""
    game, dbs = game_and_dbs
    for board in _boards(game, 4, 20, seed=2):
        refs = resolve_successors(game, board)
        evals = evaluate_moves(game, dbs, board)
        assert [e.pit for e in evals] == [r.pit for r in refs]
        for ref, ev in zip(refs, evals):
            assert ev.captures == ref.captures
            assert ev.value == ref.captures - int(dbs[ref.db_id][ref.index])


def test_terminal_board_has_no_successors():
    game = AwariCaptureGame()
    board = np.zeros(12, dtype=np.int16)
    board[6] = 4  # mover has no stones and cannot feed: no legal move
    assert resolve_successors(game, board) == []
