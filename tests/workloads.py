"""Session-wide solved workloads shared by the serving and cluster suites.

Solving and paging are the expensive parts of every serving test, and
they are pure functions of (game, target stones, block size) — so they
are computed once per test session and shared.  ``solved_set`` memoizes
the solve per game (the awari set is used by both the parametrized
``solved`` fixture and the dedicated ``awari_solved`` fixture, and must
not be solved twice); ``paged_store_path`` memoizes the paged
conversion; ``cluster_dir`` memoizes splits per (game, shards,
partition).  The conftests build fixtures on top of these helpers.
"""

from __future__ import annotations

from repro.cluster.manifest import split_store
from repro.core.sequential import SequentialSolver
from repro.db.store import DatabaseSet
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame
from repro.games.synthetic import SyntheticCaptureGame
from repro.serve.pagedstore import write_paged

#: Positions per block in the paged fixtures — tiny on purpose, so even
#: the small test databases span many blocks.
BLOCK_POSITIONS = 64

GAMES = {
    "awari": (AwariCaptureGame, 5),
    "kalah": (KalahCaptureGame, 4),
    "synthetic": (lambda: SyntheticCaptureGame(levels=5, max_size=50, seed=7), 4),
}

_SOLVED: dict = {}
_PAGED: dict = {}
_CLUSTERS: dict = {}


def solved_set(name):
    """(game, DatabaseSet) for one named workload, solved once per
    session."""
    if name not in _SOLVED:
        factory, target = GAMES[name]
        game = factory()
        values, _ = SequentialSolver(game).solve(target)
        rules = game.rules.describe() if hasattr(game, "rules") else ""
        _SOLVED[name] = (
            game,
            DatabaseSet(game_name=game.name, values=values, rules=rules),
        )
    return _SOLVED[name]


def paged_store_path(name, tmp_path_factory, codec="zlib"):
    """Path of the paged conversion of one workload, written once per
    (game, codec) per session at :data:`BLOCK_POSITIONS` granularity."""
    key = (name, codec)
    if key not in _PAGED:
        _, dbs = solved_set(name)
        slug = codec.replace("+", "-")
        path = (
            tmp_path_factory.mktemp(f"paged-{name}-{slug}") / f"{name}.pgdb"
        )
        write_paged(dbs, path, block_positions=BLOCK_POSITIONS, codec=codec)
        _PAGED[key] = path
    return _PAGED[key]


def cluster_dir(name, n_shards, tmp_path_factory, partition="cyclic",
                codec="zlib"):
    """Directory of a split cluster for one workload, one split per
    (game, shards, partition, codec) per session."""
    key = (name, n_shards, partition, codec)
    if key not in _CLUSTERS:
        _, dbs = solved_set(name)
        out = tmp_path_factory.mktemp(
            f"cluster-{name}-{n_shards}{partition}-{codec.replace('+', '-')}"
        )
        split_store(
            dbs, out, n_shards=n_shards, partition=partition,
            block_positions=BLOCK_POSITIONS, codec=codec,
        )
        _CLUSTERS[key] = out
    return _CLUSTERS[key]
