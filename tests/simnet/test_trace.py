"""Tracer tests."""

import numpy as np
import pytest

from repro.simnet.rts import Actor, SPMDRuntime
from repro.simnet.trace import Tracer


class Chain(Actor):
    """0 sends to 1, 1 to 2, ... last broadcasts DONE."""

    def on_start(self, ctx):
        if ctx.rank == 0:
            ctx.send(1, "HOP", size_bytes=32)

    def on_message(self, ctx, msg):
        if msg.tag == "HOP":
            nxt = ctx.rank + 1
            if nxt < ctx.size:
                ctx.send(nxt, "HOP", size_bytes=32)
            else:
                ctx.broadcast("DONE", size_bytes=16)


def run_traced(n=4, max_events=10_000):
    actors = [Chain() for _ in range(n)]
    rt = SPMDRuntime(actors)
    tracer = Tracer(max_events=max_events).attach(rt)
    rt.run()
    return tracer


class TestTracer:
    def test_events_recorded_in_order(self):
        tracer = run_traced()
        times = [e.time for e in tracer.events]
        assert times == sorted(times)
        # Each hop is a send + a delivery.
        sends = [e for e in tracer.events if e.kind == "send"]
        assert len(sends) == 4  # 3 hops + 1 broadcast

    def test_flow_matrix(self):
        tracer = run_traced()
        flow = tracer.flow_matrix()
        assert flow[0, 1] == 1
        assert flow[1, 2] == 1
        assert flow[2, 3] == 1
        # Broadcast from 3 counts toward everyone else.
        assert flow[3, 0] == flow[3, 1] == flow[3, 2] == 1
        assert flow[3, 3] == 0

    def test_tag_counts(self):
        tracer = run_traced()
        assert tracer.tag_counts == {"HOP": 3, "DONE": 1}

    def test_event_cap(self):
        tracer = run_traced(max_events=2)
        assert len(tracer.events) == 2
        assert tracer.dropped > 0
        assert "more events" in tracer.render_log(limit=2)

    def test_renderers_produce_text(self):
        tracer = run_traced()
        assert "HOP" in tracer.render_log()
        assert "DONE" in tracer.render_tags()
        assert "0" in tracer.render_flow()

    def test_double_attach_rejected(self):
        rt = SPMDRuntime([Chain(), Chain()])
        tracer = Tracer().attach(rt)
        with pytest.raises(RuntimeError):
            tracer.attach(rt)

    def test_unattached_flow_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().flow_matrix()

    def test_tracing_does_not_change_results(self):
        """A traced parallel solve must equal an untraced one."""
        from repro.core.graph import build_database_graph
        from repro.core.parallel.worker import RAWorker, WorkerConfig
        from repro.core.partition import make_partition
        from repro.core.sequential import SequentialSolver
        from repro.games.awari_db import AwariCaptureGame

        game = AwariCaptureGame()
        values, _ = SequentialSolver(game).solve(4)
        graph = build_database_graph(game, 4, {n: values[n] for n in range(4)})
        partition = make_partition("cyclic", graph.size, 3)
        cfg = WorkerConfig(predecessor_mode="unmove-cached")

        def run(traced):
            workers = [
                RAWorker(r, game, 4, graph, partition, 4, cfg) for r in range(3)
            ]
            rt = SPMDRuntime(workers, costs=cfg.costs)
            if traced:
                Tracer().attach(rt)
            rt.run()
            out = np.zeros(graph.size, dtype=np.int16)
            for w in workers:
                idx, vals = w.local_values()
                out[idx] = vals
            return out

        np.testing.assert_array_equal(run(True), run(False))
        np.testing.assert_array_equal(run(True), values[4])
