"""Blocking (mpi4py-style) communication layer tests."""

import pytest

from repro.simnet.comm import run_programs
from repro.simnet.engine import SimulationError


class TestPointToPoint:
    def test_ping_pong(self):
        def program(comm):
            if comm.rank == 0:
                yield comm.send(1, "ping", payload=7)
                msg = yield comm.recv(source=1)
                return msg.payload
            msg = yield comm.recv(source=0)
            yield comm.send(0, "pong", payload=msg.payload + 1)
            return msg.payload

        makespan, results = run_programs([program, program])
        assert results == [8, 7]
        assert makespan > 0

    def test_recv_matches_by_tag(self):
        def sender(comm):
            yield comm.send(1, "b", payload="second")
            yield comm.send(1, "a", payload="first")

        def receiver(comm):
            a = yield comm.recv(tag="a")
            b = yield comm.recv(tag="b")
            return (a.payload, b.payload)

        _, results = run_programs([sender, receiver])
        assert results[1] == ("first", "second")

    def test_recv_matches_by_source(self):
        def worker(comm):
            if comm.rank == 0:
                two = yield comm.recv(source=2)
                one = yield comm.recv(source=1)
                return (one.payload, two.payload)
            yield comm.send(0, "x", payload=comm.rank)

        _, results = run_programs([worker, worker, worker])
        assert results[0] == (1, 2)

    def test_compute_advances_clock(self):
        def program(comm):
            yield comm.compute(2.5)

        makespan, _ = run_programs([program])
        assert makespan == pytest.approx(2.5)

    def test_deadlock_detected(self):
        def program(comm):
            yield comm.recv()  # nobody ever sends

        with pytest.raises(SimulationError, match="deadlock"):
            run_programs([program])

    def test_bad_yield_rejected(self):
        def program(comm):
            yield "not an operation"

        with pytest.raises(SimulationError, match="yielded"):
            run_programs([program])


class TestCollectives:
    def test_barrier_synchronizes(self):
        arrival = {}

        def program(comm):
            yield comm.compute(0.1 * comm.rank)  # staggered arrival
            yield from comm.barrier()
            arrival[comm.rank] = True
            return comm.rank

        _, results = run_programs([program] * 4)
        assert results == [0, 1, 2, 3]
        assert len(arrival) == 4

    def test_bcast(self):
        def program(comm):
            value = 42 if comm.rank == 2 else None
            out = yield from comm.bcast(value, root=2)
            return out

        _, results = run_programs([program] * 5)
        assert results == [42] * 5

    def test_gather(self):
        def program(comm):
            out = yield from comm.gather(comm.rank * 10)
            return out

        _, results = run_programs([program] * 4)
        assert results[0] == [0, 10, 20, 30]
        assert results[1] is None

    def test_allreduce_sum(self):
        def program(comm):
            total = yield from comm.allreduce(comm.rank + 1)
            return total

        _, results = run_programs([program] * 6)
        assert results == [21] * 6

    def test_allreduce_custom_op(self):
        def program(comm):
            out = yield from comm.allreduce(comm.rank, op=max)
            return out

        _, results = run_programs([program] * 5)
        assert results == [4] * 5

    def test_collectives_compose(self):
        """A small SPMD program mixing phases, like real MPI code."""

        def program(comm):
            local = (comm.rank + 1) ** 2
            yield comm.compute(1e-3 * local)
            total = yield from comm.allreduce(local)
            yield from comm.barrier()
            share = yield from comm.bcast(
                total / comm.size if comm.rank == 0 else None
            )
            return share

        _, results = run_programs([program] * 4)
        assert results == [30 / 4] * 4

    def test_determinism(self):
        def program(comm):
            acc = 0
            for round_no in range(3):
                acc = yield from comm.allreduce(acc + comm.rank)
            return acc

        a = run_programs([program] * 5)
        b = run_programs([program] * 5)
        assert a == b
