"""Tests of the SPMD runtime: scheduling, charging, timers, determinism."""

import pytest

from repro.simnet.costs import CostModel
from repro.simnet.rts import Actor, SPMDRuntime


class Echo(Actor):
    """Replies PONG to every PING."""

    def __init__(self):
        self.got = []

    def on_message(self, ctx, msg):
        self.got.append(msg.tag)
        if msg.tag == "PING":
            ctx.charge(1e-3)
            ctx.send(msg.src, "PONG", size_bytes=32)


class Kickoff(Echo):
    def on_start(self, ctx):
        ctx.send(1, "PING", size_bytes=32)


class TestMessaging:
    def test_ping_pong(self):
        a, b = Kickoff(), Echo()
        rt = SPMDRuntime([a, b])
        rt.run()
        assert b.got == ["PING"]
        assert a.got == ["PONG"]

    def test_makespan_positive_and_cpu_charged(self):
        rt = SPMDRuntime([Kickoff(), Echo()])
        makespan = rt.run()
        assert makespan > 0
        # Sender: send overhead; receiver: recv + handler + send overhead.
        assert rt.node_stats[0].cpu_seconds > 0
        assert rt.node_stats[1].cpu_seconds > 0
        assert rt.node_stats[1].msgs_received == 1

    def test_broadcast(self):
        class Caster(Actor):
            def on_start(self, ctx):
                if ctx.rank == 0:
                    ctx.broadcast("HI", size_bytes=16)

        actors = [Caster() for _ in range(4)]
        got = []

        class Listener(Actor):
            def on_message(self, ctx, msg):
                got.append(ctx.rank)

        actors = [Caster()] + [Listener() for _ in range(3)]
        rt = SPMDRuntime(actors)
        rt.run()
        assert sorted(got) == [1, 2, 3]

    def test_send_charges_overhead_and_marshal(self):
        costs = CostModel(msg_overhead_send=1.0, marshal_per_byte=0.01)

        class OneShot(Actor):
            def on_start(self, ctx):
                if ctx.rank == 0:
                    ctx.send(1, "X", size_bytes=100)

        rt = SPMDRuntime([OneShot(), OneShot()], costs=costs)
        rt.run()
        assert rt.node_stats[0].cpu_seconds == pytest.approx(1.0 + 1.0)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            SPMDRuntime([])


class TestIdleLoop:
    def test_idle_runs_until_work_done(self):
        class Counter(Actor):
            def __init__(self):
                self.left = 5
                self.steps = 0

            def has_local_work(self):
                return self.left > 0

            def on_idle(self, ctx):
                self.left -= 1
                self.steps += 1
                ctx.charge(0.5)

        a = Counter()
        rt = SPMDRuntime([a])
        makespan = rt.run()
        assert a.steps == 5
        assert makespan == pytest.approx(2.5)

    def test_message_preempts_idle_only_between_steps(self):
        order = []

        class Worker(Actor):
            def __init__(self):
                self.left = 3

            def has_local_work(self):
                return self.left > 0

            def on_idle(self, ctx):
                order.append("idle")
                self.left -= 1
                ctx.charge(1.0)

            def on_message(self, ctx, msg):
                order.append("msg")

        class Sender(Actor):
            def on_start(self, ctx):
                ctx.send(0, "X", size_bytes=16)

        rt = SPMDRuntime([Worker(), Sender()])
        rt.run()
        assert order.count("idle") == 3
        assert order.count("msg") == 1
        # The message arrives early but lands between whole steps.
        assert order[0] == "idle"


class TestTimers:
    def test_timer_fires(self):
        fired = []

        class Timed(Actor):
            def on_start(self, ctx):
                ctx.set_timer(2.0)

            def on_timer(self, ctx):
                fired.append(ctx.now)

        rt = SPMDRuntime([Timed()])
        rt.run()
        assert fired == [2.0]

    def test_rearm_replaces(self):
        fired = []

        class Timed(Actor):
            def on_start(self, ctx):
                ctx.set_timer(1.0)
                ctx.set_timer(3.0)

            def on_timer(self, ctx):
                fired.append(ctx.now)

        rt = SPMDRuntime([Timed()])
        rt.run()
        assert fired == [3.0]

    def test_cancel(self):
        fired = []

        class Timed(Actor):
            def on_start(self, ctx):
                ctx.set_timer(1.0)
                ctx.cancel_timer()

            def on_timer(self, ctx):
                fired.append(ctx.now)

        rt = SPMDRuntime([Timed()])
        rt.run()
        assert fired == []


class TestDeterminism:
    def _run(self):
        class Chatter(Actor):
            def __init__(self):
                self.history = []

            def on_start(self, ctx):
                for peer in range(ctx.size):
                    if peer != ctx.rank:
                        ctx.send(peer, f"hello-{ctx.rank}", size_bytes=32)

            def on_message(self, ctx, msg):
                self.history.append((round(ctx.now, 9), msg.tag))

        actors = [Chatter() for _ in range(5)]
        rt = SPMDRuntime(actors)
        rt.run()
        return [a.history for a in actors], rt.sim.events_processed

    def test_repeat_runs_identical(self):
        h1, e1 = self._run()
        h2, e2 = self._run()
        assert h1 == h2
        assert e1 == e2
