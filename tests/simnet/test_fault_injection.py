"""Fault-injection tests: what the protocol assumes, demonstrated.

The paper's system ran on Amoeba's reliable transport.  Our algorithm
likewise assumes reliable FIFO delivery — these tests *document* that
assumption by injecting faults and checking the failure is loud (the
run never silently produces a wrong database).
"""

import numpy as np
import pytest

from repro.core.graph import build_database_graph
from repro.core.parallel.worker import RAWorker, WorkerConfig
from repro.core.partition import make_partition
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.simnet.engine import SimulationError
from repro.simnet.ethernet import Ethernet
from repro.simnet.rts import SPMDRuntime


class DroppyEthernet(Ethernet):
    """Drops the nth UPDATE transmission outright."""

    def __init__(self, *args, drop_nth: int = 5, **kwargs):
        super().__init__(*args, **kwargs)
        self._updates_seen = 0
        self._drop_nth = drop_nth
        self.dropped = 0

    def transmit(self, src, dst, size_bytes, message):
        if getattr(message, "tag", None) == "UPDATE":
            self._updates_seen += 1
            if self._updates_seen == self._drop_nth:
                self.dropped += 1
                return  # the frame vanishes on the wire
        super().transmit(src, dst, size_bytes, message)


def build_cluster(game, n, procs, lower, ethernet_cls=Ethernet, **eth_kwargs):
    graph = build_database_graph(game, n, lower)
    partition = make_partition("cyclic", graph.size, procs)
    cfg = WorkerConfig(predecessor_mode="unmove-cached", combining_capacity=16)
    workers = [
        RAWorker(r, game, n, graph, partition, n, cfg) for r in range(procs)
    ]
    runtime = SPMDRuntime(workers, costs=cfg.costs)
    runtime.ethernet = ethernet_cls(runtime.sim, procs, **eth_kwargs)
    runtime.ethernet.attach(runtime._deliver)
    return runtime, workers


@pytest.fixture(scope="module")
def setup():
    game = AwariCaptureGame()
    values, _ = SequentialSolver(game).solve(5)
    return game, values


class TestLostMessage:
    def test_lost_update_hangs_loudly(self, setup):
        """A dropped update packet stalls the affected positions; Safra
        (correctly!) never declares termination because the sent/received
        counters can no longer balance — the run spins on token rounds
        until the event guard trips instead of finishing wrong."""
        game, values = setup
        lower = {n: values[n] for n in range(5)}
        runtime, workers = build_cluster(
            game, 5, 4, lower, ethernet_cls=DroppyEthernet, drop_nth=5
        )
        with pytest.raises(SimulationError, match="livelock"):
            runtime.run(max_events=400_000)
        assert runtime.ethernet.dropped == 1

    def test_baseline_same_cluster_completes(self, setup):
        game, values = setup
        lower = {n: values[n] for n in range(5)}
        runtime, workers = build_cluster(game, 5, 4, lower)
        runtime.run(max_events=400_000)
        out = np.zeros(game.db_size(5), dtype=np.int16)
        for w in workers:
            idx, vals = w.local_values()
            out[idx] = vals
        np.testing.assert_array_equal(out, values[5])


class TestExtremeNetworks:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bandwidth_bps=5e3),          # ~500 B/s effective
            dict(propagation_delay_s=1.0),     # interplanetary Ethernet
            dict(contention_slot_penalty_s=5e-3),
        ],
        ids=["crawling", "high-latency", "collision-storm"],
    )
    def test_pathological_networks_still_exact(self, setup, kwargs):
        """Any *reliable* network, however awful, yields the exact
        database — only the makespan suffers."""
        from repro.core.parallel.driver import ParallelConfig, ParallelSolver
        from repro.simnet.ethernet import EthernetConfig

        game, values = setup
        lower = {n: values[n] for n in range(5)}
        cfg = ParallelConfig(
            n_procs=3,
            predecessor_mode="unmove-cached",
            ethernet=EthernetConfig(**kwargs),
        )
        out, stats = ParallelSolver(game, cfg).solve_database(
            5, lower, max_events=10_000_000
        )
        np.testing.assert_array_equal(out, values[5])
        assert stats.makespan_seconds > 0
