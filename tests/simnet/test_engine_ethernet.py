"""Unit tests for the discrete-event engine and the Ethernet model."""

import pytest

from repro.simnet.engine import SimulationError, Simulator
from repro.simnet.ethernet import Ethernet, EthernetConfig


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, log.append, name)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(0.5, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 1.5)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(max_events=100)

    def test_event_count(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 5
        assert sim.events_processed == 5


class TestEthernet:
    def _net(self, n=4, **kw):
        sim = Simulator()
        net = Ethernet(sim, n, EthernetConfig(**kw))
        inbox = []
        net.attach(lambda dst, m: inbox.append((sim.now, dst, m)))
        return sim, net, inbox

    def test_frame_time_includes_overhead(self):
        cfg = EthernetConfig(
            bandwidth_bps=10e6, frame_overhead_bytes=38, contention_efficiency=1.0
        )
        # 1000 payload + 38 overhead = 1038 bytes at 10 Mbit/s.
        assert cfg.frame_time(1000) == pytest.approx(1038 * 8 / 10e6)

    def test_min_frame_padding(self):
        cfg = EthernetConfig(contention_efficiency=1.0)
        assert cfg.frame_time(1) == cfg.frame_time(46)

    def test_unicast_delivery(self):
        sim, net, inbox = self._net()
        net.transmit(0, 2, 100, "hello")
        sim.run()
        assert len(inbox) == 1
        _, dst, msg = inbox[0]
        assert dst == 2 and msg == "hello"

    def test_broadcast_reaches_everyone_but_sender(self):
        sim, net, inbox = self._net(n=5)
        net.transmit(1, -1, 64, "bcast")
        sim.run()
        assert sorted(dst for _, dst, _ in inbox) == [0, 2, 3, 4]
        # One transmission, not five.
        assert net.stats.frames == 1

    def test_shared_medium_serializes(self):
        sim, net, inbox = self._net()
        # Two 1500-byte messages requested at t=0 must not overlap; the
        # second finds the medium busy and also pays the contention slots.
        net.transmit(0, 1, 1500, "m1")
        net.transmit(2, 3, 1500, "m2")
        sim.run()
        t1, t2 = inbox[0][0], inbox[1][0]
        frame = net.config.frame_time(1500)
        assert t2 - t1 == pytest.approx(
            frame + net.config.contention_slot_penalty_s
        )
        assert net.stats.contended_frames == 1

    def test_idle_medium_has_no_contention_penalty(self):
        sim, net, inbox = self._net()
        net.transmit(0, 1, 100, "m1")
        sim.run()
        net.transmit(0, 1, 100, "m2")
        sim.run()
        assert net.stats.contended_frames == 0
        assert net.stats.contention_seconds == 0.0

    def test_large_message_fragments(self):
        sim, net, inbox = self._net()
        net.transmit(0, 1, 4000, "big")
        sim.run()
        assert net.stats.frames == 3  # 1500 + 1500 + 1000
        assert len(inbox) == 1  # delivered once, on the last fragment

    def test_fifo_per_pair(self):
        sim, net, inbox = self._net()
        for i in range(10):
            net.transmit(0, 1, 50, i)
        sim.run()
        assert [m for _, _, m in inbox] == list(range(10))

    def test_utilization_bounded(self):
        sim, net, _ = self._net()
        for _ in range(20):
            net.transmit(0, 1, 1500, "x")
        sim.run()
        assert 0.9 < net.utilization(sim.now) <= 1.0

    def test_transmit_without_callback_raises(self):
        sim = Simulator()
        net = Ethernet(sim, 2)
        with pytest.raises(RuntimeError):
            net.transmit(0, 1, 10, "x")

    def test_byte_accounting(self):
        sim, net, _ = self._net()
        net.transmit(0, 1, 100, "x")
        sim.run()
        assert net.stats.payload_bytes == 100
        assert net.stats.wire_bytes == 100 + 38
