"""Blocking-comm layer under non-ideal conditions."""

import pytest

from repro.simnet.comm import run_programs
from repro.simnet.costs import CostModel
from repro.simnet.ethernet import EthernetConfig


def allreduce_program(comm):
    """Three rounds of compute + allreduce (a mini BSP application)."""
    acc = comm.rank
    for _ in range(3):
        yield comm.compute(1e-3 * (comm.rank + 1))
        acc = yield from comm.allreduce(acc)
    return acc


class TestHeterogeneousComm:
    def test_results_independent_of_node_speeds(self):
        even_span, even = run_programs([allreduce_program] * 4)
        skew_span, skew = run_programs(
            [allreduce_program] * 4, node_speeds=[1.0, 3.0, 1.0, 2.0]
        )
        assert even == skew  # values identical
        assert skew_span > even_span  # stragglers stretch the makespan

    def test_results_independent_of_network(self):
        _, fast = run_programs([allreduce_program] * 4)
        _, slow = run_programs(
            [allreduce_program] * 4,
            ethernet=EthernetConfig(bandwidth_bps=1e4, propagation_delay_s=0.2),
        )
        assert fast == slow

    def test_message_costs_show_in_makespan(self):
        cheap, _ = run_programs(
            [allreduce_program] * 4,
            costs=CostModel().scaled(msg_factor=0.1),
        )
        costly, _ = run_programs(
            [allreduce_program] * 4,
            costs=CostModel().scaled(msg_factor=10.0),
        )
        assert costly > cheap


class TestInterleavedTraffic:
    def test_many_outstanding_sends_are_matched_correctly(self):
        """Rank 0 fires a burst of tagged messages; receivers must match
        them out of order without loss."""

        def sender(comm):
            for k in range(20):
                yield comm.send(1 + (k % 2), f"tag{k}", payload=k)

        def receiver(comm):
            got = []
            base = comm.rank - 1
            # Receive in REVERSE order of sending: exercises inbox search.
            for k in range(18 + base, -1 + base, -2):
                msg = yield comm.recv(source=0, tag=f"tag{k}")
                got.append(msg.payload)
            return got

        _, results = run_programs([sender, receiver, receiver])
        assert results[1] == list(range(18, -1, -2))
        assert results[2] == list(range(19, 0, -2))

    def test_self_talk_is_rejected_by_structure(self):
        """A program that recv()s its own send deadlocks (ethernet
        delivers self-sends, but only if addressed): document behaviour
        for dst == self."""

        def program(comm):
            yield comm.send(comm.rank, "loop", payload=1)
            msg = yield comm.recv(tag="loop")
            return msg.payload

        # Self-sends do traverse the (loopback) medium and arrive.
        _, results = run_programs([program])
        assert results == [1]
