"""End-to-end crash recovery: killed workers, killed pipelines.

The headline property everywhere: a run with injected faults finishes
and is *bit-identical* to the fault-free sequential solve.
"""

import json
import multiprocessing as mp
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.multiproc import MultiprocessSolver
from repro.core.pipeline import PipelineConfig, PipelineRunner
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.obs import MetricsRegistry
from repro.resilience import RetryPolicy, RoundStore
from repro.resilience.faults import FaultPlan

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="needs fork"
)

#: Fast backoff so the suite stays quick.
FAST = RetryPolicy(backoff_seconds=0.001, backoff_max_seconds=0.01)


@pytest.fixture(scope="module")
def reference():
    values, _ = SequentialSolver(AwariCaptureGame()).solve(6)
    return values


class _ChunkKillerGame(AwariCaptureGame):
    """Awari whose scan_chunk SIGKILLs the child on one chosen chunk —
    the satellite's 'test game' formulation: the death happens inside
    game code, not in any injection hook."""

    def __init__(self, kill_db, kill_start, flag_path):
        super().__init__()
        self._kill_db = kill_db
        self._kill_start = kill_start
        self._flag_path = str(flag_path)

    def scan_chunk(self, db_id, start, stop):
        if db_id == self._kill_db and start == self._kill_start:
            try:
                fd = os.open(self._flag_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        return super().scan_chunk(db_id, start, stop)


class TestWorkerCrashRecovery:
    def test_scan_chunk_sigkill_is_replayed_bit_identical(
        self, tmp_path, reference
    ):
        game = _ChunkKillerGame(6, 1 << 10, tmp_path / "killed.flag")
        metrics = MetricsRegistry()
        solver = MultiprocessSolver(
            game, workers=2, metrics=metrics, policy=FAST, chunk=1 << 10
        )
        values = solver.solve(6)
        assert (tmp_path / "killed.flag").exists(), "the kill never fired"
        for n in range(7):
            np.testing.assert_array_equal(values[n], reference[n])
        assert metrics.counters["resilience.pool_rebuilds"] >= 1
        assert metrics.counters["resilience.tasks_replayed"] >= 1
        assert metrics.counters["resilience.retries"] >= 1

    def test_injected_chunk_kill_bit_identical(self, tmp_path, reference):
        faults = FaultPlan.from_specs(["kill-worker:chunk=2"],
                                      state_dir=str(tmp_path))
        metrics = MetricsRegistry()
        solver = MultiprocessSolver(
            AwariCaptureGame(), workers=2, metrics=metrics, policy=FAST,
            faults=faults, chunk=1 << 10,
        )
        values = solver.solve(6)
        assert Path(faults.worker_kill.flag_path).exists()
        for n in range(7):
            np.testing.assert_array_equal(values[n], reference[n])
        assert metrics.counters["resilience.pool_rebuilds"] >= 1

    def test_injected_threshold_kill_bit_identical(self, tmp_path, reference):
        faults = FaultPlan.from_specs(["kill-worker:threshold=3"],
                                      state_dir=str(tmp_path))
        metrics = MetricsRegistry()
        solver = MultiprocessSolver(
            AwariCaptureGame(), workers=2, metrics=metrics, policy=FAST,
            faults=faults,
        )
        values = solver.solve(6)
        for n in range(7):
            np.testing.assert_array_equal(values[n], reference[n])
        assert metrics.counters["resilience.pool_rebuilds"] >= 1


class TestRoundSnapshots:
    def test_partial_rounds_are_resumed_bit_identical(
        self, tmp_path, reference
    ):
        """A round store holding thresholds 1..3 of database 6 means only
        4..6 are re-solved, and the values still match exactly."""
        game = AwariCaptureGame()
        lower = {n: reference[n] for n in range(6)}
        store = RoundStore(tmp_path / "rounds", size=game.db_size(6))
        seed = MultiprocessSolver(game, workers=1)
        graph = seed._build_graph(6, lower)
        from repro.core.kernel import solve_kernel, threshold_init

        for t in (1, 2, 3):
            store.put(t, solve_kernel(threshold_init(graph, t)).status)
        metrics = MetricsRegistry()
        solver = MultiprocessSolver(game, workers=2, metrics=metrics,
                                    policy=FAST)
        values = solver.solve_database(6, lower, round_store=store)
        np.testing.assert_array_equal(values, reference[6])
        assert metrics.counters["resilience.rounds_resumed"] == 3

    def test_pipeline_clears_rounds_after_checkpoint(self, tmp_path, reference):
        cfg = PipelineConfig(
            backend="multiproc", checkpoint_dir=str(tmp_path), workers=2,
            retry=FAST, round_snapshot_min_positions=0,
        )
        values, status = PipelineRunner(AwariCaptureGame(), cfg).run(5)
        for n in range(6):
            np.testing.assert_array_equal(values[n], reference[n])
        assert not list(tmp_path.glob("rounds_db_*")), "rounds not cleared"


class TestPipelineKillAndResume:
    def test_sigkilled_pipeline_resumes_bit_identical(
        self, tmp_path, reference
    ):
        """Run the checkpointing CLI in a subprocess, SIGKILL it as soon
        as a mid-sequence checkpoint lands, then resume to completion."""
        ck = tmp_path / "ck"
        out = tmp_path / "resumed.npz"
        args = [
            sys.executable, "-m", "repro", "solve", "--stones", "6",
            "--checkpoint-dir", str(ck), "--out", str(out),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        victim = subprocess.Popen(args, env=env, stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 60
        killed = False
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break  # finished before we could kill it — resume is trivial
            if (ck / "db_3.npy").exists():
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=30)
                killed = True
                break
            time.sleep(0.002)
        else:
            victim.kill()
            pytest.fail("pipeline never checkpointed db 3")
        result = subprocess.run(args, env=env, capture_output=True,
                                text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        from repro.db.store import DatabaseSet

        dbs = DatabaseSet.load(out)
        for n in range(7):
            np.testing.assert_array_equal(dbs[n], reference[n])
        manifest = json.loads((ck / "manifest.json").read_text())
        assert sorted(int(k) for k in manifest["databases"]) == list(range(7))
        if killed:
            assert "resumed" in result.stdout or result.returncode == 0


class TestCheckpointCorruptionInjection:
    def test_injected_corruption_is_detected_and_rebuilt(
        self, tmp_path, reference
    ):
        """corrupt-checkpoint damages db 3 after it lands; the resumed
        run rejects it by CRC and rebuilds, bit-identical."""
        faults = FaultPlan.from_specs(["corrupt-checkpoint:db=3"],
                                      state_dir=str(tmp_path / "faults"))
        ck = str(tmp_path / "ck")
        game = AwariCaptureGame()
        first = MetricsRegistry()
        PipelineRunner(
            game, PipelineConfig(checkpoint_dir=ck, faults=faults),
            metrics=first,
        ).run(5)
        assert first.counters["faults.checkpoints_corrupted"] == 1
        second = MetricsRegistry()
        values, status = PipelineRunner(
            game, PipelineConfig(checkpoint_dir=ck), metrics=second
        ).run(5)
        assert second.counters["resilience.checkpoints_rejected"] == 1
        assert 3 in status.solved  # rebuilt, not trusted
        assert status.resumed == [0, 1, 2, 4, 5]
        for n in range(6):
            np.testing.assert_array_equal(values[n], reference[n])
