"""Chaos suite: every recovery path exercised, not just written."""
