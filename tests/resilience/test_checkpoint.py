"""Atomic writes, CRC verification, and round-store resume."""

import json
import os

import numpy as np
import pytest

from repro.resilience import (
    CheckpointCorruptError,
    RoundStore,
    atomic_save_array,
    atomic_write_bytes,
    atomic_write_json,
    crc32_of_file,
    load_array_verified,
)
from repro.resilience.faults import corrupt_file


class TestAtomicWrites:
    def test_bytes_land_and_tmp_is_gone(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"hello")
        assert path.read_bytes() == b"hello"
        assert not (tmp_path / "blob.bin.tmp").exists()

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"old contents")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "m.json"
        atomic_write_json(path, {"a": 1, "b": [2, 3]})
        assert json.loads(path.read_text()) == {"a": 1, "b": [2, 3]}


class TestVerifiedArrays:
    def test_save_load_roundtrip_with_crc(self, tmp_path):
        array = np.arange(1000, dtype=np.int16)
        path = tmp_path / "a.npy"
        crc = atomic_save_array(path, array)
        assert crc == crc32_of_file(path)
        np.testing.assert_array_equal(load_array_verified(path, crc), array)

    def test_flipped_byte_is_detected(self, tmp_path):
        array = np.arange(1000, dtype=np.int16)
        path = tmp_path / "a.npy"
        crc = atomic_save_array(path, array)
        corrupt_file(path)
        with pytest.raises(CheckpointCorruptError, match="CRC32"):
            load_array_verified(path, crc)

    def test_load_without_crc_skips_verification(self, tmp_path):
        array = np.arange(10, dtype=np.int16)
        path = tmp_path / "a.npy"
        atomic_save_array(path, array)
        np.testing.assert_array_equal(load_array_verified(path), array)

    def test_corrupt_file_flips_exactly_one_byte(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(bytes(100))
        corrupt_file(path)
        data = path.read_bytes()
        assert len(data) == 100
        assert sum(1 for b in data if b != 0) == 1


class TestRoundStore:
    def _statuses(self, size, thresholds):
        rng = np.random.default_rng(7)
        return {t: rng.integers(0, 3, size=size).astype(np.uint8)
                for t in thresholds}

    def test_put_load_roundtrip(self, tmp_path):
        store = RoundStore(tmp_path / "rounds", size=64)
        statuses = self._statuses(64, [1, 2, 5])
        for t, s in statuses.items():
            store.put(t, s)
        fresh = RoundStore(tmp_path / "rounds", size=64)
        loaded = fresh.load()
        assert sorted(loaded) == [1, 2, 5]
        for t in statuses:
            np.testing.assert_array_equal(loaded[t], statuses[t])

    def test_corrupt_round_is_dropped_not_trusted(self, tmp_path):
        store = RoundStore(tmp_path / "rounds", size=32)
        for t, s in self._statuses(32, [1, 2]).items():
            store.put(t, s)
        corrupt_file(tmp_path / "rounds" / "t1.npy")
        loaded = RoundStore(tmp_path / "rounds", size=32).load()
        assert sorted(loaded) == [2]

    def test_missing_file_is_dropped(self, tmp_path):
        store = RoundStore(tmp_path / "rounds", size=32)
        for t, s in self._statuses(32, [1, 2]).items():
            store.put(t, s)
        os.unlink(tmp_path / "rounds" / "t2.npy")
        assert sorted(RoundStore(tmp_path / "rounds", size=32).load()) == [1]

    def test_wrong_size_is_dropped(self, tmp_path):
        store = RoundStore(tmp_path / "rounds", size=32)
        for t, s in self._statuses(32, [1]).items():
            store.put(t, s)
        # Same store path reopened for a different database size.
        assert RoundStore(tmp_path / "rounds", size=64).load() == {}

    def test_torn_index_means_empty_not_crash(self, tmp_path):
        store = RoundStore(tmp_path / "rounds", size=16)
        store.put(1, np.zeros(16, dtype=np.uint8))
        (tmp_path / "rounds" / "rounds.json").write_text('{"1": 12')  # torn
        assert RoundStore(tmp_path / "rounds", size=16).load() == {}

    def test_clear_removes_everything(self, tmp_path):
        store = RoundStore(tmp_path / "rounds", size=16)
        for t, s in self._statuses(16, [1, 2, 3]).items():
            store.put(t, s)
        store.clear()
        assert not (tmp_path / "rounds").exists()
