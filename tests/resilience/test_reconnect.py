"""Reconnecting probe clients against a chaotic server.

A server configured with ``drop-conn`` faults closes connections on
accept (every Nth) and severs established ones mid-session (after K
responses); a reconnecting client must shrug all of it off and return
exactly the answers a fault-free session would.
"""

import socket
import struct

import numpy as np
import pytest

from repro.core.sequential import SequentialSolver
from repro.db.store import DatabaseSet
from repro.games.awari_db import AwariCaptureGame
from repro.obs import MetricsRegistry
from repro.resilience import ReconnectPolicy
from repro.resilience.faults import FaultPlan
from repro.serve.client import ProbeClient, ProbeError
from repro.serve.protocol import OversizedFrameError, recv_message, send_message
from repro.serve.server import ProbeServer
from repro.serve.service import ProbeService

#: Tight backoff so reconnect storms resolve in milliseconds.
FAST = ReconnectPolicy(connect_attempts=6, request_replays=5,
                       backoff_seconds=0.005, backoff_max_seconds=0.05)


@pytest.fixture(scope="module")
def dbs():
    game = AwariCaptureGame()
    values, _ = SequentialSolver(game).solve(5)
    return DatabaseSet(game_name=game.name, values=values,
                       rules=game.rules.describe())


def _chaos_server(dbs, *specs, **kwargs):
    faults = FaultPlan.from_specs(list(specs))
    service = ProbeService.from_database_set(dbs)
    return ProbeServer(service, faults=faults, **kwargs).start()


class TestReconnect:
    def test_probes_survive_accept_drops(self, dbs):
        """Every 5th connection is refused; 200 probes still all land."""
        server = _chaos_server(dbs, "drop-conn:every=5")
        metrics = MetricsRegistry()
        try:
            rng = np.random.default_rng(3)
            pairs = [(int(d), int(rng.integers(0, dbs[d].shape[0])))
                     for d in rng.choice(dbs.ids(), size=200)]
            expected = [int(dbs[d][i]) for d, i in pairs]
            got = []
            reconnects = 0
            for k in range(0, 200, 40):
                with ProbeClient(server.host, server.port, policy=FAST,
                                 metrics=metrics) as client:
                    got.extend(client.probe(d, i) for d, i in pairs[k:k + 40])
                    reconnects += client.reconnects
            assert got == expected
        finally:
            server.shutdown()
        # Five sessions over a drop-every-5 server: statistically certain
        # to hit at least one refused accept (the initial connect of the
        # 5th/10th/... accepted socket).
        assert metrics.counters.get("resilience.reconnects", 0) + \
            metrics.counters.get("resilience.connect_retries", 0) > 0

    def test_probes_survive_mid_session_severing(self, dbs):
        """The server cuts every connection after 25 responses; one
        client session of 200 probes transparently reconnects through."""
        server = _chaos_server(dbs, "drop-conn:every=1000,after=25")
        try:
            rng = np.random.default_rng(4)
            pairs = [(int(d), int(rng.integers(0, dbs[d].shape[0])))
                     for d in rng.choice(dbs.ids(), size=200)]
            with ProbeClient(server.host, server.port, policy=FAST) as client:
                got = [client.probe(d, i) for d, i in pairs]
                assert client.reconnects >= 200 // 25 - 1
            assert got == [int(dbs[d][i]) for d, i in pairs]
        finally:
            server.shutdown()

    def test_batch_probes_survive_severing(self, dbs):
        server = _chaos_server(dbs, "drop-conn:every=1000,after=3")
        try:
            rng = np.random.default_rng(5)
            pairs = [(int(d), int(rng.integers(0, dbs[d].shape[0])))
                     for d in rng.choice(dbs.ids(), size=64)]
            with ProbeClient(server.host, server.port, policy=FAST) as client:
                for _ in range(12):
                    got = client.probe_many(pairs)
                    np.testing.assert_array_equal(
                        got, [int(dbs[d][i]) for d, i in pairs]
                    )
        finally:
            server.shutdown()

    def test_reconnect_disabled_surfaces_the_drop(self, dbs):
        server = _chaos_server(dbs, "drop-conn:every=1000,after=2")
        try:
            with ProbeClient(server.host, server.port, policy=FAST,
                             reconnect=False) as client:
                with pytest.raises(ProbeError, match="failed"):
                    for _ in range(10):
                        client.ping()
        finally:
            server.shutdown()


class TestClientHardening:
    def test_connect_to_dead_port_is_probe_error(self):
        victim = socket.socket()
        victim.bind(("127.0.0.1", 0))
        port = victim.getsockname()[1]
        victim.close()  # nobody listens here any more
        policy = ReconnectPolicy(connect_attempts=2, backoff_seconds=0.001)
        with pytest.raises(ProbeError, match="cannot connect"):
            ProbeClient("127.0.0.1", port, timeout=0.5, policy=policy)

    def test_close_is_idempotent(self, dbs):
        server = _chaos_server(dbs, "drop-conn:every=1000")
        try:
            client = ProbeClient(server.host, server.port, policy=FAST)
            assert client.ping()
            client.close()
            client.close()
            client.close()
        finally:
            server.shutdown()

    def test_closed_client_refuses_requests(self, dbs):
        server = _chaos_server(dbs, "drop-conn:every=1000")
        try:
            client = ProbeClient(server.host, server.port, policy=FAST)
            client.close()
            with pytest.raises(ProbeError, match="closed"):
                client.ping()
        finally:
            server.shutdown()


class TestServerHardening:
    def test_oversized_frame_gets_ok_false_not_a_dead_server(self, dbs):
        """A frame above the server's limit draws a structured error
        and the server keeps serving other clients."""
        service = ProbeService.from_database_set(dbs)
        server = ProbeServer(service, max_message_bytes=256).start()
        try:
            sock = socket.create_connection((server.host, server.port),
                                            timeout=5)
            try:
                big = {"op": "ping", "pad": "x" * 1024}
                with pytest.raises(OversizedFrameError):
                    send_message(sock, big, max_bytes=256)
                # The client-side guard refused to send; push the frame
                # manually to exercise the server-side rejection.
                import json

                payload = json.dumps(big).encode()
                sock.sendall(struct.pack(">I", len(payload)) + payload)
                response = recv_message(sock)
                assert response is not None and response["ok"] is False
                assert "exceeds" in response["error"]
            finally:
                sock.close()
            # And the listener is still healthy for the next client.
            with ProbeClient(server.host, server.port, policy=FAST) as c:
                assert c.ping()
        finally:
            server.shutdown()

    def test_garbage_frame_isolates_to_one_connection(self, dbs):
        service = ProbeService.from_database_set(dbs)
        server = ProbeServer(service).start()
        try:
            sock = socket.create_connection((server.host, server.port),
                                            timeout=5)
            sock.sendall(struct.pack(">I", 4) + b"\xff\xfe\xfd\xfc")
            sock.close()
            with ProbeClient(server.host, server.port, policy=FAST) as c:
                assert c.ping()
        finally:
            server.shutdown()
