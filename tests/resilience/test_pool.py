"""SupervisedPool unit tests: retry, replay, rebuild, bounded failure.

Worker functions live at module level so they pickle; cross-process
"fail once then succeed" state goes through O_CREAT|O_EXCL flag files
(fork workers share no memory with the parent after the snapshot).
"""

import multiprocessing as mp
import os
import signal

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import PoolFailedError, RetryPolicy, SupervisedPool

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="needs fork"
)

FORK = mp.get_context("fork")

#: Fast backoff so the suite stays quick.
FAST = RetryPolicy(backoff_seconds=0.001, backoff_max_seconds=0.01)


def _square(x):
    return x * x


def _claim(path) -> bool:
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _fail_once(task):
    x, flag = task
    if _claim(flag):
        raise RuntimeError("transient failure")
    return x + 1


def _always_fail(task):
    raise RuntimeError("permanent failure")


def _kill_once(task):
    x, target, flag = task
    if x == target and _claim(flag):
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


def _pool(fn, workers=2, policy=FAST, metrics=None):
    return SupervisedPool(fn, max_workers=workers, mp_context=FORK,
                         policy=policy, metrics=metrics)


class TestHappyPath:
    def test_map_returns_results_in_task_order(self):
        with _pool(_square) as pool:
            assert pool.map(range(20)) == [x * x for x in range(20)]

    def test_on_result_sees_every_task_once(self):
        seen = {}
        with _pool(_square) as pool:
            pool.map(range(8), on_result=lambda i, r: seen.setdefault(i, r))
        assert seen == {i: i * i for i in range(8)}

    def test_counters_clean_run(self):
        metrics = MetricsRegistry()
        with _pool(_square, metrics=metrics) as pool:
            pool.map(range(5))
        assert metrics.counters["resilience.tasks_completed"] == 5
        assert "resilience.retries" not in metrics.counters
        assert "resilience.pool_rebuilds" not in metrics.counters


class TestRetry:
    def test_transient_failure_is_retried(self, tmp_path):
        metrics = MetricsRegistry()
        tasks = [(x, str(tmp_path / f"f{x}.flag")) for x in range(4)]
        with _pool(_fail_once, metrics=metrics) as pool:
            assert pool.map(tasks) == [1, 2, 3, 4]
        assert metrics.counters["resilience.retries"] == 4
        assert metrics.counters["resilience.task_failures"] == 4
        assert metrics.counters["resilience.tasks_completed"] == 4

    def test_permanent_failure_is_bounded(self):
        policy = RetryPolicy(max_task_retries=2, backoff_seconds=0.001)
        with _pool(_always_fail, policy=policy) as pool:
            with pytest.raises(PoolFailedError, match="failed 3 times"):
                pool.map([0])


class TestRebuild:
    def test_killed_worker_costs_one_replay_round(self, tmp_path):
        metrics = MetricsRegistry()
        flag = str(tmp_path / "kill.flag")
        tasks = [(x, 3, flag) for x in range(8)]
        with _pool(_kill_once, metrics=metrics) as pool:
            assert pool.map(tasks) == [x * 10 for x in range(8)]
        assert metrics.counters["resilience.pool_rebuilds"] == 1
        assert metrics.counters["resilience.tasks_replayed"] >= 1
        assert metrics.counters["resilience.tasks_completed"] == 8

    def test_rebuilds_are_bounded(self, tmp_path):
        # Three distinct kill flags = the pool breaks three times, one
        # more than the policy allows.
        policy = RetryPolicy(max_pool_rebuilds=2, backoff_seconds=0.001)
        tasks = [(0, 0, str(tmp_path / f"k{i}.flag")) for i in range(3)]
        # One worker so exactly one kill fires per round: three breaks.
        with _pool(_kill_once, workers=1, policy=policy) as pool:
            with pytest.raises(PoolFailedError, match="broke 3 times"):
                # Tasks all target x == 0, so each round kills again
                # until the flags run out — but the bound trips first.
                pool.map(tasks)


class TestPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_max_seconds=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)
        assert policy.backoff(10) == pytest.approx(0.3)
