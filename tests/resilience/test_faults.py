"""Fault-spec parsing and injector determinism (no actual kills here —
the SIGKILL paths run in tests/resilience/test_recovery.py workers)."""

import pytest

from repro.resilience.faults import (
    BlackholeInjector,
    CheckpointCorruptInjector,
    ConnectionDropInjector,
    FaultPlan,
    FaultSpecError,
    LatencyInjector,
    WorkerKillInjector,
    parse_fault,
)


class TestParsing:
    def test_kill_worker_chunk(self):
        spec = parse_fault("kill-worker:chunk=3")
        assert spec.kind == "kill-worker"
        assert spec.params == {"chunk": 3}

    def test_kill_worker_threshold(self):
        assert parse_fault("kill-worker:threshold=2").params == {"threshold": 2}

    def test_drop_conn_both_params(self):
        spec = parse_fault("drop-conn:every=7,after=100")
        assert spec.params == {"every": 7, "after": 100}

    def test_corrupt_checkpoint(self):
        assert parse_fault("corrupt-checkpoint:db=4").params == {"db": 4}

    def test_crash_shard(self):
        spec = parse_fault("crash-shard:shard=1,after=100")
        assert spec.kind == "crash-shard"
        assert spec.params == {"shard": 1, "after": 100}

    def test_latency(self):
        assert parse_fault("latency:ms=200,every=3").params == {
            "ms": 200, "every": 3,
        }

    def test_blackhole(self):
        assert parse_fault("blackhole:after=10").params == {"after": 10}

    @pytest.mark.parametrize("bad", [
        "explode:now=1",            # unknown kind
        "kill-worker",              # no params
        "kill-worker:chunk",        # no value
        "kill-worker:chunk=x",      # not an integer
        "kill-worker:every=1",      # wrong parameter for kind
        "kill-worker:chunk=1,threshold=2",  # exactly one scope allowed
        "drop-conn:db=1",
        "crash-shard:shard=1",      # missing the required after=
        "latency:every=3",          # missing the required ms=
        "blackhole:ms=1",           # wrong parameter for kind
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault(bad)


class TestWorkerKillInjector:
    def test_fires_once_on_the_target_only(self, tmp_path):
        inj = WorkerKillInjector("chunk", 3, str(tmp_path / "f.flag"))
        assert not inj.should_fire("chunk", 2)
        assert not inj.should_fire("threshold", 3)
        assert inj.should_fire("chunk", 3)
        assert not inj.should_fire("chunk", 3)  # once only

    def test_flag_survives_a_new_injector_instance(self, tmp_path):
        """A resumed run (same state dir) must not re-fire the fault."""
        flag = str(tmp_path / "f.flag")
        assert WorkerKillInjector("chunk", 1, flag).should_fire("chunk", 1)
        assert not WorkerKillInjector("chunk", 1, flag).should_fire("chunk", 1)


class TestConnectionDropInjector:
    def test_every_nth_connection(self):
        inj = ConnectionDropInjector(every=3)
        drops = [inj.drop_on_accept() for _ in range(9)]
        assert drops == [False, False, True] * 3

    def test_after_only_never_drops_on_accept(self):
        inj = ConnectionDropInjector(after=5)
        assert not any(inj.drop_on_accept() for _ in range(10))
        assert inj.sever_after() == 5

    def test_needs_a_parameter(self):
        with pytest.raises(FaultSpecError):
            ConnectionDropInjector()


class TestCheckpointCorruptInjector:
    def test_fires_once_for_matching_db(self, tmp_path):
        inj = CheckpointCorruptInjector(2, str(tmp_path / "c.flag"))
        assert not inj.should_fire(1)
        assert inj.should_fire(2)
        assert not inj.should_fire(2)


class TestLatencyInjector:
    def test_every_nth_request_pays_the_delay(self):
        inj = LatencyInjector(ms=200, every=3)
        delays = [inj.delay_seconds() for _ in range(6)]
        assert delays == [0.0, 0.0, 0.2, 0.0, 0.0, 0.2]

    def test_default_is_every_request(self):
        inj = LatencyInjector(ms=50)
        assert [inj.delay_seconds() for _ in range(3)] == [0.05] * 3


class TestBlackholeInjector:
    def test_answers_then_swallows_forever(self):
        inj = BlackholeInjector(after=2)
        assert [inj.swallow() for _ in range(5)] == [
            False, False, True, True, True,
        ]


class TestFaultPlan:
    def test_from_specs_builds_all_injectors(self, tmp_path):
        plan = FaultPlan.from_specs(
            ["kill-worker:chunk=2", "drop-conn:every=50,after=10",
             "corrupt-checkpoint:db=3"],
            state_dir=str(tmp_path),
        )
        assert plan.worker_kill.scope == "chunk"
        assert plan.worker_kill.target == 2
        assert plan.connection_drop.every == 50
        assert plan.connection_drop.sever_after() == 10
        assert plan.checkpoint_corrupt.db == 3
        assert len(plan.specs) == 3

    def test_from_specs_builds_the_serving_injectors(self, tmp_path):
        plan = FaultPlan.from_specs(
            ["crash-shard:shard=0,after=5", "latency:ms=100",
             "blackhole:after=20"],
            state_dir=str(tmp_path),
        )
        assert plan.shard_crash.after == 5
        assert plan.shard_crash.shard == 0
        assert plan.latency.ms == 100
        assert plan.blackhole.after == 20

    def test_state_dir_is_shared_across_plans(self, tmp_path):
        """Two plans over one state dir see each other's fired flags —
        the property a killed-and-resumed CLI run relies on."""
        first = FaultPlan.from_specs(["kill-worker:chunk=1"],
                                     state_dir=str(tmp_path))
        assert first.worker_kill.should_fire("chunk", 1)
        second = FaultPlan.from_specs(["kill-worker:chunk=1"],
                                      state_dir=str(tmp_path))
        assert not second.worker_kill.should_fire("chunk", 1)

    def test_default_state_dir_is_created(self):
        plan = FaultPlan.from_specs(["kill-worker:threshold=1"])
        assert plan.worker_kill is not None
        import os

        assert os.path.isdir(os.path.dirname(plan.worker_kill.flag_path))
