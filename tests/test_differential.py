"""Cross-backend differential suite.

Every solver backend in the repo claims to compute the *same* databases:
the threshold solver (both predecessor modes), the bounds-iteration
solver, the simulated cluster (any processor count, combining on or
off), and the real-multiprocessing backend.  This suite pins that claim
down as a bit-identity over three games — awari (the paper's game),
kalah (a different capture rule set), and a seeded synthetic game with
no helpful structure at all — so every future optimisation PR has a
single suite that proves it changed *when* things are computed, never
*what*.
"""

import numpy as np
import pytest

from repro.core.bounds import BoundsSolver
from repro.core.multiproc import MultiprocessSolver
from repro.core.parallel.driver import ParallelConfig, ParallelSolver
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame
from repro.games.synthetic import SyntheticCaptureGame

#: (name, game factory, target database id) — awari capped at 5 stones.
GAMES = [
    ("awari", AwariCaptureGame, 5),
    ("kalah", KalahCaptureGame, 4),
    ("synthetic", lambda: SyntheticCaptureGame(levels=5, max_size=50, seed=7), 4),
]
GAME_IDS = [name for name, _, _ in GAMES]


def _parallel(n_procs, combining_capacity):
    def solve(game, target):
        config = ParallelConfig(
            n_procs=n_procs,
            combining_capacity=combining_capacity,
            predecessor_mode="unmove-cached",
        )
        values, _ = ParallelSolver(game, config).solve(target)
        return values

    return solve


BACKENDS = {
    "sequential-unmove": lambda game, target: SequentialSolver(
        game, predecessor_mode="unmove"
    ).solve(target)[0],
    "bounds": lambda game, target: BoundsSolver(game).solve(target)[0],
    "parallel-p1": _parallel(1, 256),
    "parallel-p4-combining": _parallel(4, 256),
    "parallel-p4-no-combining": _parallel(4, 1),
    "multiproc-p4": lambda game, target: MultiprocessSolver(
        game, workers=4
    ).solve(target),
}


@pytest.fixture(scope="module", params=GAMES, ids=GAME_IDS)
def workload(request):
    """(game, target, reference values) — the csr sequential solver is
    the reference every other backend must reproduce bit-for-bit."""
    name, factory, target = request.param
    game = factory()
    reference, _ = SequentialSolver(game, predecessor_mode="csr").solve(target)
    return game, target, reference


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
def test_backend_bit_identical(workload, backend):
    game, target, reference = workload
    values = BACKENDS[backend](game, target)
    assert sorted(values) == sorted(reference)
    for db_id in reference:
        got, want = values[db_id], reference[db_id]
        assert got.dtype == want.dtype, f"db {db_id}: dtype differs"
        np.testing.assert_array_equal(
            got, want, err_msg=f"{backend} diverges on db {db_id}"
        )


def test_reference_is_nontrivial(workload):
    """Guard against a vacuous pass: the top database must contain all
    three outcomes (win/draw/loss) somewhere in the tested range."""
    _, _, reference = workload
    merged = np.concatenate([reference[db_id] for db_id in reference])
    assert (merged > 0).any()
    assert (merged < 0).any()
    assert (merged == 0).any()
