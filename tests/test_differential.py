"""Cross-backend differential suite.

Every solver backend in the repo claims to compute the *same* databases:
the threshold solver (both predecessor modes), the bounds-iteration
solver, the simulated cluster (any processor count, combining on or
off), and the real-multiprocessing backend.  This suite pins that claim
down as a bit-identity over three games — awari (the paper's game),
kalah (a different capture rule set), and a seeded synthetic game with
no helpful structure at all — so every future optimisation PR has a
single suite that proves it changed *when* things are computed, never
*what*.
"""

import numpy as np
import pytest

from repro.core.bounds import BoundsSolver
from repro.core.multiproc import MultiprocessSolver
from repro.core.parallel.driver import ParallelConfig, ParallelSolver
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame
from repro.games.synthetic import SyntheticCaptureGame

#: (name, game factory, target database id) — awari capped at 5 stones.
GAMES = [
    ("awari", AwariCaptureGame, 5),
    ("kalah", KalahCaptureGame, 4),
    ("synthetic", lambda: SyntheticCaptureGame(levels=5, max_size=50, seed=7), 4),
]
GAME_IDS = [name for name, _, _ in GAMES]


def _parallel(n_procs, combining_capacity):
    def solve(game, target):
        config = ParallelConfig(
            n_procs=n_procs,
            combining_capacity=combining_capacity,
            predecessor_mode="unmove-cached",
        )
        values, _ = ParallelSolver(game, config).solve(target)
        return values

    return solve


BACKENDS = {
    "sequential-unmove": lambda game, target: SequentialSolver(
        game, predecessor_mode="unmove"
    ).solve(target)[0],
    "bounds": lambda game, target: BoundsSolver(game).solve(target)[0],
    "parallel-p1": _parallel(1, 256),
    "parallel-p4-combining": _parallel(4, 256),
    "parallel-p4-no-combining": _parallel(4, 1),
    "multiproc-p4": lambda game, target: MultiprocessSolver(
        game, workers=4
    ).solve(target),
    "multiproc-p4-no-shm": lambda game, target: MultiprocessSolver(
        game, workers=4, use_shm=False
    ).solve(target),
}

#: The deterministic work counters both capture-game backends must agree
#: on, name for name (``sequential.X`` == ``multiproc.X``).
WORK_COUNTERS = (
    "positions_scanned",
    "moves_generated",
    "edges_internal",
    "exit_lookups",
    "thresholds",
    "propagation_rounds",
    "parent_notifications",
)


@pytest.fixture(scope="module", params=GAMES, ids=GAME_IDS)
def workload(request):
    """(game, target, reference values) — the csr sequential solver is
    the reference every other backend must reproduce bit-for-bit."""
    name, factory, target = request.param
    game = factory()
    reference, _ = SequentialSolver(game, predecessor_mode="csr").solve(target)
    return game, target, reference


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
def test_backend_bit_identical(workload, backend):
    game, target, reference = workload
    values = BACKENDS[backend](game, target)
    assert sorted(values) == sorted(reference)
    for db_id in reference:
        got, want = values[db_id], reference[db_id]
        assert got.dtype == want.dtype, f"db {db_id}: dtype differs"
        np.testing.assert_array_equal(
            got, want, err_msg=f"{backend} diverges on db {db_id}"
        )


@pytest.mark.parametrize("use_shm", [True, False], ids=["shm", "no-shm"])
def test_work_counters_match_sequential(workload, use_shm):
    """Sequential and multiprocess backends must report identical
    deterministic work counters — the calibrated cost model consumes
    them, so a silent divergence (e.g. ``moves_generated`` counting only
    internal edges, or ``exit_lookups`` never counted) would skew every
    cross-backend comparison built on ``total_ops``."""
    from repro.core.sequential import SequentialSolver as Seq
    from repro.obs import MetricsRegistry

    game, target, _ = workload
    m_seq, m_mp = MetricsRegistry(), MetricsRegistry()
    Seq(game, metrics=m_seq).solve(target)
    MultiprocessSolver(
        game, workers=2, chunk=1 << 11, metrics=m_mp, use_shm=use_shm
    ).solve(target)
    seq = m_seq.snapshot()["counters"]
    mp_ = m_mp.snapshot()["counters"]
    for name in WORK_COUNTERS:
        assert seq[f"sequential.{name}"] == mp_[f"multiproc.{name}"], (
            f"{name} diverges: sequential={seq[f'sequential.{name}']} "
            f"multiproc={mp_[f'multiproc.{name}']}"
        )
    assert seq["sequential.databases"] == mp_["multiproc.databases"]


def test_reference_is_nontrivial(workload):
    """Guard against a vacuous pass: the top database must contain all
    three outcomes (win/draw/loss) somewhere in the tested range."""
    _, _, reference = workload
    merged = np.concatenate([reference[db_id] for db_id in reference])
    assert (merged > 0).any()
    assert (merged < 0).any()
    assert (merged == 0).any()
