"""Scaling-analysis tests (pure model, no simulation)."""

import pytest

from repro.analysis.model import ModelInput
from repro.analysis.scaling import isoefficiency, strong_scaling_limit


def base(**kw):
    defaults = dict(
        size=75_582,
        thresholds=8,
        notifications=784_256,
        n_procs=1,
        waves=53.0,
    )
    defaults.update(kw)
    return ModelInput(**defaults)


class TestStrongScaling:
    def test_curve_shape(self):
        points, limit = strong_scaling_limit(base(), efficiency_floor=0.5)
        assert points[0].procs == 1
        assert points[0].efficiency == pytest.approx(1.0, abs=0.01)
        effs = [p.efficiency for p in points]
        assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
        assert 16 <= limit <= 512

    def test_floor_moves_the_limit(self):
        _, strict = strong_scaling_limit(base(), efficiency_floor=0.9)
        _, loose = strong_scaling_limit(base(), efficiency_floor=0.3)
        assert strict <= loose

    def test_bigger_workload_scales_further(self):
        small = base()
        big = base(size=small.size * 30, notifications=small.notifications * 30)
        _, small_limit = strong_scaling_limit(small)
        _, big_limit = strong_scaling_limit(big)
        assert big_limit >= small_limit


class TestIsoefficiency:
    def test_monotone_in_procs(self):
        iso = isoefficiency(base(), target_efficiency=0.75)
        sizes = [s for _, s in iso]
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))

    def test_higher_target_needs_bigger_problems(self):
        lax = dict(isoefficiency(base(), target_efficiency=0.5))
        strict = dict(isoefficiency(base(), target_efficiency=0.9))
        for p in (32, 64):
            assert strict[p] >= lax[p]

    def test_paper_scale_consistency(self):
        """64 processors at 75% efficiency need a database in the 9+
        stone range — consistent with the paper needing its large
        database to showcase 64 machines."""
        iso = dict(isoefficiency(base(), target_efficiency=0.75))
        assert iso[64] > 75_582  # bigger than the 8-stone bench database
