"""Tests for calibration, the analytic model and report rendering."""

import numpy as np
import pytest

from repro.analysis.calibration import (
    CLUSTER_1995,
    PAPER_HEADLINE,
    extrapolate_ops,
    headline_table,
    second_headline_table,
    sequential_seconds,
)
from repro.analysis.model import ModelInput, predict
from repro.analysis.report import Table, format_bytes, format_seconds, series
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.simnet.costs import DEFAULT_COSTS


@pytest.fixture(scope="module")
def awari_report():
    _, report = SequentialSolver(AwariCaptureGame()).solve(6)
    return report


class TestCalibration:
    def test_sequential_seconds_composition(self):
        c = DEFAULT_COSTS
        t = sequential_seconds(size=100, thresholds=2, notifications=50, costs=c)
        expected = (
            100 * c.scan_position
            + 2 * 100 * (c.threshold_init_position + c.value_assemble_position)
            + 50 * (c.update_generate + c.update_apply)
        )
        assert t == pytest.approx(expected)

    def test_extrapolate_ops_linear_fit(self):
        pred, rate = extrapolate_ops([10, 20], [20, 40], target_size=100,
                                     target_bound=5)
        assert rate == pytest.approx(2.0)
        assert pred == pytest.approx(200.0)

    def test_extrapolate_empty_rejected(self):
        with pytest.raises(ValueError):
            extrapolate_ops([], [], 10, 1)

    def test_headline_lands_near_paper(self, awari_report):
        out = headline_table(awari_report.databases)
        assert out["target_positions"] == 2_496_144
        # The calibrated model must land within 2x of the 40-hour anchor.
        assert 20 < out["sequential_hours_model"] < 80

    def test_second_headline_consistency(self, awari_report):
        out = second_headline_table(awari_report.databases)
        assert out["stones"] == 19
        assert out["memory_mbytes_model"] > 600
        assert 2 < out["sequential_weeks_model"] < 30
        assert 5 < out["parallel_hours_model"] < 60

    def test_cluster_constants(self):
        assert CLUSTER_1995.ethernet.bandwidth_bps == 10e6
        assert PAPER_HEADLINE["speedup"] == 48.0


class TestModel:
    def _base(self, **kw):
        defaults = dict(size=75_582, thresholds=8, notifications=784_256,
                        n_procs=16)
        defaults.update(kw)
        return ModelInput(**defaults)

    def test_sequential_limit(self):
        pred = predict(self._base(n_procs=1))
        assert pred.speedup == pytest.approx(1.0, rel=0.05)

    def test_speedup_monotone_in_procs(self):
        speeds = [predict(self._base(n_procs=p)).speedup for p in (2, 8, 32)]
        assert speeds[0] < speeds[1] < speeds[2]

    def test_combining_beats_naive(self):
        on = predict(self._base(combining_capacity=256))
        off = predict(self._base(combining_capacity=1))
        assert on.t_parallel < off.t_parallel
        assert off.combining_factor == 1.0

    def test_wire_bound_regime(self):
        """With absurdly many processors the wire term dominates."""
        pred = predict(self._base(n_procs=4096, combining_capacity=1))
        assert pred.t_parallel == pytest.approx(pred.t_wire)

    def test_remote_fraction_override(self):
        local_only = predict(self._base(remote_fraction=0.0))
        assert local_only.packets == 0
        assert local_only.t_wire == 0


class TestReport:
    def test_format_seconds_scales(self):
        assert format_seconds(5e-7).endswith("µs")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(5).endswith("s")
        assert format_seconds(300) == "5.0min"
        assert format_seconds(7200) == "2.0h"

    def test_format_bytes_scales(self):
        assert format_bytes(10) == "10.0B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024**3) == "3.0GB"

    def test_table_renders_and_validates(self):
        t = Table("demo", ["a", "b"])
        t.add(1, 2)
        out = t.render()
        assert "# demo" in out and "1" in out
        with pytest.raises(ValueError):
            t.add(1)

    def test_series_renders_bars(self):
        out = series("s", [1, 2], [1.0, 2.0])
        assert out.count("#") > 0
        assert "2.000" in out
