"""Golden regression tests.

The oracle shares the rules code with the solver, so a silent *rules*
change would slip past the oracle-agreement tests.  These snapshots pin
the semantics of today's (oracle-, Bellman- and replay-certified)
databases byte for byte.  If a deliberate rules change makes one fail,
re-derive the golden values and document the change.
"""

import numpy as np

from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.games.kalah import KalahCaptureGame

AWARI_2 = [
    -2, -2, -2, -2, -2, -2, 0, 0, 2, 2, 2, 2, -2, -2, -2, -2, -2, -2, 0,
    0, 2, 2, 2, -2, -2, -2, -2, -2, -2, 0, 0, 2, 2, -2, -2, -2, -2, -2,
    -2, 0, 0, 2, -2, -2, -2, -2, -2, -2, 0, 0, -2, -2, -2, -2, -2, -2, 0,
    -2, -2, -2, -2, 0, 0, -2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
]

AWARI_3_HEAD = [
    -3, -3, -3, -3, -3, -3, 3, 3, 3, 3, 3, -1, -3, -3, -3, -3, -3, 0, 3,
    3, 3, 3, 3, -3, -3, -3, -3, 0, 0, 3, 3, 3, 3, -3, -3, -3, -3, 0, 0, 3,
]

KALAH_2 = [
    -2, -2, -2, -2, -2, -2, 0, 0, 0, 0, 0, 0, -2, -2, -2, -2, -2, 0, 0, 0,
    0, 0, 2, -2, -2, -2, -2, 0, 0, 0, 0, 2, -2, -2, -2, -2, 0, 0, 0, 2,
    -2, 2, -2, -2, 0, 0, 2, -2, 2, -2, -2, 0, 2, -2, 2, -2, 2, 0, 2, 2, 2,
    2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
]

KALAH_3_HEAD = [
    -3, -3, -3, -3, -3, -3, 1, 1, 1, 1, 1, 1, -3, -3, -3, -3, -3, -1, -1,
    -1, -1, -1, 1, -3, -3, -3, -3, -1, -1, -1, -1, 1, -3, -3, -3, -3, -1,
    -1, -1, 1,
]


class TestAwariGolden:
    def test_two_stone_database(self):
        values, _ = SequentialSolver(AwariCaptureGame()).solve(2)
        np.testing.assert_array_equal(values[2], np.array(AWARI_2, np.int16))

    def test_three_stone_head_and_counts(self):
        values, _ = SequentialSolver(AwariCaptureGame()).solve(3)
        np.testing.assert_array_equal(
            values[3][:40], np.array(AWARI_3_HEAD, np.int16)
        )
        v = values[3]
        assert ((v > 0).sum(), (v == 0).sum(), (v < 0).sum()) == (121, 64, 179)

    def test_one_stone_split(self):
        values, _ = SequentialSolver(AwariCaptureGame()).solve(1)
        assert ((values[1] > 0).sum(), (values[1] < 0).sum()) == (5, 7)


class TestKalahGolden:
    def test_two_stone_database(self):
        values, _ = SequentialSolver(KalahCaptureGame()).solve(2)
        np.testing.assert_array_equal(values[2], np.array(KALAH_2, np.int16))

    def test_three_stone_head_and_counts(self):
        values, _ = SequentialSolver(KalahCaptureGame()).solve(3)
        np.testing.assert_array_equal(
            values[3][:40], np.array(KALAH_3_HEAD, np.int16)
        )
        v = values[3]
        assert ((v > 0).sum(), (v == 0).sum(), (v < 0).sum()) == (209, 0, 155)

    def test_kalah_has_no_three_stone_draws_awari_does(self):
        """A structural fingerprint separating the two rule sets: the
        kalah store makes one-stone captures possible, eliminating
        3-stone draws entirely, while awari keeps 64 of them."""
        a, _ = SequentialSolver(AwariCaptureGame()).solve(3)
        k, _ = SequentialSolver(KalahCaptureGame()).solve(3)
        assert (a[3] == 0).sum() == 64
        assert (k[3] == 0).sum() == 0
