"""Worklist-solver behavior: joins, loop convergence, scoped facts.

The gen/kill callbacks here use a deliberately tiny vocabulary —
``acquire()`` / ``release()`` calls on a bare name generate and kill a
``lock`` fact; ``with lock:`` scopes it — so each test isolates one
solver property rather than re-testing the production rules.
"""

import ast

from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.dataflow import (
    may_facts,
    must_held_at,
    reaching_definitions,
)


def cfg_of(source):
    tree = ast.parse(source)
    func = next(n for n in ast.walk(tree)
                if isinstance(n, ast.FunctionDef))
    return func, build_cfg(func)


def stmt_at(func, lineno):
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and node.lineno == lineno:
            return node
    raise AssertionError(f"no statement at line {lineno}")


def own_exprs(stmt):
    """The expressions ``stmt`` itself evaluates — compound statements
    contribute only their headers; their suites are separate CFG
    statements with their own gen/kill."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.For):
        return [stmt.iter]
    if isinstance(stmt, ast.Try):
        return []
    return [child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)]


def lock_gen_kill(stmt):
    """gen/kill over the fact ``"lock"``: ``acquire()`` / ``release()``
    expression calls, ``with lock:`` scoping."""
    if isinstance(stmt, ast.With):
        for item in stmt.items:
            if isinstance(item.context_expr, ast.Name) \
                    and item.context_expr.id == "lock":
                return (), (), ("lock",)
        return (), (), ()
    gen, kill = [], []
    for expr in own_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name):
                if node.func.id == "acquire":
                    gen.append("lock")
                elif node.func.id == "release":
                    kill.append("lock")
    return gen, kill, ()


class TestReachingDefinitions:
    def test_branch_defs_union_at_join(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    use(a)\n"
        )
        block_in, _ = reaching_definitions(cfg)
        join = cfg.block_of(stmt_at(func, 6))
        defs = block_in[join]["a"]
        assert defs == frozenset({stmt_at(func, 3), stmt_at(func, 5)})

    def test_redefinition_kills_along_a_path(self):
        func, cfg = cfg_of(
            "def f():\n"
            "    a = 1\n"
            "    a = 2\n"
            "    use(a)\n"
        )
        _, block_out = reaching_definitions(cfg)
        block = cfg.block_of(stmt_at(func, 4))
        assert block_out[block]["a"] == frozenset({stmt_at(func, 3)})

    def test_loop_carried_defs_reach_the_header(self):
        func, cfg = cfg_of(
            "def f(xs):\n"
            "    a = 0\n"
            "    for x in xs:\n"
            "        a = a + 1\n"
            "    use(a)\n"
        )
        block_in, _ = reaching_definitions(cfg)
        header = cfg.block_of(stmt_at(func, 3))
        # Fixpoint: both the pre-loop and in-loop definitions flow into
        # the header via the back edge.
        assert block_in[header]["a"] == frozenset(
            {stmt_at(func, 2), stmt_at(func, 4)}
        )


class TestMustHeldAt:
    def test_acquire_release_window(self):
        func, cfg = cfg_of(
            "def f():\n"
            "    acquire()\n"
            "    touch()\n"
            "    release()\n"
            "    touch_again()\n"
        )
        facts = must_held_at(cfg, lock_gen_kill)
        assert "lock" in facts[stmt_at(func, 3)]
        assert "lock" not in facts[stmt_at(func, 5)]
        # The acquire statement itself runs before the fact exists.
        assert "lock" not in facts[stmt_at(func, 2)]

    def test_one_unlocked_path_loses_the_fact(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        acquire()\n"
            "    touch()\n"
        )
        facts = must_held_at(cfg, lock_gen_kill)
        # Intersection join: the skip path never acquired.
        assert "lock" not in facts[stmt_at(func, 4)]

    def test_both_paths_acquiring_keeps_the_fact(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        acquire()\n"
            "    else:\n"
            "        acquire()\n"
            "    touch()\n"
        )
        facts = must_held_at(cfg, lock_gen_kill)
        assert "lock" in facts[stmt_at(func, 6)]

    def test_with_scopes_the_fact_lexically(self):
        func, cfg = cfg_of(
            "def f():\n"
            "    with lock:\n"
            "        touch()\n"
            "    after()\n"
        )
        facts = must_held_at(cfg, lock_gen_kill)
        assert "lock" in facts[stmt_at(func, 3)]
        assert "lock" not in facts[stmt_at(func, 4)]

    def test_loop_converges_and_drops_fact_released_inside(self):
        func, cfg = cfg_of(
            "def f(xs):\n"
            "    acquire()\n"
            "    for x in xs:\n"
            "        release()\n"
            "    touch()\n"
        )
        facts = must_held_at(cfg, lock_gen_kill)
        # After >= 1 iteration the lock is gone; the back edge must
        # carry that state into the header's join (fixpoint, not the
        # first-pass state where the lock was still held).
        assert "lock" not in facts[stmt_at(func, 5)]

    def test_loop_that_reacquires_keeps_fact_inside(self):
        func, cfg = cfg_of(
            "def f(xs):\n"
            "    acquire()\n"
            "    for x in xs:\n"
            "        touch()\n"
            "        release()\n"
            "        acquire()\n"
            "    after()\n"
        )
        facts = must_held_at(cfg, lock_gen_kill)
        assert "lock" in facts[stmt_at(func, 4)]
        assert "lock" in facts[stmt_at(func, 7)]

    def test_initial_seed_survives_to_entry_statements(self):
        func, cfg = cfg_of("def f():\n    touch()\n")
        facts = must_held_at(cfg, lock_gen_kill,
                             initial=frozenset({"lock"}))
        assert "lock" in facts[stmt_at(func, 2)]


def resource_gen_kill(stmt):
    """gen the local name on ``name = open_resource()``; kill it on
    ``name.close()``."""
    gen, kill = [], []
    if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call) \
            and isinstance(stmt.value.func, ast.Name) \
            and stmt.value.func.id == "open_resource" \
            and isinstance(stmt.targets[0], ast.Name):
        gen.append(stmt.targets[0].id)
    for expr in own_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "close" \
                    and isinstance(node.func.value, ast.Name):
                kill.append(node.func.value.id)
    return gen, kill, ()


class TestMayFacts:
    def test_union_join_keeps_either_paths_fact(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        r = open_resource()\n"
            "    use()\n"
        )
        facts, exit_facts, raise_facts = may_facts(cfg, resource_gen_kill)
        assert "r" in facts[stmt_at(func, 4)]  # may be open here
        assert exit_facts == frozenset({"r"})
        assert raise_facts == frozenset()

    def test_close_on_every_path_clears_the_exit(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    r = open_resource()\n"
            "    if x:\n"
            "        r.close()\n"
            "    else:\n"
            "        r.close()\n"
        )
        _, exit_facts, raise_facts = may_facts(cfg, resource_gen_kill)
        assert exit_facts == frozenset()
        assert raise_facts == frozenset()

    def test_raise_path_tracked_separately(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    r = open_resource()\n"
            "    if x:\n"
            "        raise ValueError(x)\n"
            "    r.close()\n"
        )
        _, exit_facts, raise_facts = may_facts(cfg, resource_gen_kill)
        assert exit_facts == frozenset()
        assert raise_facts == frozenset({"r"})

    def test_finally_close_covers_the_raise_route(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    r = open_resource()\n"
            "    try:\n"
            "        if x:\n"
            "            raise ValueError(x)\n"
            "    finally:\n"
            "        r.close()\n"
        )
        _, exit_facts, raise_facts = may_facts(cfg, resource_gen_kill)
        assert exit_facts == frozenset()
        assert raise_facts == frozenset()

    def test_loop_open_close_converges(self):
        func, cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        r = open_resource()\n"
            "        r.close()\n"
            "    done()\n"
        )
        _, exit_facts, raise_facts = may_facts(cfg, resource_gen_kill)
        assert exit_facts == frozenset()
