"""Framework mechanics: suppression parsing, walking, report shape.

Suppression-comment *text* is assembled at runtime (``MARK``) so that
the checker, which scans this test file too, never mistakes a test
string for a real suppression attempt.
"""

from pathlib import Path

import pytest

from repro.staticcheck import Project, all_checkers, check_source, run_paths

ROOT = Path(__file__).resolve().parents[2]
HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"

#: The suppression marker, assembled at runtime so the scanner never
#: sees it spelled out in this file.
MARK = "# static" "check:"


def _check(source, rules=("RA001",)):
    checkers = {rule: all_checkers()[rule]() for rule in rules}
    return check_source(source, "fixture.py", Project(root=ROOT), checkers,
                        enforce_scope=False)


class TestSuppressions:
    def test_justified_line_suppression(self):
        report = _check(
            f"path.write_text(x)  {MARK} disable=RA001 -- scratch file\n"
        )
        assert report.findings == []
        [finding] = report.suppressed
        assert finding.rule == "RA001"
        assert finding.suppressed
        assert finding.justification == "scratch file"

    def test_em_dash_justification(self):
        report = _check(
            f"path.write_text(x)  {MARK} disable=RA001 — scratch file\n"
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_unjustified_suppression_does_not_suppress(self):
        report = _check(f"path.write_text(x)  {MARK} disable=RA001\n")
        assert sorted(f.rule for f in report.findings) == ["RA000", "RA001"]
        assert report.suppressed == []

    def test_unknown_rule_is_reported(self):
        report = _check(
            f"path.write_text(x)  {MARK} disable=RA999 -- because\n"
        )
        assert sorted(f.rule for f in report.findings) == ["RA000", "RA001"]
        assert report.suppressed == []

    def test_malformed_comment_is_reported(self):
        report = _check(f"x = 1  {MARK} ignore=RA001 -- wrong verb\n")
        [finding] = report.findings
        assert finding.rule == "RA000"
        assert "malformed" in finding.message

    def test_disable_file_suppresses_everything(self):
        source = (
            f"{MARK} disable-file=RA001 -- fixture writes scratch files\n"
            "def save(path, a, b):\n"
            "    path.write_text(a)\n"
            "    path.write_bytes(b)\n"
        )
        report = _check(source)
        assert report.findings == []
        assert [f.line for f in report.suppressed] == [3, 4]

    def test_multiple_rules_in_one_comment(self):
        report = _check(
            f"path.write_text(x)  {MARK} disable=RA001,RA002 -- scratch\n",
            rules=("RA001", "RA002"),
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_ra000_cannot_be_suppressed(self):
        source = (
            f"{MARK} disable-file=RA000 -- nice try\n"
            f"x = 1  {MARK} ignore=RA001 -- still malformed\n"
        )
        report = _check(source)
        assert [f.rule for f in report.findings] == ["RA000"]
        assert report.findings[0].line == 2

    def test_syntax_error_is_an_ra000_finding(self):
        report = _check("def broken(:\n")
        [finding] = report.findings
        assert finding.rule == "RA000"
        assert "does not parse" in finding.message


class TestWalking:
    def test_fixture_dirs_are_skipped_on_walks(self):
        report = run_paths([str(HERE)], root=ROOT)
        assert all("fixtures" not in f.path for f in report.findings)
        assert all("fixtures" not in f.path for f in report.suppressed)

    def test_direct_fixture_path_is_still_checked(self):
        report = run_paths([str(FIXTURES / "ra002_forksafe.py")], root=ROOT)
        assert {f.rule for f in report.findings} == {"RA002"}

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(ValueError, match="RA999"):
            run_paths([str(FIXTURES / "clean.py")], root=ROOT,
                      rules=["RA999"])


class TestReport:
    def test_exit_code_and_by_rule(self):
        report = run_paths([str(FIXTURES / "ra001_writes.py")], root=ROOT,
                           rules=["RA001"], enforce_scope=False)
        assert report.exit_code == 1
        assert report.by_rule() == {"RA001": 4}
        assert report.files_scanned == 1

    def test_clean_report_exits_zero(self):
        report = run_paths([str(FIXTURES / "clean.py")], root=ROOT)
        assert report.exit_code == 0
        assert report.findings == []
