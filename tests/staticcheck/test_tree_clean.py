"""The repo must pass its own gate — the same check the CI
``staticcheck`` job runs, enforced from inside the test suite so a
plain ``pytest`` catches violations too."""

from pathlib import Path

import pytest

from repro.staticcheck import run_paths

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def report():
    return run_paths(["src", "scripts", "tests"], root=ROOT)


def test_tree_is_staticcheck_clean(report):
    rendered = "\n".join(
        f"{f.location()} {f.rule} {f.message}" for f in report.findings
    )
    assert report.findings == [], f"staticcheck findings:\n{rendered}"
    assert report.files_scanned > 100  # the walk really walked


def test_suppression_budget(report):
    assert len(report.suppressed) <= 5
    for finding in report.suppressed:
        assert finding.justification  # enforced by the framework too
