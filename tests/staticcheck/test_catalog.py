"""The generated metric-name catalog: freshness, uniqueness, doc drift."""

from pathlib import Path

from repro.obs import names
from repro.staticcheck import catalog

ROOT = Path(__file__).resolve().parents[2]


class TestCatalog:
    def test_committed_names_module_is_fresh(self):
        assert catalog.names_path().read_text() == catalog.generate_source()

    def test_observability_doc_has_no_drift(self):
        doc = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
        assert catalog.doc_drift(doc) == []

    def test_catalog_names_are_unique_and_exported(self):
        declared = [entry.name for entry in catalog.CATALOG]
        assert len(declared) == len(set(declared))
        assert set(declared) == set(names.NAMES)

    def test_dynamic_families_are_dotted_prefixes(self):
        for entry in catalog.DYNAMIC:
            assert entry.prefix.endswith(".")
            for example in entry.examples:
                assert example.startswith(entry.prefix)
        assert tuple(e.prefix for e in catalog.DYNAMIC) == \
            names.DYNAMIC_PREFIXES

    def test_debug_counter_is_declared(self):
        # The shm race detector's one observable counter must stay
        # cataloged, or RA003 would reject the guarded inc call.
        assert "multiproc.shm_claims_checked" in names.NAMES
