"""RA003 fixture: metric names the catalog does not know."""


def report(metrics, tag):
    metrics.inc("multiproc.positions_scanned_typo")
    metrics.set_gauge("serve.cache.warmth", 1.0)
    metrics.inc(f"mystery.{tag}")
    name = "multiproc.thresholds"
    metrics.inc(name)
