"""The pre-fix ``BlockCache`` in miniature — RA007 regression fixture.

This is the shape the serving cache had before it grew its ``RLock``:
LRU reorder, hit/miss counters and byte gauges all mutated with no
lock, exactly what connection threads then raced on.  Only the
``# guarded-by:`` declarations are new — they state the discipline the
code *should* have had, and RA007 must light up every method that
breaks it.  The thread-safe rewrite in ``src/repro/serve/cache.py`` is
the same class with the annotations *kept* and the findings fixed.

Checked as if it lived at ``src/repro/fixture.py``; never imported.
"""

import threading
from collections import OrderedDict


class PrefixBlockCache:
    def __init__(self, budget_bytes):
        self.budget_bytes = int(budget_bytes)
        self._lock = threading.RLock()
        self._blocks = OrderedDict()  # guarded-by: self._lock
        self.hits = 0  # guarded-by: self._lock
        self.misses = 0  # guarded-by: self._lock
        self.evictions = 0  # guarded-by: self._lock
        self.resident_bytes = 0  # guarded-by: self._lock

    def get(self, key, loader):
        entry = self._blocks.get(key)  # RA007
        if entry is not None:
            self._blocks.move_to_end(key)  # RA007
            self.hits += 1  # RA007
            return entry
        self.misses += 1  # RA007
        block = loader()
        self.put(key, block)
        return block

    def put(self, key, block):
        old = self._blocks.pop(key, None)  # RA007
        if old is not None:
            self.resident_bytes -= int(old.nbytes)  # RA007
        self._blocks[key] = block  # RA007
        self.resident_bytes += int(block.nbytes)  # RA007
        self._evict()

    def _evict(self):
        while self.resident_bytes > self.budget_bytes \
                and len(self._blocks) > 1:  # RA007 (both reads)
            _, victim = self._blocks.popitem(last=False)  # RA007
            self.resident_bytes -= int(victim.nbytes)  # RA007
            self.evictions += 1  # RA007

    def stats(self):
        return {
            "hits": self.hits,  # RA007
            "misses": self.misses,  # RA007
            "evictions": self.evictions,  # RA007
            "resident_bytes": self.resident_bytes,  # RA007
        }
