"""Deliberate RA010 violations — fixture for the resource-lifetime rule.

Checked as if it lived at ``src/repro/fixture.py``; never imported.
"""

import mmap
import socket
from multiprocessing.shared_memory import SharedMemory


def forgets_to_close(name):
    shm = SharedMemory(name=name)  # RA010: never closed on any path
    print("attached")


def early_return_leak(path, key):
    handle = open(path, "rb")  # RA010: leaks on the early return
    if key not in path:
        return None
    data = handle.read()
    handle.close()
    return data


def raise_path_leak(addr, payload):
    sock = socket.create_connection(addr, timeout=1.0)  # RA010
    if not payload:
        raise ValueError("empty payload")  # sock still open here
    sock.sendall(payload)
    sock.close()


def closes_in_finally(fileno):
    # Fine: the finally covers the normal and the raising route.
    view = mmap.mmap(fileno, 0)
    try:
        if view[0] == 0:
            raise ValueError("empty mapping")
        return bytes(view[:16])
    finally:
        view.close()


def with_managed(path):
    # Fine: the context manager owns the close.
    with open(path, "rb") as handle:
        return handle.read()


def ownership_handoff(addr, registry):
    # Fine: the registry owns the socket now (intraprocedural stop).
    sock = socket.create_connection(addr, timeout=1.0)
    registry.adopt(sock)
