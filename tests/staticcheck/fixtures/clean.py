"""Clean fixture: nothing for any rule to find."""
from pathlib import Path

from repro.obs import names
from repro.resilience.checkpoint import atomic_write_text


def persist(path: Path, text: str, metrics) -> None:
    atomic_write_text(path, text)
    metrics.inc(names.PIPELINE_DATABASES_SOLVED)


def read_back(path: Path) -> str:
    with open(path) as handle:
        return handle.read()
