"""Deliberate RA009 violations — fixture for the orphaned-coroutine rule.

Checked as if it lived at ``src/repro/fixture.py``; never imported.
"""

import asyncio


async def worker(queue):
    await queue.get()


async def launches(queue):
    worker(queue)  # RA009: coroutine object built, never awaited
    asyncio.create_task(worker(queue))  # RA009: task handle dropped
    task = asyncio.create_task(worker(queue))  # fine: handle kept
    await task


class Server:
    async def drain(self):
        pass

    def sync_close(self):
        pass

    async def run(self):
        self.drain()  # RA009: async method called without await
        await self.drain()  # fine
        self.sync_close()  # fine: plain sync method


class Other:
    def drain(self):
        pass

    def run(self):
        # Fine: *this* class's drain is sync — no cross-class matching.
        self.drain()
