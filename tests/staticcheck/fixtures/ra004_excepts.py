"""RA004 fixture: handlers that swallow what they catch."""


def fetch(thing):
    try:
        return thing()
    except Exception:
        return None


def ignore(thing):
    try:
        thing()
    except (ValueError, BaseException):
        pass
