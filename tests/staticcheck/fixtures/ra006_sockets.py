"""Deliberate RA006 violations — fixture for the socket-timeout rule.

Checked as if it lived at ``src/repro/fixture.py``; never imported.
"""

import socket


def unbounded_connect(host, port):
    return socket.create_connection((host, port))  # RA006


def none_timeout_connect(host, port):
    return socket.create_connection((host, port), timeout=None)  # RA006


def none_timeout_positional(host, port):
    return socket.create_connection((host, port), None)  # RA006


def fully_blocking(sock):
    sock.settimeout(None)  # RA006


def process_wide(sock):
    socket.setdefaulttimeout(None)  # RA006


def bounded_connect(host, port, timeout):
    # Fine: explicit bound, even as a variable.
    return socket.create_connection((host, port), timeout=timeout)


def bounded_positional(host, port):
    # Fine: positional timeout.
    return socket.create_connection((host, port), 5.0)


def bounded_settimeout(sock):
    # Fine: finite per-socket timeout.
    sock.settimeout(0.2)
