"""Deliberate RA008 violations — fixture for the blocking-call rule.

Checked as if it lived at ``src/repro/fixture.py``; never imported.
"""

import asyncio
import time
import zlib


async def sleepy():
    time.sleep(0.1)  # RA008
    await asyncio.sleep(0.1)  # fine: the async equivalent


async def compresses(payload):
    return zlib.compress(payload)  # RA008: CPU-bound on the loop


async def reads(path):
    return open(path).read()  # RA008: blocking file IO


async def serves(listener):
    conn, _ = listener.accept()  # RA008: blocking socket op
    data = conn.recv(4096)  # RA008
    await asyncio.to_thread(conn.sendall, data)  # fine: reference only


async def offloads(payload):
    def pack():
        # Fine: a sync helper shipped to an executor is its own scope.
        time.sleep(0.0)
        return zlib.compress(payload)

    return await asyncio.to_thread(pack)
