"""RA001 fixture: every persistent write here is non-atomic."""
import json

import numpy as np


def save_report(path, payload):
    with open(path, "w") as fh:
        json.dump(payload, fh)
    np.save(path, payload["array"])
    path.write_text("done")
