"""RA002 fixture: every fan-out here is fork-hostile."""
import threading

from repro.resilience import SupervisedPool

_LOCK = threading.Lock()


def _locked_worker(task):
    with _LOCK:
        return task


def run(tasks, handler):
    pool = SupervisedPool(lambda t: t, max_workers=2)
    pool.submit(handler.on_task, 0)
    with SupervisedPool(_locked_worker, max_workers=2) as workers:
        return workers.map(tasks)


def outer(tasks):
    def inner(task):
        return task

    with SupervisedPool(inner, max_workers=2) as workers:
        return workers.map(tasks)
