"""Deliberate RA011 drift — fixture for the frame-schema rule.

Checked as if it were ``src/repro/aserve/frames.py``; never imported.
The real schema (``src/repro/aserve/schema.py``) is the reference:
most constants below copy it faithfully, and the four seeded edits are
exactly the one-sided changes the rule exists to catch.
"""

import struct

import numpy as np

LENGTH = struct.Struct("<I")  # RA011: schema says ">I" (endianness flip)
HEADER = struct.Struct(">BBHI")
TRAILER = struct.Struct(">Q")  # RA011: not declared in the schema

FLAG_ERROR = 0x0001
FLAG_OVERLOADED = 0x0002

OP_PING = 9  # RA011: schema says 1
OP_INFO = 2
OP_PROBE = 3
OP_PROBE_MANY = 4
OP_DEPTH_OF = 5
OP_BEST_MOVE = 6
OP_STATS = 7

RECORD_DTYPE = np.dtype([("db", "<u2"), ("index", "<i8")])
VALUE_DTYPE = np.dtype("<i4")  # RA011: schema says "<i2"
MOVE_DTYPE = np.dtype([("pit", "<u1"), ("captures", "<i2"), ("value", "<i2")])

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I16 = struct.Struct("<h")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_BEST = struct.Struct("<hH")
