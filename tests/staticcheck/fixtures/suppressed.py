"""Suppression fixture: justified, unjustified, unknown-rule, malformed."""


def save(path, data):
    path.write_text(data)  # staticcheck: disable=RA001 -- fixture: a justified suppression
    path.write_bytes(data)  # staticcheck: disable=RA001
    path.write_text(data)  # staticcheck: disable=RA999 -- there is no such rule
    path.write_text(data)  # staticcheck: ignore=RA001 -- wrong verb
