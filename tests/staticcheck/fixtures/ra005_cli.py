"""RA005 fixture: a flag no document mentions."""
import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--fixture-only-flag", action="store_true")
    parser.add_argument("paths", nargs="*")
    return parser
