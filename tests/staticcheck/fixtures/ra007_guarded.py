"""Deliberate RA007 violations — fixture for the lock-discipline rule.

Checked as if it lived at ``src/repro/fixture.py``; never imported.
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: self._lock
        self.total = 0  # guarded-by: self._lock

    def bump(self):
        self.count += 1  # RA007: no lock anywhere

    def bump_locked(self):
        # Fine: the with suite holds the lock.
        with self._lock:
            self.count += 1

    def one_unlocked_arm(self, fast):
        if fast:
            self.count += 1  # RA007: this arm skips the lock
        else:
            with self._lock:
                self.count += 1

    def acquire_release(self):
        self._lock.acquire()
        self.count += 1  # fine: explicitly held here
        self._lock.release()
        return self.count  # RA007: released two lines up

    def early_return(self, flag):
        self._lock.acquire()
        if flag:
            self._lock.release()
            return self.total  # RA007: read after the release
        value = self.count  # fine: still held on the fall-through path
        self._lock.release()
        return value

    def _evict(self):  # holds-lock: self._lock
        # Fine: the contract seeds the fact at entry.
        self.count -= 1

    def caller_without_lock(self):
        self._evict()  # RA007: holds-lock contract not honored

    def caller_with_lock(self):
        # Fine: contract call under the lock.
        with self._lock:
            self._evict()
