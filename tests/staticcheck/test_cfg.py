"""CFG construction over every statement shape the rules rely on.

Each test builds the graph of a small function and asserts the edges
that carry analysis weight: which routes reach the exit, where
``raise`` lands, how ``finally`` is duplicated onto early-leave paths.
"""

import ast

import pytest

from repro.staticcheck.cfg import build_cfg, function_cfgs


def cfg_of(source):
    """The CFG of the single function defined in ``source``."""
    tree = ast.parse(source)
    func = next(n for n in ast.walk(tree)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)))
    return func, build_cfg(func)


def stmt_at(func, lineno):
    """The statement node starting at ``lineno`` (identity handle)."""
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and node.lineno == lineno:
            return node
    raise AssertionError(f"no statement at line {lineno}")


def successors_of(cfg, stmt):
    block = cfg.block_of(stmt)
    assert block is not None, "statement not placed in any block"
    return block.successors


def reaches(cfg, block, target) -> bool:
    """True when ``target`` is reachable from ``block``."""
    seen, stack = set(), [block]
    while stack:
        current = stack.pop()
        if current is target:
            return True
        if current in seen:
            continue
        seen.add(current)
        stack.extend(current.successors)
    return False


class TestLinearAndBranches:
    def test_straight_line_reaches_exit(self):
        func, cfg = cfg_of("def f():\n    a = 1\n    b = 2\n")
        assert cfg.block_of(stmt_at(func, 2)) is cfg.block_of(stmt_at(func, 3))
        assert cfg.exit in cfg.reachable()
        assert cfg.raise_exit not in cfg.reachable()

    def test_if_without_else_has_skip_edge(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    b = 2\n"
        )
        test_block = cfg.block_of(stmt_at(func, 2))
        join = cfg.block_of(stmt_at(func, 4))
        then = cfg.block_of(stmt_at(func, 3))
        # Both the then-arm and the direct skip edge reach the join.
        assert join in test_block.successors
        assert then in test_block.successors
        assert join in then.successors

    def test_if_else_joins(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    b = a\n"
        )
        join = cfg.block_of(stmt_at(func, 6))
        assert set(join.predecessors) == {
            cfg.block_of(stmt_at(func, 3)),
            cfg.block_of(stmt_at(func, 5)),
        }

    def test_return_leaves_no_fallthrough(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"
        )
        ret1 = cfg.block_of(stmt_at(func, 3))
        assert ret1.successors == [cfg.exit]
        # The second return is on the skip path, not after the first.
        assert cfg.block_of(stmt_at(func, 4)) not in ret1.successors

    def test_code_after_return_is_unreachable(self):
        func, cfg = cfg_of("def f():\n    return 1\n    x = 2\n")
        dead = cfg.block_of(stmt_at(func, 3))
        assert dead is not None  # still placed, block_of finds it
        assert dead not in cfg.reachable()


class TestLoops:
    def test_while_has_back_edge_and_exit(self):
        func, cfg = cfg_of(
            "def f(n):\n"
            "    while n:\n"
            "        n -= 1\n"
            "    done = 1\n"
        )
        header = cfg.block_of(stmt_at(func, 2))
        body = cfg.block_of(stmt_at(func, 3))
        after = cfg.block_of(stmt_at(func, 4))
        assert header in body.successors  # back edge
        assert after in header.successors or any(
            after in s.successors for s in header.successors
        )
        assert cfg.exit in cfg.reachable()

    def test_while_true_without_break_never_exits(self):
        func, cfg = cfg_of("def f():\n    while True:\n        pass\n")
        assert cfg.exit not in cfg.reachable()

    def test_break_edges_to_after_continue_to_header(self):
        func, cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            break\n"
            "        continue\n"
            "    done = 1\n"
        )
        header = cfg.block_of(stmt_at(func, 2))
        after = cfg.block_of(stmt_at(func, 6))
        brk = cfg.block_of(stmt_at(func, 4))
        cont = cfg.block_of(stmt_at(func, 5))
        assert after in brk.successors
        assert header in cont.successors

    def test_for_else_runs_on_normal_exit(self):
        func, cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        y = x\n"
            "    else:\n"
            "        y = 0\n"
            "    z = y\n"
        )
        header = cfg.block_of(stmt_at(func, 2))
        orelse = cfg.block_of(stmt_at(func, 5))
        assert orelse in header.successors
        assert cfg.block_of(stmt_at(func, 6)) in orelse.successors


class TestRaiseAndTry:
    def test_uncaught_raise_reaches_raise_exit(self):
        func, cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        raise ValueError(x)\n"
            "    return x\n"
        )
        raiser = cfg.block_of(stmt_at(func, 3))
        assert raiser.successors == [cfg.raise_exit]
        assert cfg.raise_exit in cfg.reachable()

    def test_try_body_statements_edge_to_handler(self):
        func, cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        a = 1\n"
            "        b = 2\n"
            "    except ValueError:\n"
            "        c = 3\n"
            "    d = 4\n"
        )
        handler = cfg.block_of(stmt_at(func, 6))
        # Every try-body statement boundary may divert to the handler.
        for lineno in (3, 4):
            assert handler in successors_of(cfg, stmt_at(func, lineno))
        # Handler and fall-through both reach the join.
        join = cfg.block_of(stmt_at(func, 7))
        assert reaches(cfg, handler, join)
        assert reaches(cfg, cfg.block_of(stmt_at(func, 4)), join)

    def test_caught_raise_goes_to_handler_not_raise_exit(self):
        func, cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        raise ValueError()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        raiser = cfg.block_of(stmt_at(func, 3))
        assert cfg.raise_exit not in raiser.successors
        assert cfg.raise_exit not in cfg.reachable()

    def test_else_runs_only_after_normal_body(self):
        func, cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        a = 1\n"
            "    except ValueError:\n"
            "        b = 2\n"
            "    else:\n"
            "        c = 3\n"
        )
        orelse = cfg.block_of(stmt_at(func, 7))
        handler = cfg.block_of(stmt_at(func, 5))
        assert not reaches(cfg, handler, orelse)
        assert reaches(cfg, cfg.block_of(stmt_at(func, 3)), orelse)

    def test_finally_on_both_routes(self):
        func, cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        a = 1\n"
            "    finally:\n"
            "        b = 2\n"
            "    c = 3\n"
        )
        # The finally suite is duplicated: fall-through route plus the
        # exception-then-reraise route, which ends at raise_exit.
        finally_copies = [
            block for block in cfg.blocks
            if any(isinstance(s, ast.stmt) and s.lineno == 5
                   for s in block.statements)
        ]
        assert len(finally_copies) >= 2
        assert any(reaches(cfg, b, cfg.raise_exit) for b in finally_copies)
        assert any(reaches(cfg, b, cfg.block_of(stmt_at(func, 6)))
                   for b in finally_copies)

    def test_return_routes_through_finally(self):
        func, cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        cleanup = 1\n"
        )
        ret = cfg.block_of(stmt_at(func, 3))
        # Not a direct exit edge: the pending finally runs first.
        assert cfg.exit not in ret.successors
        leave = [s for s in ret.successors if s.kind == "finally-leave"]
        assert leave, "return did not enter the pending finally"
        assert reaches(cfg, leave[0], cfg.exit)

    def test_break_routes_through_finally(self):
        func, cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            break\n"
            "        finally:\n"
            "            cleanup = 1\n"
            "    done = 1\n"
        )
        brk = cfg.block_of(stmt_at(func, 4))
        after = cfg.block_of(stmt_at(func, 7))
        assert after not in brk.successors
        leave = [s for s in brk.successors if s.kind == "finally-leave"]
        assert leave and reaches(cfg, leave[0], after)


class TestWithAndMisc:
    def test_with_heads_its_own_block(self):
        func, cfg = cfg_of(
            "def f(lock):\n"
            "    with lock:\n"
            "        a = 1\n"
            "    b = 2\n"
        )
        with_block = cfg.block_of(stmt_at(func, 2))
        assert with_block.kind == "with-entry"
        body = cfg.block_of(stmt_at(func, 3))
        assert reaches(cfg, with_block, body)
        assert any(s.kind == "with-exit" for s in body.successors)

    def test_assert_falls_through_and_may_raise(self):
        func, cfg = cfg_of("def f(x):\n    assert x\n    return x\n")
        asserter = cfg.block_of(stmt_at(func, 2))
        assert cfg.raise_exit in asserter.successors
        assert reaches(cfg, asserter, cfg.exit)

    def test_module_cfg_and_type_errors(self):
        tree = ast.parse("a = 1\nb = 2\n")
        cfg = build_cfg(tree)
        assert cfg.exit in cfg.reachable()
        with pytest.raises(TypeError):
            build_cfg(tree.body[0])

    def test_function_cfgs_covers_nested_and_methods(self):
        tree = ast.parse(
            "class C:\n"
            "    def m(self):\n"
            "        def inner():\n"
            "            pass\n"
            "        return inner\n"
            "async def g():\n"
            "    pass\n"
        )
        names = {func.name for func, _ in function_cfgs(tree)}
        assert names == {"m", "inner", "g"}
