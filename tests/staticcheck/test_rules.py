"""Exact rule-id and line-number assertions over the seeded fixtures.

Each ``fixtures/raNNN_*.py`` file carries known violations at known
lines; the fixture directory is skipped by tree walks, so the seeds
never fail the CI gate — only these tests see them (by naming the
files directly, with ``enforce_scope=False`` where a rule's normal
scope is ``src/repro/``).
"""

from pathlib import Path

from repro.staticcheck import run_paths

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

SEEDED = (
    "ra001_writes.py",
    "ra002_forksafe.py",
    "ra003_metrics.py",
    "ra004_excepts.py",
    "ra005_cli.py",
    "ra006_sockets.py",
    "ra007_guarded.py",
    "ra008_blocking.py",
    "ra009_orphans.py",
    "ra010_resources.py",
    "ra011_frames.py",
)


def _findings(name, rules):
    report = run_paths([str(FIXTURES / name)], root=ROOT, rules=rules,
                       enforce_scope=False)
    return [(f.rule, f.line) for f in report.findings]


class TestSeededViolations:
    def test_ra001_non_atomic_writes(self):
        assert _findings("ra001_writes.py", ["RA001"]) == [
            ("RA001", 8),   # open(path, "w")
            ("RA001", 9),   # json.dump
            ("RA001", 10),  # np.save
            ("RA001", 11),  # Path.write_text
        ]

    def test_ra002_fork_hostile_callables(self):
        assert _findings("ra002_forksafe.py", ["RA002"]) == [
            ("RA002", 15),  # lambda
            ("RA002", 16),  # bound method via .submit
            ("RA002", 17),  # module fn reading a Lock() global
            ("RA002", 25),  # nested function
        ]

    def test_ra003_uncataloged_metric_names(self):
        assert _findings("ra003_metrics.py", ["RA003"]) == [
            ("RA003", 5),  # misspelled literal
            ("RA003", 6),  # unknown scoped literal
            ("RA003", 7),  # undeclared dynamic family
            ("RA003", 9),  # unresolvable variable
        ]

    def test_ra004_swallowed_exceptions(self):
        assert _findings("ra004_excepts.py", ["RA004"]) == [
            ("RA004", 7),   # except Exception: return None
            ("RA004", 14),  # tuple containing BaseException, pass-only
        ]

    def test_ra005_undocumented_flag(self):
        assert _findings("ra005_cli.py", ["RA005"]) == [
            ("RA005", 7),  # the undocumented flag; positional skipped
        ]

    def test_ra006_unbounded_socket_calls(self):
        assert _findings("ra006_sockets.py", ["RA006"]) == [
            ("RA006", 10),  # create_connection with no timeout at all
            ("RA006", 14),  # timeout=None keyword
            ("RA006", 18),  # None as the positional timeout
            ("RA006", 22),  # settimeout(None)
            ("RA006", 26),  # setdefaulttimeout(None)
        ]

    def test_ra007_lock_discipline(self):
        assert _findings("ra007_guarded.py", ["RA007"]) == [
            ("RA007", 16),  # bump: no lock anywhere
            ("RA007", 25),  # the unlocked if arm
            ("RA007", 34),  # read after release()
            ("RA007", 40),  # read after the early-return release
            ("RA007", 50),  # holds-lock contract call without the lock
        ]

    def test_ra008_blocking_in_coroutine(self):
        assert _findings("ra008_blocking.py", ["RA008"]) == [
            ("RA008", 12),  # time.sleep
            ("RA008", 17),  # zlib.compress
            ("RA008", 21),  # builtin open
            ("RA008", 25),  # .accept()
            ("RA008", 26),  # .recv()
        ]

    def test_ra009_orphaned_coroutines(self):
        assert _findings("ra009_orphans.py", ["RA009"]) == [
            ("RA009", 14),  # coroutine never awaited
            ("RA009", 15),  # create_task handle dropped
            ("RA009", 28),  # async method without await
        ]

    def test_ra010_resource_lifetime(self):
        assert _findings("ra010_resources.py", ["RA010"]) == [
            ("RA010", 12),  # SharedMemory never closed
            ("RA010", 17),  # open() leaks on the early return
            ("RA010", 26),  # socket leaks on the raise path
        ]

    def test_ra010_messages_name_the_leaking_route(self):
        report = run_paths([str(FIXTURES / "ra010_resources.py")],
                           root=ROOT, rules=["RA010"],
                           enforce_scope=False)
        by_line = {f.line: f.message for f in report.findings}
        assert "some path" in by_line[12]
        assert "an explicit-raise path" in by_line[26]

    def test_ra011_frame_schema_drift(self):
        assert _findings("ra011_frames.py", ["RA011"]) == [
            ("RA011", 13),  # LENGTH endianness flip
            ("RA011", 15),  # TRAILER not in the schema
            ("RA011", 20),  # OP_PING renumbered
            ("RA011", 29),  # VALUE_DTYPE widened
        ]

    def test_all_rules_fire_with_correct_locations(self):
        """The acceptance gate: one run over every seeded fixture
        reports every rule id at exactly the seeded file:line."""
        report = run_paths([str(FIXTURES / name) for name in SEEDED],
                           root=ROOT, enforce_scope=False)
        found = {(f.rule, Path(f.path).name, f.line)
                 for f in report.findings}
        assert found == {
            ("RA001", "ra001_writes.py", 8),
            ("RA001", "ra001_writes.py", 9),
            ("RA001", "ra001_writes.py", 10),
            ("RA001", "ra001_writes.py", 11),
            ("RA002", "ra002_forksafe.py", 15),
            ("RA002", "ra002_forksafe.py", 16),
            ("RA002", "ra002_forksafe.py", 17),
            ("RA002", "ra002_forksafe.py", 25),
            ("RA003", "ra003_metrics.py", 5),
            ("RA003", "ra003_metrics.py", 6),
            ("RA003", "ra003_metrics.py", 7),
            ("RA003", "ra003_metrics.py", 9),
            ("RA004", "ra004_excepts.py", 7),
            ("RA004", "ra004_excepts.py", 14),
            ("RA005", "ra005_cli.py", 7),
            ("RA006", "ra006_sockets.py", 10),
            ("RA006", "ra006_sockets.py", 14),
            ("RA006", "ra006_sockets.py", 18),
            ("RA006", "ra006_sockets.py", 22),
            ("RA006", "ra006_sockets.py", 26),
            ("RA007", "ra007_guarded.py", 16),
            ("RA007", "ra007_guarded.py", 25),
            ("RA007", "ra007_guarded.py", 34),
            ("RA007", "ra007_guarded.py", 40),
            ("RA007", "ra007_guarded.py", 50),
            ("RA008", "ra008_blocking.py", 12),
            ("RA008", "ra008_blocking.py", 17),
            ("RA008", "ra008_blocking.py", 21),
            ("RA008", "ra008_blocking.py", 25),
            ("RA008", "ra008_blocking.py", 26),
            ("RA009", "ra009_orphans.py", 14),
            ("RA009", "ra009_orphans.py", 15),
            ("RA009", "ra009_orphans.py", 28),
            ("RA010", "ra010_resources.py", 12),
            ("RA010", "ra010_resources.py", 17),
            ("RA010", "ra010_resources.py", 26),
            ("RA011", "ra011_frames.py", 13),
            ("RA011", "ra011_frames.py", 15),
            ("RA011", "ra011_frames.py", 20),
            ("RA011", "ra011_frames.py", 29),
        }


class TestCleanAndSuppressed:
    def test_clean_fixture_has_no_findings(self):
        report = run_paths([str(FIXTURES / "clean.py")], root=ROOT,
                           enforce_scope=False)
        assert report.findings == []
        assert report.suppressed == []

    def test_suppression_fixture(self):
        report = run_paths([str(FIXTURES / "suppressed.py")], root=ROOT,
                           rules=["RA001"], enforce_scope=False)
        active = [(f.rule, f.line) for f in report.findings]
        assert active == [
            ("RA000", 6), ("RA001", 6),  # suppression missing its why
            ("RA000", 7), ("RA001", 7),  # unknown rule id
            ("RA000", 8), ("RA001", 8),  # malformed comment
        ]
        [kept] = report.suppressed
        assert (kept.rule, kept.line) == ("RA001", 5)
        assert kept.justification == "fixture: a justified suppression"


class TestPrefixCacheRace:
    """RA007 must light up the pre-fix ``BlockCache`` — the race this
    PR fixed.  ``ra007_cache_prefix.py`` is that cache in miniature
    (lock declared, never taken); the shipped ``serve/cache.py`` is the
    same class with the annotations kept and zero findings."""

    def test_every_racy_method_is_flagged(self):
        report = run_paths([str(FIXTURES / "ra007_cache_prefix.py")],
                           root=ROOT, rules=["RA007"],
                           enforce_scope=False)
        flagged_lines = {f.line for f in report.findings}
        assert flagged_lines == {29, 31, 32, 34,          # get
                                 40, 42, 43, 44,          # put
                                 48, 49, 50, 51, 52,      # _evict
                                 56, 57, 58, 59}          # stats
        # Every guarded attribute shows up in at least one finding.
        text = " ".join(f.message for f in report.findings)
        for attr in ("_blocks", "hits", "misses", "evictions",
                     "resident_bytes"):
            assert f"self.{attr} is guarded-by self._lock" in text

    def test_fixed_cache_is_clean(self):
        """The shipped thread-safe cache proves out under the same rule
        (the fixture and this file pin both directions of the fix)."""
        report = run_paths([str(ROOT / "src/repro/serve/cache.py")],
                           root=ROOT, rules=["RA007"])
        assert [(f.rule, f.line) for f in report.findings] == []
