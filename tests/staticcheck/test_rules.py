"""Exact rule-id and line-number assertions over the seeded fixtures.

Each ``fixtures/raNNN_*.py`` file carries known violations at known
lines; the fixture directory is skipped by tree walks, so the seeds
never fail the CI gate — only these tests see them (by naming the
files directly, with ``enforce_scope=False`` where a rule's normal
scope is ``src/repro/``).
"""

from pathlib import Path

from repro.staticcheck import run_paths

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

SEEDED = (
    "ra001_writes.py",
    "ra002_forksafe.py",
    "ra003_metrics.py",
    "ra004_excepts.py",
    "ra005_cli.py",
    "ra006_sockets.py",
)


def _findings(name, rules):
    report = run_paths([str(FIXTURES / name)], root=ROOT, rules=rules,
                       enforce_scope=False)
    return [(f.rule, f.line) for f in report.findings]


class TestSeededViolations:
    def test_ra001_non_atomic_writes(self):
        assert _findings("ra001_writes.py", ["RA001"]) == [
            ("RA001", 8),   # open(path, "w")
            ("RA001", 9),   # json.dump
            ("RA001", 10),  # np.save
            ("RA001", 11),  # Path.write_text
        ]

    def test_ra002_fork_hostile_callables(self):
        assert _findings("ra002_forksafe.py", ["RA002"]) == [
            ("RA002", 15),  # lambda
            ("RA002", 16),  # bound method via .submit
            ("RA002", 17),  # module fn reading a Lock() global
            ("RA002", 25),  # nested function
        ]

    def test_ra003_uncataloged_metric_names(self):
        assert _findings("ra003_metrics.py", ["RA003"]) == [
            ("RA003", 5),  # misspelled literal
            ("RA003", 6),  # unknown scoped literal
            ("RA003", 7),  # undeclared dynamic family
            ("RA003", 9),  # unresolvable variable
        ]

    def test_ra004_swallowed_exceptions(self):
        assert _findings("ra004_excepts.py", ["RA004"]) == [
            ("RA004", 7),   # except Exception: return None
            ("RA004", 14),  # tuple containing BaseException, pass-only
        ]

    def test_ra005_undocumented_flag(self):
        assert _findings("ra005_cli.py", ["RA005"]) == [
            ("RA005", 7),  # the undocumented flag; positional skipped
        ]

    def test_ra006_unbounded_socket_calls(self):
        assert _findings("ra006_sockets.py", ["RA006"]) == [
            ("RA006", 10),  # create_connection with no timeout at all
            ("RA006", 14),  # timeout=None keyword
            ("RA006", 18),  # None as the positional timeout
            ("RA006", 22),  # settimeout(None)
            ("RA006", 26),  # setdefaulttimeout(None)
        ]

    def test_all_rules_fire_with_correct_locations(self):
        """The acceptance gate: one run over every seeded fixture
        reports every rule id at exactly the seeded file:line."""
        report = run_paths([str(FIXTURES / name) for name in SEEDED],
                           root=ROOT, enforce_scope=False)
        found = {(f.rule, Path(f.path).name, f.line)
                 for f in report.findings}
        assert found == {
            ("RA001", "ra001_writes.py", 8),
            ("RA001", "ra001_writes.py", 9),
            ("RA001", "ra001_writes.py", 10),
            ("RA001", "ra001_writes.py", 11),
            ("RA002", "ra002_forksafe.py", 15),
            ("RA002", "ra002_forksafe.py", 16),
            ("RA002", "ra002_forksafe.py", 17),
            ("RA002", "ra002_forksafe.py", 25),
            ("RA003", "ra003_metrics.py", 5),
            ("RA003", "ra003_metrics.py", 6),
            ("RA003", "ra003_metrics.py", 7),
            ("RA003", "ra003_metrics.py", 9),
            ("RA004", "ra004_excepts.py", 7),
            ("RA004", "ra004_excepts.py", 14),
            ("RA005", "ra005_cli.py", 7),
            ("RA006", "ra006_sockets.py", 10),
            ("RA006", "ra006_sockets.py", 14),
            ("RA006", "ra006_sockets.py", 18),
            ("RA006", "ra006_sockets.py", 22),
            ("RA006", "ra006_sockets.py", 26),
        }


class TestCleanAndSuppressed:
    def test_clean_fixture_has_no_findings(self):
        report = run_paths([str(FIXTURES / "clean.py")], root=ROOT,
                           enforce_scope=False)
        assert report.findings == []
        assert report.suppressed == []

    def test_suppression_fixture(self):
        report = run_paths([str(FIXTURES / "suppressed.py")], root=ROOT,
                           rules=["RA001"], enforce_scope=False)
        active = [(f.rule, f.line) for f in report.findings]
        assert active == [
            ("RA000", 6), ("RA001", 6),  # suppression missing its why
            ("RA000", 7), ("RA001", 7),  # unknown rule id
            ("RA000", 8), ("RA001", 8),  # malformed comment
        ]
        [kept] = report.suppressed
        assert (kept.rule, kept.line) == ("RA001", 5)
        assert kept.justification == "fixture: a justified suppression"
