"""CLI surface: the ``repro staticcheck`` subcommand, JSON reports,
the ``--out`` artifact and ``--list-rules``."""

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.staticcheck.cli import main as staticcheck_main
from repro.staticcheck.reporters import JSON_SCHEMA

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


class TestStaticcheckCli:
    def test_repro_subcommand_clean_exit(self, capsys):
        code = repro_main([
            "staticcheck", str(FIXTURES / "clean.py"), "--root", str(ROOT),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_findings_set_the_exit_code(self, capsys):
        code = repro_main([
            "staticcheck", str(FIXTURES / "ra005_cli.py"),
            "--root", str(ROOT),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "RA005" in out
        assert "ra005_cli.py:7" in out

    def test_json_report_and_out_artifact_agree(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        code = staticcheck_main([
            str(FIXTURES / "ra005_cli.py"), "--root", str(ROOT),
            "--format", "json", "--out", str(artifact),
        ])
        stdout = capsys.readouterr().out
        assert code == 1
        printed = json.loads(stdout)
        on_disk = json.loads(artifact.read_text())
        assert printed == on_disk
        assert on_disk["schema"] == JSON_SCHEMA
        assert on_disk["exit_code"] == 1
        [finding] = on_disk["findings"]
        assert finding["rule"] == "RA005"
        assert finding["line"] == 7
        assert finding["path"].endswith("ra005_cli.py")

    def test_list_rules_names_every_rule(self, capsys):
        assert staticcheck_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("RA001", "RA002", "RA003", "RA004", "RA005", "RA006"):
            assert rule in out

    def test_unknown_rule_selection_exits_2(self, capsys):
        code = staticcheck_main([
            str(FIXTURES / "clean.py"), "--root", str(ROOT),
            "--rules", "RA999",
        ])
        capsys.readouterr()
        assert code == 2

    def test_verbose_lists_suppressed_findings(self, tmp_path, capsys):
        # RA002 applies everywhere, so this works under the CLI's
        # normal scoping; the marker is assembled at runtime so the
        # scanner never sees it spelled out in this file.
        mark = "# static" "check:"
        target = tmp_path / "sample.py"
        target.write_text(
            "from repro.resilience import SupervisedPool\n"
            "def run(tasks):\n"
            "    return SupervisedPool(lambda t: t)"
            f"  {mark} disable=RA002 -- fixture lambda\n"
        )
        code = staticcheck_main([str(target), "--root", str(ROOT),
                                 "--verbose"])
        out = capsys.readouterr().out
        assert code == 0  # the only finding is suppressed
        assert "suppressed: fixture lambda" in out
