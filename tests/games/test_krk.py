"""KRK chess endgame tests — including the mate-in-16 anchor."""

import numpy as np
import pytest

from repro.core.values import LOSS, UNKNOWN, WIN
from repro.core.wdl import solve_wdl
from repro.games.krk import BLACK, WHITE, KRKGame


@pytest.fixture(scope="module")
def game():
    return KRKGame()


@pytest.fixture(scope="module")
def solution(game):
    return solve_wdl(game, chunk=1 << 15)


def sq(name: str) -> int:
    return (int(name[1]) - 1) * 8 + "abcdefgh".index(name[0])


class TestEncoding:
    def test_roundtrip(self, game):
        idx = np.arange(0, game.size - 1, 9973, dtype=np.int64)
        stm, wk, wr, bk = game.decode(idx)
        np.testing.assert_array_equal(game.encode(stm, wk, wr, bk), idx)

    def test_square_names(self, game):
        assert game.square_name(0) == "a1"
        assert game.square_name(63) == "h8"
        assert sq("e4") == 28

    def test_describe(self, game):
        idx = game.encode(WHITE, sq("a1"), sq("b2"), sq("h8"))
        text = game.describe(int(idx))
        assert "Ka1" in text and "Rb2" in text and "kh8" in text


class TestLegality:
    def test_coincident_pieces_illegal(self, game):
        idx = game.encode(WHITE, 10, 10, 20)
        assert not game.legal_mask(np.array([idx]))[0]

    def test_adjacent_kings_illegal(self, game):
        idx = game.encode(WHITE, sq("e4"), sq("a1"), sq("e5"))
        assert not game.legal_mask(np.array([idx]))[0]

    def test_white_to_move_with_black_in_check_illegal(self, game):
        # Rook on e1 checks king on e8 with white to move: impossible.
        idx = game.encode(WHITE, sq("a1"), sq("e1"), sq("e8"))
        assert not game.legal_mask(np.array([idx]))[0]

    def test_black_in_check_black_to_move_legal(self, game):
        idx = game.encode(BLACK, sq("a1"), sq("e1"), sq("e8"))
        assert game.legal_mask(np.array([idx]))[0]

    def test_sentinel_not_legal(self, game):
        assert not game.legal_mask(np.array([game.DRAW_SINK]))[0]


class TestMoves:
    def _scan_one(self, game, idx):
        return game.scan_chunk(int(idx), int(idx) + 1)

    def test_rook_blocked_by_own_king(self, game):
        # Rook a1, king a3: rook cannot pass a3 going north.
        idx = game.encode(WHITE, sq("a3"), sq("a1"), sq("h8"))
        scan = self._scan_one(game, idx)
        succ = scan.succ_index[0][scan.legal[0]]
        _, _, wr, _ = game.decode(succ)
        rook_files_ranks = {game.square_name(int(s)) for s in wr}
        assert "a2" in rook_files_ranks
        assert "a4" not in rook_files_ranks

    def test_black_king_cannot_enter_rook_line(self, game):
        # Rook on d1 guards the d-file; black king on e8 cannot go to d8/d7.
        idx = game.encode(BLACK, sq("a1"), sq("d1"), sq("e8"))
        scan = self._scan_one(game, idx)
        succ = scan.succ_index[0][scan.legal[0]]
        _, _, _, bk = game.decode(succ)
        targets = {game.square_name(int(s)) for s in bk}
        assert "d8" not in targets and "d7" not in targets
        assert "e7" in targets

    def test_black_captures_undefended_rook(self, game):
        idx = game.encode(BLACK, sq("a1"), sq("e7"), sq("e8"))
        scan = self._scan_one(game, idx)
        succ = scan.succ_index[0][scan.legal[0]]
        assert (succ == game.DRAW_SINK).any()

    def test_black_cannot_capture_defended_rook(self, game):
        idx = game.encode(BLACK, sq("e6"), sq("e7"), sq("e8"))
        scan = self._scan_one(game, idx)
        succ = scan.succ_index[0][scan.legal[0]]
        assert not (succ == game.DRAW_SINK).any()

    def test_vacated_square_extends_rook_ray(self, game):
        """Classic pitfall: the black king cannot step backwards along the
        checking ray, because its old square no longer blocks the rook."""
        # Rook e1 checks king e5; e6 stays attacked once the king moves.
        idx = game.encode(BLACK, sq("a8"), sq("e1"), sq("e5"))
        scan = self._scan_one(game, idx)
        succ = scan.succ_index[0][scan.legal[0]]
        _, _, _, bk = game.decode(succ)
        targets = {game.square_name(int(s)) for s in bk}
        assert "e6" not in targets and "e4" not in targets
        assert "d4" in targets

    def test_checkmate_position(self, game):
        # Back-rank mate: bK a8, wK b6(?) classic: Ka8, white Kb6, Ra1...
        # rook on a-file? That would check along the file. Use rank-8 mate:
        # wK g6, R h8... simpler: black Kh8, white Kg6, rook a8: mate.
        idx = game.encode(BLACK, sq("g6"), sq("a8"), sq("h8"))
        scan = self._scan_one(game, idx)
        assert scan.terminal[0]
        assert not scan.terminal_draw[0]  # mate, not stalemate

    def test_stalemate_position(self, game):
        # Black Ka8, white Kb6, rook b7: a8 is not attacked, a7 and b8 are
        # covered by the rook, and capturing on b7 is illegal (defended).
        idx = game.encode(BLACK, sq("b6"), sq("b7"), sq("a8"))
        scan = self._scan_one(game, idx)
        assert scan.terminal[0]
        assert scan.terminal_draw[0]


class TestSolution:
    def test_mate_in_sixteen(self, game, solution):
        """The famous KRK bound: white mates in at most 16 moves."""
        idx = np.arange(game.size - 1)
        legal = game.legal_mask(idx)
        stm, _, _, _ = game.decode(idx)
        wtm_win = legal & (stm == WHITE) & (solution.status[:-1] == WIN)
        max_plies = int(solution.depth[:-1][wtm_win].max())
        assert max_plies == 31  # 16 white moves + 15 black replies
        assert wtm_win.any()

    def test_white_to_move_always_wins(self, game, solution):
        """Every legal KRK position with white to move is a win (white can
        always save an attacked rook)."""
        idx = np.arange(game.size - 1)
        legal = game.legal_mask(idx)
        stm, _, _, _ = game.decode(idx)
        wtm = legal & (stm == WHITE)
        assert (solution.status[:-1][wtm] == WIN).all()

    def test_black_draws_exist(self, game, solution):
        idx = np.arange(game.size - 1)
        legal = game.legal_mask(idx)
        stm, _, _, _ = game.decode(idx)
        btm = legal & (stm == BLACK)
        st = solution.status[:-1]
        assert (st[btm] == UNKNOWN).sum() > 0
        assert (st[btm] == LOSS).sum() > 0
        # Black never *wins* with a bare king.
        assert (st[btm] == WIN).sum() == 0

    def test_draw_sink_is_drawn(self, game, solution):
        assert solution.status[game.DRAW_SINK] == UNKNOWN

    def test_known_mate_in_one(self, game, solution):
        # White: Kg6, Ra1, black Kh8 -> 1. Ra8# (mate in 1).
        idx = int(game.encode(WHITE, sq("g6"), sq("a1"), sq("h8")))
        assert solution.status[idx] == WIN
        assert solution.depth[idx] == 1


class TestQueenVariant:
    @pytest.fixture(scope="class")
    def kqk(self):
        game = KRKGame(piece="queen")
        return game, solve_wdl(game, chunk=1 << 15)

    def test_mate_in_ten(self, kqk):
        """The second classic bound: KQK is mate in at most 10 moves."""
        game, sol = kqk
        idx = np.arange(game.size - 1)
        legal = game.legal_mask(idx)
        stm, _, _, _ = game.decode(idx)
        win = legal & (stm == WHITE) & (sol.status[:-1] == WIN)
        assert int(sol.depth[:-1][win].max()) == 19  # 10 white moves

    def test_queen_covers_diagonals(self):
        game = KRKGame(piece="queen")
        # Qd4 checks a king on g7 along the diagonal.
        idx = game.encode(BLACK, sq("a1"), sq("d4"), sq("g7"))
        assert game.in_check(np.array([idx]))[0]
        # ... but not with the white king blocking on f6.
        idx2 = game.encode(BLACK, sq("f6"), sq("d4"), sq("g7"))
        assert not game.in_check(np.array([idx2]))[0]

    def test_rook_does_not_cover_diagonals(self):
        game = KRKGame(piece="rook")
        idx = game.encode(BLACK, sq("a1"), sq("d4"), sq("g7"))
        assert not game.in_check(np.array([idx]))[0]

    def test_queen_wins_faster_than_rook_in_aggregate(self, kqk):
        """Same placement, stronger piece: faster almost everywhere.

        Not *strictly* everywhere — in ~0.25% of positions the queen is
        actually slower, because she controls so many squares that the
        quick rook maneuver would stalemate the bare king (a genuine
        chess phenomenon this test documents)."""
        game_q, sol_q = kqk
        game_r = KRKGame(piece="rook")
        sol_r = solve_wdl(game_r, chunk=1 << 15)
        idx = np.arange(game_q.size - 1)
        stm, _, _, _ = game_q.decode(idx)
        both_legal = game_q.legal_mask(idx) & game_r.legal_mask(idx)
        wtm = both_legal & (stm == WHITE)
        common = (
            wtm & (sol_q.status[:-1] == WIN) & (sol_r.status[:-1] == WIN)
        )
        dq = sol_q.depth[:-1][common]
        dr = sol_r.depth[:-1][common]
        assert (dq < dr).mean() > 0.9
        assert (dq > dr).mean() < 0.005  # the stalemate-trap minority
        assert dq.mean() < dr.mean()

    def test_unsupported_piece_rejected(self):
        with pytest.raises(ValueError):
            KRKGame(piece="knight")
