"""Direct structural tests for the synthetic game generator."""

import numpy as np
import pytest

from repro.games.synthetic import SyntheticCaptureGame


class TestGeneration:
    def test_level_zero_values_all_zero(self):
        from repro.core.sequential import SequentialSolver

        game = SyntheticCaptureGame(levels=2, max_size=30, seed=4)
        values, _ = SequentialSolver(game).solve(1)
        assert (values[0] == 0).all()

    def test_captures_point_to_lower_levels(self):
        game = SyntheticCaptureGame(levels=5, max_size=40, seed=8)
        for d in range(5):
            scan = game.scan_chunk(d, 0, game.db_size(d))
            caps = scan.capture[scan.legal & (scan.capture > 0)]
            if caps.size:
                assert caps.min() >= 1
                assert caps.max() <= d

    def test_succ_indices_in_range(self):
        game = SyntheticCaptureGame(levels=4, max_size=25, seed=2)
        for d in range(4):
            scan = game.scan_chunk(d, 0, game.db_size(d))
            for s in range(scan.legal.shape[1]):
                mv = scan.legal[:, s]
                if not mv.any():
                    continue
                caps = scan.capture[mv, s]
                succ = scan.succ_index[mv, s]
                for c, q in zip(caps, succ):
                    target = d - int(c)
                    assert 0 <= q < game.db_size(target)

    def test_terminal_values_within_bound(self):
        game = SyntheticCaptureGame(levels=4, max_size=25, seed=13)
        for d in range(4):
            scan = game.scan_chunk(d, 0, game.db_size(d))
            tv = scan.terminal_value[scan.terminal]
            if tv.size:
                assert np.abs(tv).max() <= d

    def test_chunked_scan_slices_the_whole(self):
        game = SyntheticCaptureGame(levels=3, max_size=35, seed=6)
        whole = game.scan_chunk(2, 0, game.db_size(2))
        part = game.scan_chunk(2, 5, 12)
        np.testing.assert_array_equal(part.legal, whole.legal[5:12])
        np.testing.assert_array_equal(part.succ_index, whole.succ_index[5:12])

    def test_predecessor_multiplicity(self):
        """Parallel internal edges must appear with multiplicity in the
        predecessor lists (the counters rely on it)."""
        game = SyntheticCaptureGame(levels=3, max_size=30, seed=5)
        for d in range(3):
            size = game.db_size(d)
            scan = game.scan_chunk(d, 0, size)
            internal = scan.legal & (scan.capture == 0)
            rows, parents = game.predecessors_internal(d, np.arange(size))
            assert rows.shape[0] == int(internal.sum())

    def test_invalid_exit_rejected(self):
        game = SyntheticCaptureGame(levels=3, seed=0)
        with pytest.raises(ValueError):
            game.exit_db(1, 2)
