"""Unit and property tests for the awari rules engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games.awari import AwariGame, AwariRules, GrandSlam, _swap_sides


def board(*pits):
    assert len(pits) == 12
    return np.array([pits], dtype=np.int16)


@pytest.fixture
def game():
    return AwariGame()


class TestSowing:
    def test_simple_sow_no_wrap(self, game):
        b = board(3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        sown, last, stones = game.sow(b, np.array([0]))
        assert stones[0] == 3
        assert sown[0].tolist() == [0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0]
        assert last[0] == 3

    def test_sow_wraps_around(self, game):
        b = board(0, 0, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0)
        sown, last, _ = game.sow(b, np.array([5]))
        assert sown[0].tolist() == [1, 1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]
        assert last[0] == 1

    def test_sow_skips_origin_on_full_lap(self, game):
        # 11 stones: one full lap, origin stays empty, last in pit before it.
        b = board(11, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        sown, last, _ = game.sow(b, np.array([0]))
        assert sown[0, 0] == 0
        assert sown[0, 1:].tolist() == [1] * 11
        assert last[0] == 11

    def test_sow_twelve_stones_double_drop(self, game):
        # 12 stones: lap + 1, the pit after the origin gets two stones.
        b = board(12, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        sown, last, _ = game.sow(b, np.array([0]))
        assert sown[0, 0] == 0
        assert sown[0, 1] == 2
        assert sown[0, 2:].tolist() == [1] * 10
        assert last[0] == 1

    def test_sow_conserves_stones(self, game):
        rng = np.random.default_rng(0)
        b = game.random_boards(9, 64, rng)
        for pit in range(6):
            sown, _, stones = game.sow(b, np.full(64, pit))
            np.testing.assert_array_equal(sown.sum(axis=1), b.sum(axis=1))


class TestCaptures:
    def test_single_pit_capture_two(self, game):
        # Extra stones in pit 11 keep this from being a grand slam.
        b = board(0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 4)
        out = game.apply_move(b, np.array([5]))
        assert out.legal[0]
        assert out.captured[0] == 2
        # Successor is swapped: old opponent pit 11 becomes mover pit 5.
        assert out.boards[0].tolist() == [0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0]

    def test_grand_slam_rule_cancels_total_capture(self, game):
        # Same shape without the spare stones: capturing would empty the
        # opponent, so the default CAPTURE_NOTHING rule voids the capture.
        b = board(0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0)
        out = game.apply_move(b, np.array([5]))
        assert out.legal[0]
        assert out.captured[0] == 0
        assert out.boards[0].sum() == 2

    def test_capture_chain(self, game):
        # Sow 3 stones from pit 5 into pits 6, 7, 8 holding 1, 2, 1.
        b = board(0, 0, 0, 0, 0, 3, 1, 2, 1, 0, 0, 5)
        out = game.apply_move(b, np.array([5]))
        # pits become 2, 3, 2 -> chain captures all three (last pit 8).
        assert out.captured[0] == 7
        # Remaining: opponent pit 11 has 5; swapped => mover pit 5.
        assert out.boards[0].tolist() == [0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0]

    def test_chain_breaks_on_big_pit(self, game):
        b = board(0, 0, 0, 0, 0, 3, 1, 5, 1, 0, 0, 0)
        out = game.apply_move(b, np.array([5]))
        # pits 6,7,8 -> 2,6,2: only pit 8 captured (chain broken at 7).
        assert out.captured[0] == 2
        assert out.boards[0].tolist() == [2, 6, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]

    def test_chain_stops_at_own_side(self, game):
        # Last stone in pit 6; chain cannot extend into mover's pits.
        b = board(2, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 2)
        out = game.apply_move(b, np.array([5]))
        assert out.captured[0] == 2

    def test_no_capture_on_own_side(self, game):
        b = board(1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3)
        out = game.apply_move(b, np.array([0]))
        # Last stone lands in own pit 1 (making 2): no capture.
        assert out.captured[0] == 0

    def test_no_capture_when_count_not_2_or_3(self, game):
        b = board(0, 0, 0, 0, 0, 1, 3, 0, 0, 0, 0, 1)
        out = game.apply_move(b, np.array([5]))
        assert out.captured[0] == 0  # pit 6 becomes 4

    def test_capture_reduces_total(self, game):
        rng = np.random.default_rng(1)
        b = game.random_boards(8, 128, rng)
        for pit in range(6):
            out = game.apply_move(b, np.full(128, pit))
            ok = out.legal
            np.testing.assert_array_equal(
                out.boards[ok].sum(axis=1) + out.captured[ok],
                b[ok].sum(axis=1),
            )


class TestGrandSlam:
    def setup_method(self):
        # Capturing from pit 5 would take all opponent stones (pits 6,7).
        self.b = board(0, 0, 0, 0, 0, 2, 1, 2, 0, 0, 0, 0)

    def test_capture_nothing_default(self):
        game = AwariGame(AwariRules(grand_slam=GrandSlam.CAPTURE_NOTHING))
        out = game.apply_move(self.b, np.array([5]))
        assert out.legal[0]
        assert out.captured[0] == 0
        # Board keeps the sown stones.
        assert out.boards[0].sum() == 5

    def test_allowed(self):
        game = AwariGame(AwariRules(grand_slam=GrandSlam.ALLOWED))
        out = game.apply_move(self.b, np.array([5]))
        assert out.legal[0]
        assert out.captured[0] == 5

    def test_forbidden(self):
        game = AwariGame(AwariRules(grand_slam=GrandSlam.FORBIDDEN))
        out = game.apply_move(self.b, np.array([5]))
        assert not out.legal[0]

    def test_partial_capture_is_not_slam(self):
        # An extra opponent stone out of the chain: normal capture.
        b = board(0, 0, 0, 0, 0, 2, 1, 2, 0, 0, 0, 9)
        game = AwariGame(AwariRules(grand_slam=GrandSlam.CAPTURE_NOTHING))
        out = game.apply_move(b, np.array([5]))
        assert out.captured[0] == 5


class TestFeedingRule:
    def test_must_feed_when_opponent_starved(self):
        game = AwariGame()
        # Opponent empty; pit 0 (1 stone) cannot reach them, pit 5 can.
        b = board(1, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0)
        legal = game.legal_moves(b)
        assert not legal[0, 0]
        assert legal[0, 5]

    def test_feeding_not_required_when_disabled(self):
        game = AwariGame(AwariRules(must_feed=False))
        b = board(1, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0)
        legal = game.legal_moves(b)
        assert legal[0, 0]

    def test_cannot_feed_is_terminal(self):
        game = AwariGame()
        # One stone in pit 0: cannot reach the opponent; terminal, mover
        # keeps his stone.
        b = board(1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        term, value = game.terminal_values(b)
        assert term[0]
        assert value[0] == 1

    def test_empty_own_side_is_terminal(self):
        game = AwariGame()
        b = board(0, 0, 0, 0, 0, 0, 3, 0, 0, 2, 0, 0)
        term, value = game.terminal_values(b)
        assert term[0]
        assert value[0] == -5

    def test_nonterminal_position(self):
        game = AwariGame()
        b = board(1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0)
        term, _ = game.terminal_values(b)
        assert not term[0]


class TestUnmove:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_predecessors_match_forward_edges(self, n):
        """Exhaustive cross-check: unmove == transpose of forward non-capture
        moves over the entire n-stone space."""
        game = AwariGame()
        idx = game.indexer(n)
        boards = idx.all_boards()
        count = idx.count
        # Forward edges.
        fwd = set()
        for pit in range(6):
            out = game.apply_move(boards, np.full(count, pit))
            ok = out.legal & (out.captured == 0)
            src = np.flatnonzero(ok)
            dst = idx.rank(out.boards[ok])
            fwd.update(zip(src.tolist(), dst.tolist()))
        # Backward edges via unmove.
        child_row, pred_boards = game.noncapture_predecessors(boards, n)
        pred_idx = idx.rank(pred_boards) if pred_boards.size else np.zeros(0)
        bwd = set(zip(pred_idx.tolist(), child_row.tolist()))
        assert fwd == bwd

    def test_unmove_empty_batch(self):
        game = AwariGame()
        rows, preds = game.noncapture_predecessors(
            np.zeros((0, 12), dtype=np.int16), 5
        )
        assert rows.size == 0
        assert preds.shape == (0, 12)

    @given(st.integers(min_value=2, max_value=7), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_unmove_forward_roundtrip_random(self, n, salt):
        """Every reported predecessor reproduces the child when replayed."""
        game = AwariGame()
        idx = game.indexer(n)
        rng = np.random.default_rng(salt)
        boards = idx.unrank(rng.integers(0, idx.count, size=8))
        child_row, pred_boards = game.noncapture_predecessors(boards, n)
        if child_row.size == 0:
            return
        # Find, for each predecessor, a move reproducing the child.
        reproduced = np.zeros(child_row.size, dtype=bool)
        for pit in range(6):
            out = game.apply_move(pred_boards, np.full(child_row.size, pit))
            match = (
                out.legal
                & (out.captured == 0)
                & (out.boards == boards[child_row]).all(axis=1)
            )
            reproduced |= match
        assert reproduced.all()


class TestBatchProperties:
    @given(st.integers(min_value=1, max_value=9), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_stone_conservation(self, n, salt):
        game = AwariGame()
        rng = np.random.default_rng(salt)
        b = game.random_boards(n, 32, rng)
        for pit in range(6):
            out = game.apply_move(b, np.full(32, pit))
            ok = out.legal
            total = out.boards[ok].sum(axis=1) + out.captured[ok]
            np.testing.assert_array_equal(total, np.full(ok.sum(), n))

    @given(st.integers(min_value=1, max_value=9), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_successors_nonnegative(self, n, salt):
        game = AwariGame()
        rng = np.random.default_rng(salt)
        b = game.random_boards(n, 32, rng)
        for pit in range(6):
            out = game.apply_move(b, np.full(32, pit))
            assert (out.boards[out.legal] >= 0).all()

    def test_swap_sides_involution(self):
        rng = np.random.default_rng(3)
        b = rng.integers(0, 5, size=(10, 12)).astype(np.int16)
        np.testing.assert_array_equal(_swap_sides(_swap_sides(b)), b)

    def test_apply_move_rejects_bad_pit(self, game):
        b = board(1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            game.apply_move(b, np.array([6]))

    def test_apply_move_rejects_bad_shape(self, game):
        with pytest.raises(ValueError):
            game.apply_move(np.zeros((2, 5)), np.array([0, 0]))

    def test_empty_pit_is_illegal(self, game):
        b = board(0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0)
        out = game.apply_move(b, np.array([0]))
        assert not out.legal[0]


class TestRendering:
    def test_board_to_string(self, game):
        s = game.board_to_string(np.arange(12))
        assert "11" in s and "move" in s
