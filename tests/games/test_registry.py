"""Game registry tests."""

import pytest

from repro.db.store import DatabaseSet
from repro.games.awari import GrandSlam
from repro.games.registry import CAPTURE_GAMES, capture_game, capture_game_for


class TestRegistry:
    @pytest.mark.parametrize("name", CAPTURE_GAMES)
    def test_all_names_resolve(self, name):
        game = capture_game(name)
        assert game.db_size(0) == 1

    def test_variants_differ(self):
        base = capture_game("awari")
        allowed = capture_game("awari-slam-allowed")
        assert base.rules.grand_slam is GrandSlam.CAPTURE_NOTHING
        assert allowed.rules.grand_slam is GrandSlam.ALLOWED
        nofeed = capture_game("awari-no-feed")
        assert not nofeed.rules.must_feed

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown game"):
            capture_game("chess")

    def test_reconstruct_from_dbset(self):
        for name in CAPTURE_GAMES:
            game = capture_game(name)
            rules = game.rules.describe() if hasattr(game, "rules") else ""
            dbs = DatabaseSet(game_name=game.name, values={}, rules=rules)
            rebuilt = capture_game_for(dbs)
            assert type(rebuilt) is type(game)
            if hasattr(game, "rules"):
                assert rebuilt.rules == game.rules

    def test_reconstruct_unknown_rejected(self):
        dbs = DatabaseSet(game_name="checkers", values={})
        with pytest.raises(ValueError, match="cannot reconstruct"):
            capture_game_for(dbs)
