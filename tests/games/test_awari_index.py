"""Unit and property tests for the combinatorial awari indexer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games.awari_index import AwariIndexer, binomial_table


class TestBinomialTable:
    def test_small_values(self):
        t = binomial_table(10, 5)
        assert t[0, 0] == 1
        assert t[5, 2] == 10
        assert t[10, 5] == 252

    def test_zero_above_diagonal(self):
        t = binomial_table(6, 6)
        assert t[2, 5] == 0
        assert t[0, 1] == 0

    def test_row_sums(self):
        t = binomial_table(12, 12)
        for n in range(13):
            assert t[n, : n + 1].sum() == 2**n


class TestCountFormula:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 1), (1, 12), (2, 78), (3, 364), (8, 75582), (10, 352716)],
    )
    def test_known_counts(self, n, expected):
        assert AwariIndexer(n).count == expected

    def test_thirteen_stone_count(self):
        # The database of the paper's headline run: C(24, 11).
        assert AwariIndexer(13).count == 2496144

    def test_two_pits(self):
        assert AwariIndexer(5, n_pits=2).count == 6

    def test_one_pit(self):
        idx = AwariIndexer(7, n_pits=1)
        assert idx.count == 1
        assert idx.unrank(np.array([0])).tolist() == [[7]]
        assert int(idx.rank(np.array([7]))) == 0


class TestRoundTrip:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 6])
    def test_full_roundtrip(self, n):
        idx = AwariIndexer(n)
        ranks = np.arange(idx.count, dtype=np.int64)
        boards = idx.unrank(ranks)
        assert boards.shape == (idx.count, 12)
        assert (boards.sum(axis=1) == n).all()
        assert (boards >= 0).all()
        back = idx.rank(boards)
        np.testing.assert_array_equal(back, ranks)

    def test_boards_are_unique(self):
        idx = AwariIndexer(4)
        boards = idx.all_boards()
        assert len({tuple(b) for b in boards.tolist()}) == idx.count

    def test_single_board_api(self):
        idx = AwariIndexer(3)
        b = idx.unrank(5)
        assert b.shape == (12,)
        assert int(idx.rank(b)) == 5

    def test_chunked_iteration_covers_space(self):
        idx = AwariIndexer(4)
        seen = []
        for start, boards in idx.iter_chunks(chunk=100):
            assert boards.shape[0] <= 100
            seen.append(idx.rank(boards))
        all_ranks = np.concatenate(seen)
        np.testing.assert_array_equal(all_ranks, np.arange(idx.count))


class TestValidation:
    def test_negative_stones_rejected(self):
        with pytest.raises(ValueError):
            AwariIndexer(-1)

    def test_unrank_out_of_range(self):
        idx = AwariIndexer(2)
        with pytest.raises(ValueError):
            idx.unrank(np.array([idx.count]))
        with pytest.raises(ValueError):
            idx.unrank(np.array([-1]))

    def test_validate_rejects_wrong_sum(self):
        idx = AwariIndexer(3)
        with pytest.raises(ValueError):
            idx.validate(np.array([[1] * 12]))

    def test_validate_rejects_negative(self):
        idx = AwariIndexer(3)
        b = np.zeros((1, 12), dtype=np.int64)
        b[0, 0] = 4
        b[0, 1] = -1
        with pytest.raises(ValueError):
            idx.validate(b)

    def test_rank_bad_shape(self):
        idx = AwariIndexer(3)
        with pytest.raises(ValueError):
            idx.rank(np.zeros((2, 5)))


@st.composite
def boards_strategy(draw, max_stones=13):
    n = draw(st.integers(min_value=0, max_value=max_stones))
    cuts = draw(
        st.lists(st.integers(min_value=0, max_value=n), min_size=11, max_size=11)
    )
    cuts = sorted(cuts)
    pits = [cuts[0]] + [cuts[i] - cuts[i - 1] for i in range(1, 11)] + [n - cuts[10]]
    return n, pits


class TestHypothesis:
    @given(boards_strategy())
    @settings(max_examples=200, deadline=None)
    def test_rank_unrank_roundtrip(self, case):
        n, pits = case
        idx = AwariIndexer(n)
        board = np.array([pits], dtype=np.int64)
        r = idx.rank(board)
        assert 0 <= int(r[0]) < idx.count
        back = idx.unrank(r)
        np.testing.assert_array_equal(back[0], board[0])

    @given(st.integers(min_value=0, max_value=10), st.data())
    @settings(max_examples=100, deadline=None)
    def test_unrank_rank_roundtrip(self, n, data):
        idx = AwariIndexer(n)
        r = data.draw(st.integers(min_value=0, max_value=idx.count - 1))
        board = idx.unrank(np.array([r]))
        assert int(board.sum()) == n
        assert int(idx.rank(board)[0]) == r

    @given(st.integers(min_value=0, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_rank_is_monotone_in_index(self, n):
        # unrank must be the inverse permutation of rank over the full space.
        idx = AwariIndexer(n)
        ranks = idx.rank(idx.all_boards())
        np.testing.assert_array_equal(ranks, np.arange(idx.count))
