"""Deeper rule-level property tests for the awari engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games.awari import AwariGame, AwariRules, GrandSlam


def random_batch(game, n, count, seed):
    rng = np.random.default_rng(seed)
    return game.random_boards(n, count, rng)


class TestFeedingProperty:
    @given(st.integers(2, 9), st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_all_legal_moves_feed_a_starved_opponent(self, n, salt):
        game = AwariGame()
        boards = random_batch(game, n, 64, salt)
        boards[:, 6:] = 0  # starve the opponent
        boards[:, 0] += n - boards.sum(axis=1).astype(np.int16)
        for pit in range(6):
            out = game.apply_move(boards, np.full(64, pit))
            ok = out.legal
            if ok.any():
                # Successor is swapped: the fed stones are in the new
                # mover's half (columns 0-5).
                assert (out.boards[ok][:, :6].sum(axis=1) > 0).all()

    @given(st.integers(2, 9), st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_without_feeding_rule_more_moves_are_legal(self, n, salt):
        strict = AwariGame(AwariRules(must_feed=True))
        loose = AwariGame(AwariRules(must_feed=False))
        boards = random_batch(strict, n, 64, salt)
        strict_legal = strict.legal_moves(boards)
        loose_legal = loose.legal_moves(boards)
        assert (loose_legal | ~strict_legal).all() or (
            strict_legal <= loose_legal
        ).all()


class TestCaptureChainProperties:
    @given(st.integers(2, 10), st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_captures_only_remove_from_opponent_side(self, n, salt):
        """After a capturing move, the mover's own pits (pre-swap) hold
        exactly the sown configuration — captures touch pits 6-11 only."""
        game = AwariGame()
        boards = random_batch(game, n, 64, salt)
        for pit in range(6):
            sown, _, stones = game.sow(boards, np.full(64, pit))
            out = game.apply_move(boards, np.full(64, pit))
            ok = out.legal & (out.captured > 0)
            if not ok.any():
                continue
            # Successor swapped back: new opponent half = old mover half.
            np.testing.assert_array_equal(
                out.boards[ok][:, 6:], sown[ok][:, :6]
            )

    @given(st.integers(2, 10), st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_captured_pits_held_two_or_three(self, n, salt):
        """Whatever was captured came from pits holding exactly 2 or 3
        after sowing: captured total is consistent with chain lengths."""
        game = AwariGame(AwariRules(grand_slam=GrandSlam.ALLOWED))
        boards = random_batch(game, n, 64, salt)
        for pit in range(6):
            sown, _, _ = game.sow(boards, np.full(64, pit))
            out = game.apply_move(boards, np.full(64, pit))
            ok = out.legal & (out.captured > 0)
            for row in np.flatnonzero(ok):
                emptied = (sown[row, 6:] > 0) & (out.boards[row, :6] == 0)
                taken = sown[row, 6:][emptied]
                assert set(np.unique(taken)).issubset({2, 3})
                assert taken.sum() == out.captured[row]

    @given(st.integers(2, 10), st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_forbidden_slam_never_leaves_opponent_empty_by_capture(
        self, n, salt
    ):
        game = AwariGame(AwariRules(grand_slam=GrandSlam.FORBIDDEN))
        boards = random_batch(game, n, 64, salt)
        had_stones = boards[:, 6:].sum(axis=1) > 0
        for pit in range(6):
            out = game.apply_move(boards, np.full(64, pit))
            ok = out.legal & (out.captured > 0) & had_stones
            # Post-capture opponent stones (pre-swap) = successor mover half.
            assert (out.boards[ok][:, :6].sum(axis=1) > 0).all()


class TestMoveCounts:
    @given(st.integers(1, 10), st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_legal_moves_subset_of_nonempty_pits(self, n, salt):
        game = AwariGame()
        boards = random_batch(game, n, 64, salt)
        legal = game.legal_moves(boards)
        assert (legal <= (boards[:, :6] > 0)).all()

    def test_full_initial_awari_board_has_six_moves(self):
        game = AwariGame()
        board = np.full((1, 12), 4, dtype=np.int16)  # the real game start
        legal = game.legal_moves(board)
        assert legal.sum() == 6

    @given(st.integers(1, 10), st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_terminal_iff_no_legal_moves(self, n, salt):
        game = AwariGame()
        boards = random_batch(game, n, 64, salt)
        term, _ = game.terminal_values(boards)
        legal = game.legal_moves(boards)
        np.testing.assert_array_equal(term, ~legal.any(axis=1))
