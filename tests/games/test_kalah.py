"""Kalah-nt rules and database tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import oracle_capture_solve
from repro.core.sequential import SequentialSolver
from repro.core.verify import check_bellman
from repro.games.kalah import KalahCaptureGame, KalahGame


def board(*pits):
    assert len(pits) == 12
    return np.array([pits], dtype=np.int16)


@pytest.fixture
def game():
    return KalahGame()


class TestSowing:
    def test_short_sow_stays_in_own_row(self, game):
        b = board(3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        sown, last_pos, stones = game.sow(b, np.array([0]))
        assert stones[0] == 3
        assert sown[0, :12].tolist() == [0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0]
        assert sown[0, 12] == 0  # store untouched

    def test_sow_through_store(self, game):
        # 3 stones from pit 4: pit 5, store, opponent pit 6.
        b = board(0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0)
        sown, _, _ = game.sow(b, np.array([4]))
        assert sown[0, 5] == 1
        assert sown[0, 12] == 1
        assert sown[0, 6] == 1

    def test_full_lap_reenters_origin(self, game):
        # 13 stones from pit 0: one full lap (12 pits + store), origin gets
        # the 13th stone back.
        b = board(13, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        sown, _, _ = game.sow(b, np.array([0]))
        assert sown[0, 12] == 1
        assert sown[0, 0] == 1  # unlike awari, the origin is resown
        assert sown[0, 1:12].tolist() == [1] * 11

    def test_opponent_store_skipped(self, game):
        # Long sow: opponent's store never receives (there is no slot for
        # it; conservation proves nothing leaked).
        b = board(0, 0, 0, 0, 0, 20, 0, 0, 0, 0, 0, 0)
        sown, _, _ = game.sow(b, np.array([5]))
        assert sown[0].sum() == 20


class TestMoves:
    def test_store_stones_are_captured(self, game):
        b = board(0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0)
        out = game.apply_move(b, np.array([4]))
        assert out.legal[0]
        assert out.captured[0] == 1
        assert out.boards[0].sum() == 2

    def test_positional_capture(self, game):
        # Last stone lands in empty own pit 2; opposite pit (9) holds 4.
        b = board(2, 0, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0)
        out = game.apply_move(b, np.array([0]))
        # pits 1, 2 get one stone; pit 2 was empty -> capture 1 + 4.
        assert out.captured[0] == 5
        # Remaining: pit 1 has 1 stone; swapped to opponent half.
        assert out.boards[0].tolist() == [0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0]

    def test_no_positional_capture_when_opposite_empty(self, game):
        b = board(2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        out = game.apply_move(b, np.array([0]))
        assert out.captured[0] == 0

    def test_no_capture_when_landing_pit_occupied(self, game):
        b = board(2, 0, 5, 0, 0, 0, 0, 0, 0, 4, 0, 0)
        out = game.apply_move(b, np.array([0]))
        assert out.captured[0] == 0

    def test_capture_on_opponent_side_never_positional(self, game):
        # Last stone lands in an empty opponent pit: no positional capture.
        b = board(0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0)
        out = game.apply_move(b, np.array([5]))
        assert out.captured[0] == 1  # just the store stone

    def test_empty_pit_illegal(self, game):
        b = board(0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0)
        out = game.apply_move(b, np.array([0]))
        assert not out.legal[0]

    def test_stone_conservation(self, game):
        rng = np.random.default_rng(0)
        cap_game = KalahCaptureGame()
        idx = cap_game.engine.indexer(9)
        boards = idx.unrank(rng.integers(0, idx.count, size=64))
        for pit in range(6):
            out = game.apply_move(boards, np.full(64, pit))
            ok = out.legal
            np.testing.assert_array_equal(
                out.boards[ok].sum(axis=1) + out.captured[ok],
                boards[ok].sum(axis=1),
            )

    def test_terminal_when_mover_empty(self, game):
        b = board(0, 0, 0, 0, 0, 0, 1, 2, 0, 0, 0, 0)
        term, value = game.terminal_values(b)
        assert term[0]
        assert value[0] == -3


class TestUnmove:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_matches_forward_edges(self, n):
        cap_game = KalahCaptureGame()
        game = cap_game.engine
        idx = game.indexer(n)
        boards = idx.all_boards()
        fwd = set()
        for pit in range(6):
            out = game.apply_move(boards, np.full(idx.count, pit))
            ok = out.legal & (out.captured == 0)
            src = np.flatnonzero(ok)
            dst = idx.rank(out.boards[ok])
            fwd.update(zip(src.tolist(), dst.tolist()))
        child_row, pred_boards = game.noncapture_predecessors(boards, n)
        pred_idx = idx.rank(pred_boards) if pred_boards.size else np.zeros(0)
        bwd = set(zip(pred_idx.tolist(), child_row.tolist()))
        assert fwd == bwd

    @given(st.integers(2, 6), st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_unmove_forward_roundtrip(self, n, salt):
        cap_game = KalahCaptureGame()
        game = cap_game.engine
        idx = game.indexer(n)
        rng = np.random.default_rng(salt)
        boards = idx.unrank(rng.integers(0, idx.count, size=8))
        child_row, pred_boards = game.noncapture_predecessors(boards, n)
        if child_row.size == 0:
            return
        reproduced = np.zeros(child_row.size, dtype=bool)
        for pit in range(6):
            out = game.apply_move(pred_boards, np.full(child_row.size, pit))
            reproduced |= (
                out.legal
                & (out.captured == 0)
                & (out.boards == boards[child_row]).all(axis=1)
            )
        assert reproduced.all()


class TestKalahDatabases:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
    def test_solver_matches_oracle(self, n):
        game = KalahCaptureGame()
        values, _ = SequentialSolver(game).solve(4)
        oracle = oracle_capture_solve(game, 4)
        np.testing.assert_array_equal(values[n], oracle[n])

    def test_bellman_holds(self):
        game = KalahCaptureGame()
        values, _ = SequentialSolver(game).solve(5)
        for n in range(6):
            assert check_bellman(game, n, values).ok

    def test_parallel_matches_sequential(self):
        from repro.core.parallel.driver import ParallelConfig, ParallelSolver

        game = KalahCaptureGame()
        seq, _ = SequentialSolver(game).solve(5)
        cfg = ParallelConfig(n_procs=4, predecessor_mode="unmove")
        par, _ = ParallelSolver(game, cfg).solve(5, max_events=5_000_000)
        for n in range(6):
            np.testing.assert_array_equal(par[n], seq[n])

    def test_kalah_is_more_exit_heavy_than_awari(self):
        """Structural contrast used in the generality bench: kalah sows
        into the store, so a much larger fraction of moves are exits."""
        from repro.core.graph import build_database_graph
        from repro.games.awari_db import AwariCaptureGame

        n = 5
        kal = KalahCaptureGame()
        awa = AwariCaptureGame()
        kv, _ = SequentialSolver(kal).solve(n)
        av, _ = SequentialSolver(awa).solve(n)
        kg = build_database_graph(kal, n, {k: kv[k] for k in range(n)})
        ag = build_database_graph(awa, n, {k: av[k] for k in range(n)})
        k_ratio = kg.forward.n_edges / kg.work.moves_generated
        a_ratio = ag.forward.n_edges / ag.work.moves_generated
        assert k_ratio < a_ratio
