#!/usr/bin/env python
"""End-to-end chaos smoke test, used by the CI ``chaos-smoke`` job.

Every fault the resilience layer claims to absorb, injected for real,
with the output checked bit-for-bit against a fault-free run:

1. reference — ``repro solve`` with no faults
2. worker crash — multiprocess solve with an injected SIGKILL
   (``--inject-fault kill-worker:chunk=2``); result must be identical
   and the run manifest must show nonzero ``resilience.retries``
3. pipeline kill-and-resume — a checkpointing solve SIGKILLed
   mid-sequence, then rerun to completion from its checkpoints
4. chaotic serving — a probe server dropping every 7th connection and
   severing sessions after 100 responses; 1,000 probes through the
   reconnecting client must all match, then SIGINT must still shut the
   server down cleanly

Exits non-zero on any mismatch, missing counter, or unclean shutdown.

Run:  PYTHONPATH=src python scripts/chaos_smoke.py
"""

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

STONES = 6
N_PROBES = 1_000
BATCH = 64


def wait_for(path: Path, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return path.read_text().strip()
        time.sleep(0.05)
    raise TimeoutError(f"server did not become ready within {timeout}s")


def cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def identical(archive_a: Path, archive_b: Path) -> bool:
    from repro.db.store import DatabaseSet

    a, b = DatabaseSet.load(archive_a), DatabaseSet.load(archive_b)
    if a.ids() != b.ids():
        return False
    return all(np.array_equal(a[d], b[d]) for d in a.ids())


def main() -> int:
    from repro.db.store import DatabaseSet
    from repro.serve.client import ProbeClient

    tmp = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    reference = tmp / "reference.npz"

    print(f"== reference: fault-free {STONES}-stone solve")
    cli("solve", "--stones", str(STONES), "--out", str(reference))

    # ------------------------------------------------- 2: worker crash
    chaotic = tmp / "chaotic.npz"
    manifest_path = tmp / "chaotic.json"
    print("== chaos solve: 2 workers, one SIGKILLed mid-scan")
    cli("solve", "--stones", str(STONES), "--workers", "2",
        "--scan-chunk", "256",
        "--checkpoint-dir", str(tmp / "ck_chaos"),
        "--inject-fault", "kill-worker:chunk=2",
        "--fault-state-dir", str(tmp / "faults"),
        "--out", str(chaotic), "--metrics-out", str(manifest_path))
    if not identical(reference, chaotic):
        print("FAIL: fault-injected solve diverged", file=sys.stderr)
        return 1
    counters = json.loads(manifest_path.read_text())["metrics"]["counters"]
    retries = counters.get("resilience.retries", 0)
    rebuilds = counters.get("resilience.pool_rebuilds", 0)
    print(f"   bit-identical; retries={retries} pool_rebuilds={rebuilds}")
    if retries < 1 or rebuilds < 1:
        print("FAIL: the injected kill never fired", file=sys.stderr)
        return 1

    # ------------------------------------------- 3: kill-and-resume
    ck = tmp / "ck_resume"
    resumed = tmp / "resumed.npz"
    args = [sys.executable, "-m", "repro", "solve",
            "--stones", str(STONES), "--checkpoint-dir", str(ck),
            "--out", str(resumed)]
    print("== pipeline kill-and-resume: SIGKILL after db 3 checkpoints")
    victim = subprocess.Popen(args, stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            break  # finished before the kill — resume is then a no-op
        if (ck / "db_3.npy").exists():
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            break
        time.sleep(0.002)
    else:
        victim.kill()
        print("FAIL: pipeline never checkpointed db 3", file=sys.stderr)
        return 1
    out = cli(*args[3:])
    print("  ", out.strip().splitlines()[0])
    if not identical(reference, resumed):
        print("FAIL: resumed solve diverged", file=sys.stderr)
        return 1
    print("   bit-identical after resume")

    # ---------------------------------------------- 4: chaotic serving
    paged, ready = tmp / "db.pgdb", tmp / "ready"
    cli("page", str(reference), str(paged), "--block-positions", "256")
    dbs = DatabaseSet.load(reference)
    print("== serve: drop every 7th connection, sever after 100 responses")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(paged),
         "--cache-kb", "16", "--ready-file", str(ready),
         "--inject-fault", "drop-conn:every=7,after=100"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        host, port = wait_for(ready).split()
        rng = np.random.default_rng(2026)
        ids = dbs.ids()
        pairs = [
            (int(d), int(rng.integers(0, dbs[int(d)].shape[0])))
            for d in rng.choice(ids, size=N_PROBES)
        ]
        expected = np.array([int(dbs[d][i]) for d, i in pairs],
                            dtype=np.int16)
        with ProbeClient(host, int(port)) as client:
            got = [client.probe(*pairs[k]) for k in range(N_PROBES // 2)]
            for start in range(N_PROBES // 2, N_PROBES, BATCH):
                got.extend(client.probe_many(pairs[start:start + BATCH]))
            reconnects = client.reconnects
        mismatches = int((np.asarray(got, dtype=np.int16)
                          != expected).sum())
        print(f"   probed {N_PROBES} positions: {mismatches} mismatches, "
              f"{reconnects} reconnects")
        if mismatches:
            return 1
        if reconnects < 1:
            print("FAIL: the chaos server never forced a reconnect",
                  file=sys.stderr)
            return 1

        print("== SIGINT -> graceful shutdown")
        server.send_signal(signal.SIGINT)
        output, _ = server.communicate(timeout=30)
        if server.returncode != 0 or "server stopped" not in output:
            print(f"unclean shutdown (rc={server.returncode}):\n{output}",
                  file=sys.stderr)
            return 1
        print("== chaos smoke OK")
        return 0
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
