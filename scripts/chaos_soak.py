#!/usr/bin/env python
"""Self-healing cluster soak, used by the CI ``chaos-soak`` job.

Where ``cluster_smoke.py`` proves one failover, this soak proves the
full heal loop — failure detection, auto-restart, breaker
reinstatement — under sustained verified load:

1. solve — a fault-free reference database set
2. ``repro cluster split`` — two cyclic shards + ``cluster.json``
3. ``repro cluster up --replicas 1 --auto-restart`` — four shard
   servers plus the supervising monitor
4. 10,000 verified probes through a :class:`ShardRouter`; at staggered
   milestones *every* shard's primary is SIGKILLed in turn.  For each
   kill the soak demands: zero wrong answers while degraded, a
   ``cluster.failovers`` bump, and a supervisor respawn — same port,
   new pid — visible in the re-saved ``topology.json``
5. after the last respawn, the routers breakers must reinstate every
   primary: ``health_snapshot()`` all-closed and the active endpoint
   of each shard back on the primary port
6. SIGINT — the supervisor drains, writes ``--metrics-out`` (restart
   counters checked), and exits 0 with ``cluster stopped``

Exits non-zero on any mismatch, missed restart, missed reinstatement,
or unclean shutdown; writes a ``chaos-soak.json`` artifact.

Run:  PYTHONPATH=src python scripts/chaos_soak.py [artifact.json]
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

STONES = 5
N_SHARDS = 2
N_PROBES = 10_000
BATCH = 64
#: Probe index at which shard K's primary is SIGKILLed.
KILL_AT = {0: N_PROBES // 4, 1: N_PROBES // 2}
#: Breaker reset used by the soak router — short, so reinstatement
#: happens within the probe stream instead of after it.
BREAKER_RESET_SECONDS = 1.0
RESPAWN_TIMEOUT = 60.0


def wait_for(path: Path, timeout: float = 60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return path.read_text().strip()
        time.sleep(0.05)
    raise TimeoutError(f"cluster did not become ready within {timeout}s")


def cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def wait_for_respawn(topology_path: str, shard: int, old_pid: int,
                     port: int) -> int:
    """Poll the re-saved topology until shard's primary has a new pid
    on the *same* port; returns the new pid."""
    from repro.cluster.topology import ClusterTopology

    deadline = time.monotonic() + RESPAWN_TIMEOUT
    while time.monotonic() < deadline:
        try:
            endpoint = ClusterTopology.load(topology_path).endpoints[shard][0]
        except (OSError, ValueError, KeyError):
            time.sleep(0.1)  # mid-rewrite; the save is atomic, retry
            continue
        if endpoint.pid not in (None, old_pid):
            if endpoint.port != port:
                raise RuntimeError(
                    f"shard {shard} respawned on port {endpoint.port}, "
                    f"expected its original port {port}"
                )
            return endpoint.pid
        time.sleep(0.1)
    raise TimeoutError(
        f"shard {shard} primary (pid {old_pid}) was never respawned "
        f"within {RESPAWN_TIMEOUT}s"
    )


def main() -> int:
    from repro.cluster.router import ShardRouter
    from repro.cluster.topology import ClusterTopology
    from repro.db.store import DatabaseSet
    from repro.obs import MetricsRegistry
    from repro.resilience import ReconnectPolicy

    artifact = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "chaos-soak.json"
    )
    tmp = Path(tempfile.mkdtemp(prefix="chaos-soak-"))
    reference = tmp / "reference.npz"
    cluster_dir = tmp / "cluster"
    ready = tmp / "ready"
    metrics_out = tmp / "supervisor-metrics.json"

    print(f"== reference: fault-free {STONES}-stone solve")
    cli("solve", "--stones", str(STONES), "--out", str(reference))
    dbs = DatabaseSet.load(reference)

    print(f"== split into {N_SHARDS} cyclic shards")
    out = cli("cluster", "split", str(reference), str(cluster_dir),
              "--shards", str(N_SHARDS), "--block-positions", "256")
    print("  ", out.strip().splitlines()[0])

    print("== cluster up: --replicas 1 --auto-restart")
    supervisor = subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster", "up", str(cluster_dir),
         "--replicas", "1", "--cache-kb", "64",
         "--auto-restart", "--health-interval", "0.25",
         "--metrics-out", str(metrics_out),
         "--ready-file", str(ready)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        topology_path = wait_for(ready)
        topology = ClusterTopology.load(topology_path)
        primaries = {
            shard: topology.endpoints[shard][0]
            for shard in range(topology.n_shards)
        }
        for shard, endpoint in primaries.items():
            print(f"   shard {shard} primary pid {endpoint.pid} "
                  f"({endpoint.host}:{endpoint.port})")

        rng = np.random.default_rng(1995)
        ids = dbs.ids()
        pairs = [
            (int(d), int(rng.integers(0, dbs[int(d)].shape[0])))
            for d in rng.choice(ids, size=N_PROBES)
        ]
        expected = np.array([int(dbs[d][i]) for d, i in pairs],
                            dtype=np.int16)

        registry = MetricsRegistry()
        policy = ReconnectPolicy(connect_attempts=2, request_replays=1,
                                 backoff_seconds=0.05,
                                 backoff_max_seconds=0.2)
        got: list = []
        killed: dict = {}
        respawned: dict = {}
        print(f"== {N_PROBES} probes; SIGKILL each primary in turn at "
              + ", ".join(f"#{at}" for at in KILL_AT.values()))
        with ShardRouter.from_topology(
            topology, metrics=registry, policy=policy,
            breaker_reset_seconds=BREAKER_RESET_SECONDS,
        ) as router:
            for start in range(0, N_PROBES, BATCH):
                for shard, at in KILL_AT.items():
                    if shard not in killed and start >= at:
                        victim = primaries[shard]
                        os.kill(victim.pid, signal.SIGKILL)
                        killed[shard] = victim.pid
                        print(f"   #{start}: SIGKILL shard {shard} "
                              f"primary (pid {victim.pid})")
                got.extend(router.probe_many(pairs[start:start + BATCH]))

            mismatches = int(
                (np.asarray(got, dtype=np.int16) != expected).sum()
            )
            counters = dict(registry.counters)
            failovers = counters.get("cluster.failovers", 0)
            print(f"   {mismatches} mismatches, {failovers} failovers, "
                  f"{counters.get('cluster.shard_errors', 0)} shard "
                  f"errors")
            if mismatches:
                print("FAIL: the cluster returned wrong answers",
                      file=sys.stderr)
                return 1
            if len(killed) < N_SHARDS or failovers < N_SHARDS:
                print(f"FAIL: {len(killed)} kills forced only "
                      f"{failovers} failovers", file=sys.stderr)
                return 1

            print("== every killed primary must respawn: same port, "
                  "new pid")
            for shard, old_pid in killed.items():
                new_pid = wait_for_respawn(
                    topology_path, shard, old_pid, primaries[shard].port
                )
                respawned[shard] = new_pid
                print(f"   shard {shard}: pid {old_pid} -> {new_pid} "
                      f"on port {primaries[shard].port}")

            print("== breakers must reinstate the respawned primaries")
            time.sleep(BREAKER_RESET_SECONDS + 0.5)
            reinstated = []
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                reinstated = list(router.probe_many(pairs[:BATCH]))
                snapshot = router.health_snapshot()
                if all(states[0] == "closed" for states in snapshot):
                    break
                time.sleep(0.5)
            else:
                print(f"FAIL: breakers never reclosed: {snapshot}",
                      file=sys.stderr)
                return 1
            if list(reinstated) != [int(v) for v in expected[:BATCH]]:
                print("FAIL: wrong answers after reinstatement",
                      file=sys.stderr)
                return 1
            for shard, endpoint in primaries.items():
                active = router.active_endpoint(shard)
                if active.port != endpoint.port:
                    print(f"FAIL: shard {shard} still routes to "
                          f"port {active.port}, not its restored "
                          f"primary {endpoint.port}", file=sys.stderr)
                    return 1
            counters = dict(registry.counters)
            print(f"   all primaries reinstated "
                  f"({counters.get('cluster.breaker.closes', 0)} "
                  f"breaker closes)")

        print("== SIGINT -> drain, metrics artifact, 'cluster stopped'")
        supervisor.send_signal(signal.SIGINT)
        output, _ = supervisor.communicate(timeout=60)
        if supervisor.returncode != 0 or "cluster stopped" not in output:
            print(
                f"unclean shutdown (rc={supervisor.returncode}):\n{output}",
                file=sys.stderr,
            )
            return 1
        supervisor_metrics = json.loads(metrics_out.read_text())
        restarts = (
            supervisor_metrics.get("counters", {})
            .get("cluster.supervisor.restarts", 0)
        )
        if restarts < N_SHARDS:
            print(f"FAIL: supervisor counted only {restarts} restarts "
                  f"for {N_SHARDS} kills", file=sys.stderr)
            return 1

        artifact.write_text(json.dumps({
            "stones": STONES,
            "shards": N_SHARDS,
            "probes": N_PROBES,
            "mismatches": mismatches,
            "killed": {str(s): pid for s, pid in killed.items()},
            "respawned": {str(s): pid for s, pid in respawned.items()},
            "supervisor_restarts": restarts,
            "router_counters": counters,
        }, indent=2, sort_keys=True) + "\n")
        print(f"== chaos soak OK (artifact: {artifact})")
        return 0
    finally:
        if supervisor.poll() is None:
            supervisor.kill()


if __name__ == "__main__":
    sys.exit(main())
