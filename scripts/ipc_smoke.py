#!/usr/bin/env python
"""End-to-end IPC fan-out smoke test, used by the CI ``ipc-smoke`` job.

Both multiprocess fan-out paths, driven through the real CLI on a tiny
board and checked bit-for-bit against a sequential reference:

1. reference — single-process ``repro solve``
2. shared-memory fan-out (the default) — 2 workers; result must be
   identical and the manifest must report ``multiproc.ipc_bytes_saved``
   and ``multiproc.shm_segments``
3. pickle fan-out (``--no-shm``) — identical again, with every byte
   accounted under ``multiproc.ipc_bytes_pickled`` and the two paths'
   byte counts agreeing exactly
4. shared memory under fire — ``kill-worker:chunk=1`` injected; the
   replayed task re-writes its own arena region, so the database must
   still be bit-identical with ``resilience.retries >= 1``

Exits non-zero on any mismatch or missing counter.

Run:  PYTHONPATH=src python scripts/ipc_smoke.py
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

STONES = 5


def cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def identical(archive_a: Path, archive_b: Path) -> bool:
    from repro.db.store import DatabaseSet

    a, b = DatabaseSet.load(archive_a), DatabaseSet.load(archive_b)
    if a.ids() != b.ids():
        return False
    return all(np.array_equal(a[d], b[d]) for d in a.ids())


def counters_of(manifest_path: Path) -> dict:
    return json.loads(manifest_path.read_text())["metrics"]["counters"]


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="ipc-smoke-"))
    reference = tmp / "reference.npz"

    print(f"== reference: sequential {STONES}-stone solve")
    cli("solve", "--stones", str(STONES), "--out", str(reference))

    # ------------------------------------------- 2: shared-memory path
    shm_out, shm_manifest = tmp / "shm.npz", tmp / "shm.json"
    print("== shm fan-out: 2 workers, 256-position chunks")
    cli("solve", "--stones", str(STONES), "--workers", "2",
        "--scan-chunk", "256",
        "--out", str(shm_out), "--metrics-out", str(shm_manifest))
    if not identical(reference, shm_out):
        print("FAIL: shm solve diverged from sequential", file=sys.stderr)
        return 1
    shm = counters_of(shm_manifest)
    saved = shm.get("multiproc.ipc_bytes_saved", 0)
    segments = shm.get("multiproc.shm_segments", 0)
    print(f"   bit-identical; ipc_bytes_saved={saved} shm_segments={segments}")
    if saved < 1 or segments < 1:
        print("FAIL: shm path reported no arena traffic", file=sys.stderr)
        return 1

    # ------------------------------------------------- 3: pickle path
    pkl_out, pkl_manifest = tmp / "pickle.npz", tmp / "pickle.json"
    print("== pickle fan-out: same solve with --no-shm")
    cli("solve", "--stones", str(STONES), "--workers", "2",
        "--scan-chunk", "256", "--no-shm",
        "--out", str(pkl_out), "--metrics-out", str(pkl_manifest))
    if not identical(reference, pkl_out):
        print("FAIL: --no-shm solve diverged", file=sys.stderr)
        return 1
    pkl = counters_of(pkl_manifest)
    pickled = pkl.get("multiproc.ipc_bytes_pickled", 0)
    print(f"   bit-identical; ipc_bytes_pickled={pickled}")
    if pickled < 1:
        print("FAIL: pickle path reported no pickled bytes", file=sys.stderr)
        return 1
    if "multiproc.ipc_bytes_saved" in pkl:
        print("FAIL: pickle path claims shm savings", file=sys.stderr)
        return 1
    if shm.get("multiproc.ipc_bytes_pickled", 0) >= pickled:
        print("FAIL: shm path pickled at least as much as --no-shm",
              file=sys.stderr)
        return 1
    if saved != pickled:
        print(f"FAIL: byte accounting disagrees (saved={saved} "
              f"pickled={pickled})", file=sys.stderr)
        return 1

    # ---------------------------------------- 4: shm under worker kill
    fault_out, fault_manifest = tmp / "fault.npz", tmp / "fault.json"
    print("== shm fan-out with one worker SIGKILLed mid-scan")
    cli("solve", "--stones", str(STONES), "--workers", "2",
        "--scan-chunk", "256",
        "--inject-fault", "kill-worker:chunk=1",
        "--fault-state-dir", str(tmp / "faults"),
        "--out", str(fault_out), "--metrics-out", str(fault_manifest))
    if not identical(reference, fault_out):
        print("FAIL: fault-injected shm solve diverged", file=sys.stderr)
        return 1
    fault = counters_of(fault_manifest)
    retries = fault.get("resilience.retries", 0)
    print(f"   bit-identical; retries={retries} "
          f"ipc_bytes_saved={fault.get('multiproc.ipc_bytes_saved', 0)}")
    if retries < 1:
        print("FAIL: the injected kill never fired", file=sys.stderr)
        return 1

    print("== ipc smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
