#!/usr/bin/env python
"""End-to-end cluster smoke test, used by the CI ``cluster-smoke`` job.

The full cluster lifecycle against a real subprocess topology, with a
mid-stream kill:

1. solve — a fault-free reference database set
2. ``repro cluster split`` — two cyclic shards + ``cluster.json``
3. ``repro cluster up --replicas 1`` — four shard servers (2 shards x
   primary+replica) supervised by one subprocess
4. 1,000 verified probes through a :class:`ShardRouter`; one third of
   the way in, shard 0's primary is SIGKILLed — the router must fail
   over to the replica with **zero** wrong answers and count the event
   on ``cluster.failovers``
5. ``repro cluster probe`` — the CLI path answers over the degraded
   topology
6. SIGINT — the supervisor reaps the surviving servers and exits 0
   with ``cluster stopped``

Exits non-zero on any mismatch, missing counter, or unclean shutdown;
writes a ``cluster-smoke.json`` artifact with the run's numbers.

Run:  PYTHONPATH=src python scripts/cluster_smoke.py [artifact.json]
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

STONES = 6
N_PROBES = 1_000
BATCH = 64
KILL_AT = N_PROBES // 3


def wait_for(path: Path, timeout: float = 60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return path.read_text().strip()
        time.sleep(0.05)
    raise TimeoutError(f"cluster did not become ready within {timeout}s")


def cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def main() -> int:
    from repro.cluster.router import ShardRouter
    from repro.cluster.topology import ClusterTopology
    from repro.db.store import DatabaseSet
    from repro.obs import MetricsRegistry
    from repro.resilience import ReconnectPolicy

    artifact = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "cluster-smoke.json"
    )
    tmp = Path(tempfile.mkdtemp(prefix="cluster-smoke-"))
    reference = tmp / "reference.npz"
    cluster_dir = tmp / "cluster"
    ready = tmp / "ready"

    print(f"== reference: fault-free {STONES}-stone solve")
    cli("solve", "--stones", str(STONES), "--out", str(reference))
    dbs = DatabaseSet.load(reference)

    print("== split into 2 cyclic shards")
    out = cli("cluster", "split", str(reference), str(cluster_dir),
              "--shards", "2", "--block-positions", "256")
    print("  ", out.strip().splitlines()[0])

    print("== cluster up: 2 shards x (primary + 1 replica)")
    supervisor = subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster", "up", str(cluster_dir),
         "--replicas", "1", "--cache-kb", "64",
         "--ready-file", str(ready)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        topology_path = wait_for(ready)
        topology = ClusterTopology.load(topology_path)
        victim = topology.endpoints[0][0]
        print(f"   {len(topology.endpoints)} shards, "
              f"{topology.n_endpoints} endpoints; victim pid {victim.pid} "
              f"({victim.host}:{victim.port})")

        rng = np.random.default_rng(2026)
        ids = dbs.ids()
        pairs = [
            (int(d), int(rng.integers(0, dbs[int(d)].shape[0])))
            for d in rng.choice(ids, size=N_PROBES)
        ]
        expected = np.array([int(dbs[d][i]) for d, i in pairs],
                            dtype=np.int16)

        registry = MetricsRegistry()
        policy = ReconnectPolicy(connect_attempts=2, request_replays=1,
                                 backoff_seconds=0.05,
                                 backoff_max_seconds=0.2)
        got: list = []
        killed = False
        print(f"== {N_PROBES} probes, SIGKILL shard 0 primary at "
              f"#{KILL_AT}")
        with ShardRouter.from_topology(
            topology, metrics=registry, policy=policy
        ) as router:
            for start in range(0, N_PROBES, BATCH):
                if not killed and start >= KILL_AT:
                    os.kill(victim.pid, signal.SIGKILL)
                    killed = True
                got.extend(router.probe_many(pairs[start:start + BATCH]))

        mismatches = int(
            (np.asarray(got, dtype=np.int16) != expected).sum()
        )
        counters = dict(registry.counters)
        failovers = counters.get("cluster.failovers", 0)
        print(f"   {mismatches} mismatches, {failovers} failovers, "
              f"{counters.get('cluster.shard_errors', 0)} shard errors")
        if mismatches:
            print("FAIL: the cluster returned wrong answers",
                  file=sys.stderr)
            return 1
        if not killed or failovers < 1:
            print("FAIL: the kill never forced a failover",
                  file=sys.stderr)
            return 1

        print("== CLI probe over the degraded topology")
        top = ids[-1]
        out = cli("cluster", "probe", "--topology", topology_path,
                  "--db", str(top), "--index", "0", "--stats")
        first = out.strip().splitlines()[0]
        print("  ", first)
        want = f"value {int(dbs[top][0]):+d}"
        if want not in first:
            print(f"FAIL: CLI probe answered {first!r}, wanted {want!r}",
                  file=sys.stderr)
            return 1

        print("== SIGINT -> graceful shutdown of the survivors")
        supervisor.send_signal(signal.SIGINT)
        output, _ = supervisor.communicate(timeout=30)
        if supervisor.returncode != 0 or "cluster stopped" not in output:
            print(
                f"unclean shutdown (rc={supervisor.returncode}):\n{output}",
                file=sys.stderr,
            )
            return 1

        artifact.write_text(json.dumps({
            "stones": STONES,
            "probes": N_PROBES,
            "mismatches": mismatches,
            "killed_pid": victim.pid,
            "counters": counters,
        }, indent=2, sort_keys=True) + "\n")
        print(f"== cluster smoke OK (artifact: {artifact})")
        return 0
    finally:
        if supervisor.poll() is None:
            supervisor.kill()


if __name__ == "__main__":
    sys.exit(main())
