#!/usr/bin/env python
"""Staticcheck smoke test, used by the CI ``staticcheck`` job.

Two halves.  First the analyzer surface itself:

0. CLI surface — a seeded lock-discipline violation must come back as
   an RA007 result through ``--format sarif`` (valid SARIF 2.1.0, all
   rules advertised in the driver), ``--sarif-out`` must write the
   same document, and ``--changed-only`` must run without error in a
   git work tree.

Then the ShmArena race detector under real fire, driven through the
CLI and checked bit-for-bit against a sequential reference:

1. detector sanity — a deliberately overlapping pair of claims must
   raise ``ShmRaceError`` (in-process)
2. reference — single-process ``repro solve``
3. ``--shm-debug`` solve — bit-identical, and the manifest must report
   ``multiproc.shm_claims_checked``
4. production solve — the debug counter must NOT appear, and
   ``multiproc.shm_segments`` must match the debug run (the ledger
   lives outside the accounting)
5. ``--shm-debug`` with ``kill-worker:chunk=1`` injected — the
   replayed task overwrites its own claim, so the run must stay
   silent (zero overlap reports), bit-identical, with the kill
   actually fired (``resilience.retries >= 1``)

Exits non-zero on any overlap report, mismatch, or missing counter.

Run:  PYTHONPATH=src python scripts/staticcheck_smoke.py
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

STONES = 5


def cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def identical(archive_a: Path, archive_b: Path) -> bool:
    from repro.db.store import DatabaseSet

    a, b = DatabaseSet.load(archive_a), DatabaseSet.load(archive_b)
    if a.ids() != b.ids():
        return False
    return all(np.array_equal(a[d], b[d]) for d in a.ids())


def counters_of(manifest_path: Path) -> dict:
    return json.loads(manifest_path.read_text())["metrics"]["counters"]


def detector_detects() -> bool:
    """The ledger must actually catch a deliberate overlap."""
    from repro.core.shm import ShmArena, ShmRaceError

    with ShmArena(debug=True) as arena:
        arena.alloc("values", (100,), np.int16)
        arena.enable_claims(2)
        arena.claim("values", 0, 60, slot=0, owner=1)
        arena.claim("values", 50, 100, slot=1, owner=2)
        try:
            arena.check_claims()
        except ShmRaceError:
            return True
    return False


_SEEDED_RACE = '''\
import threading


class Shared:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: self._lock

    def bump(self):
        self.count += 1
'''


def analyzer_surface(tmp: Path) -> bool:
    """SARIF + --changed-only round trip against a seeded RA007 race."""
    seeded_root = tmp / "seeded-tree"
    seeded = seeded_root / "src" / "repro" / "seeded.py"
    seeded.parent.mkdir(parents=True)
    seeded.write_text(_SEEDED_RACE)
    sarif_path = tmp / "seeded.sarif"
    result = subprocess.run(
        [sys.executable, "-m", "repro", "staticcheck", "src",
         "--root", str(seeded_root), "--format", "sarif",
         "--sarif-out", str(sarif_path)],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode != 1:
        print(f"FAIL: seeded race exited {result.returncode}, wanted 1:\n"
              f"{result.stdout}{result.stderr}", file=sys.stderr)
        return False
    doc = json.loads(result.stdout)
    if doc.get("version") != "2.1.0":
        print("FAIL: not a SARIF 2.1.0 document", file=sys.stderr)
        return False
    run = doc["runs"][0]
    advertised = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    wanted = {f"RA{n:03d}" for n in range(1, 12)}
    if not wanted <= advertised:
        print(f"FAIL: driver missing rules {sorted(wanted - advertised)}",
              file=sys.stderr)
        return False
    ra007 = [
        r for r in run["results"]
        if r["ruleId"] == "RA007"
        and r["locations"][0]["physicalLocation"]["artifactLocation"]
        ["uri"] == "src/repro/seeded.py"
    ]
    if not ra007:
        print("FAIL: seeded guarded-by race produced no RA007 SARIF "
              "result", file=sys.stderr)
        return False
    if sarif_path.read_text() != result.stdout:
        print("FAIL: --sarif-out differs from --format sarif stdout",
              file=sys.stderr)
        return False
    result = subprocess.run(
        [sys.executable, "-m", "repro", "staticcheck", "src",
         "--changed-only"],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode not in (0, 1):
        print(f"FAIL: --changed-only exited {result.returncode}:\n"
              f"{result.stdout}{result.stderr}", file=sys.stderr)
        return False
    line = (result.stdout.strip().splitlines() or ["(no output)"])[-1]
    print(f"   RA007 via SARIF at line "
          f"{ra007[0]['locations'][0]['physicalLocation']['region']['startLine']}; "
          f"--changed-only: {line}")
    return True


def main() -> int:
    tmp_surface = Path(tempfile.mkdtemp(prefix="staticcheck-surface-"))
    print("== analyzer surface: seeded race -> SARIF; --changed-only")
    if not analyzer_surface(tmp_surface):
        return 1

    print("== detector sanity: overlapping claims must raise")
    if not detector_detects():
        print("FAIL: a deliberate overlap went undetected", file=sys.stderr)
        return 1

    tmp = Path(tempfile.mkdtemp(prefix="staticcheck-smoke-"))
    reference = tmp / "reference.npz"
    print(f"== reference: sequential {STONES}-stone solve")
    cli("solve", "--stones", str(STONES), "--out", str(reference))

    # --------------------------------------------- 3: --shm-debug solve
    dbg_out, dbg_manifest = tmp / "debug.npz", tmp / "debug.json"
    print("== --shm-debug solve: 2 workers, 256-position chunks")
    cli("solve", "--stones", str(STONES), "--workers", "2",
        "--scan-chunk", "256", "--shm-debug",
        "--out", str(dbg_out), "--metrics-out", str(dbg_manifest))
    if not identical(reference, dbg_out):
        print("FAIL: --shm-debug solve diverged", file=sys.stderr)
        return 1
    dbg = counters_of(dbg_manifest)
    claims = dbg.get("multiproc.shm_claims_checked", 0)
    print(f"   bit-identical; shm_claims_checked={claims}")
    if claims < 1:
        print("FAIL: debug run validated no claims", file=sys.stderr)
        return 1

    # ------------------------------- 4: production run, counter absent
    plain_out, plain_manifest = tmp / "plain.npz", tmp / "plain.json"
    print("== production solve: the debug counter must stay absent")
    cli("solve", "--stones", str(STONES), "--workers", "2",
        "--scan-chunk", "256",
        "--out", str(plain_out), "--metrics-out", str(plain_manifest))
    plain = counters_of(plain_manifest)
    if "multiproc.shm_claims_checked" in plain:
        print("FAIL: production run reports the debug counter",
              file=sys.stderr)
        return 1
    if plain.get("multiproc.shm_segments") != dbg.get(
            "multiproc.shm_segments"):
        print("FAIL: the claims ledger leaked into shm_segments",
              file=sys.stderr)
        return 1

    # ------------------------------ 5: kill-replay must stay silent
    fault_out, fault_manifest = tmp / "fault.npz", tmp / "fault.json"
    print("== --shm-debug with one worker SIGKILLed mid-scan")
    cli("solve", "--stones", str(STONES), "--workers", "2",
        "--scan-chunk", "256", "--shm-debug",
        "--inject-fault", "kill-worker:chunk=1",
        "--fault-state-dir", str(tmp / "faults"),
        "--out", str(fault_out), "--metrics-out", str(fault_manifest))
    if not identical(reference, fault_out):
        print("FAIL: fault-injected debug solve diverged", file=sys.stderr)
        return 1
    fault = counters_of(fault_manifest)
    retries = fault.get("resilience.retries", 0)
    claims = fault.get("multiproc.shm_claims_checked", 0)
    print(f"   bit-identical; retries={retries} "
          f"shm_claims_checked={claims}")
    if retries < 1:
        print("FAIL: the injected kill never fired", file=sys.stderr)
        return 1
    if claims < 1:
        print("FAIL: kill-replay run validated no claims", file=sys.stderr)
        return 1

    print("== staticcheck smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
