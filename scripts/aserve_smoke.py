#!/usr/bin/env python
"""End-to-end binary-serving smoke test, used by the CI ``aserve-smoke`` job.

The full ``repro.aserve`` lifecycle against a real server subprocess:

1. solve — a fault-free reference database set
2. ``repro page`` — a zlib paged store plus a ``--codec raw`` twin for
   the mmap path
3. ``repro serve --protocol binary`` — the asyncio server as a
   subprocess, readiness via ``--ready-file``
4. 1,000 verified probes through one pipelined
   :class:`~repro.aserve.client.BinaryProbeClient` connection —
   every batch in flight at once, every answer checked
5. a legacy JSON :class:`~repro.serve.client.ProbeClient` on the SAME
   port — the version-byte fallback, plus a deliberate garbage frame
   that must come back as a well-formed ``ok: false``
6. :class:`~repro.aserve.local.LocalProbeClient` over the raw store —
   the zero-copy mmap path, verified against the same oracle
7. ``repro probe --endpoint`` — the CLI front door for both the TCP
   and the local endpoint forms
8. SIGINT — the server drains and exits 0 printing ``server stopped``

Exits non-zero on any mismatch or unclean shutdown; writes an
``aserve-smoke.json`` artifact with the run's numbers.

Run:  PYTHONPATH=src python scripts/aserve_smoke.py [artifact.json]
"""

import json
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

STONES = 6
N_PROBES = 1_000
BATCH = 64
PIPELINE_DEPTH = 16


def wait_for(path: Path, timeout: float = 60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return path.read_text().strip()
        time.sleep(0.05)
    raise TimeoutError(f"server did not become ready within {timeout}s")


def cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def garbage_frame_rejected(host: str, port: int) -> bool:
    """Send a garbage first frame; the reply must be well-formed
    ``ok: false`` JSON and the connection must close — never a hang."""
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(struct.pack(">I", 4) + b"\x00\xde\xad\xbf")
        head = b""
        while len(head) < 4:
            chunk = sock.recv(4 - len(head))
            if not chunk:
                return False
            head += chunk
        (length,) = struct.unpack(">I", head)
        payload = b""
        while len(payload) < length:
            chunk = sock.recv(length - len(payload))
            if not chunk:
                return False
            payload += chunk
        response = json.loads(payload.decode())
        closed = sock.recv(1) == b""
    return response.get("ok") is False and closed


def main() -> int:
    from repro.aserve.client import BinaryProbeClient
    from repro.aserve.local import LocalProbeClient
    from repro.db.store import DatabaseSet
    from repro.serve.client import ProbeClient

    artifact = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "aserve-smoke.json"
    )
    tmp = Path(tempfile.mkdtemp(prefix="aserve-smoke-"))
    reference = tmp / "reference.npz"
    zlib_store = tmp / "store-zlib.pgdb"
    raw_store = tmp / "store-raw.pgdb"
    ready = tmp / "ready"

    print(f"== reference: fault-free {STONES}-stone solve")
    cli("solve", "--stones", str(STONES), "--out", str(reference))
    dbs = DatabaseSet.load(reference)

    print("== page: zlib store + raw twin for the mmap path")
    cli("page", str(reference), str(zlib_store), "--block-positions", "256")
    cli("page", str(reference), str(raw_store), "--block-positions", "256",
        "--codec", "raw")

    rng = np.random.default_rng(2026)
    ids = dbs.ids()
    pairs = [
        (int(d), int(rng.integers(0, dbs[int(d)].shape[0])))
        for d in rng.choice(ids, size=N_PROBES)
    ]
    expected = np.array([int(dbs[d][i]) for d, i in pairs], dtype=np.int16)
    batches = [pairs[k:k + BATCH] for k in range(0, N_PROBES, BATCH)]

    print("== serve --protocol binary (subprocess)")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(zlib_store),
         "--protocol", "binary", "--cache-kb", "64",
         "--ready-file", str(ready)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        host, port = wait_for(ready).split()
        port = int(port)
        print(f"   listening on {host}:{port}")

        print(f"== {N_PROBES} pipelined binary probes "
              f"(depth {PIPELINE_DEPTH}) on one connection")
        with BinaryProbeClient(host, port) as client:
            got: list = []
            for first in range(0, len(batches), PIPELINE_DEPTH):
                got.extend(np.concatenate(
                    client.pipeline(batches[first:first + PIPELINE_DEPTH])
                ))
            binary_mismatches = int(
                (np.asarray(got, dtype=np.int16) != expected).sum()
            )
            stats = client.stats()
        print(f"   {binary_mismatches} mismatches "
              f"(backend {stats['backend']})")
        if binary_mismatches:
            print("FAIL: binary answers diverged", file=sys.stderr)
            return 1

        print("== legacy JSON client on the same port")
        with ProbeClient(host, port) as client:
            json_got = np.concatenate(
                [client.probe_many(b) for b in batches]
            )
        json_mismatches = int((json_got != expected).sum())
        print(f"   {json_mismatches} mismatches")
        if json_mismatches:
            print("FAIL: JSON fallback diverged", file=sys.stderr)
            return 1

        print("== garbage first frame -> well-formed ok:false")
        if not garbage_frame_rejected(host, port):
            print("FAIL: garbage frame was not cleanly rejected",
                  file=sys.stderr)
            return 1
        print("   rejected and closed")

        print("== zero-copy mmap local path (raw codec)")
        with LocalProbeClient(raw_store) as client:
            local_got = np.concatenate(
                [client.probe_many(b) for b in batches]
            )
        local_mismatches = int((local_got != expected).sum())
        print(f"   {local_mismatches} mismatches")
        if local_mismatches:
            print("FAIL: mmap local path diverged", file=sys.stderr)
            return 1

        print("== CLI probe: TCP endpoint and local endpoint")
        top, want = ids[-1], f"value {int(dbs[ids[-1]][0]):+d}"
        for endpoint in (f"{host}:{port}", str(raw_store)):
            out = cli("probe", "--endpoint", endpoint,
                      "--db", str(top), "--index", "0")
            first = out.strip().splitlines()[0]
            print(f"   {endpoint} -> {first}")
            if want not in first:
                print(f"FAIL: CLI probe answered {first!r}, "
                      f"wanted {want!r}", file=sys.stderr)
                return 1

        print("== SIGINT -> graceful shutdown")
        server.send_signal(signal.SIGINT)
        output, _ = server.communicate(timeout=30)
        if server.returncode != 0 or "server stopped" not in output:
            print(
                f"unclean shutdown (rc={server.returncode}):\n{output}",
                file=sys.stderr,
            )
            return 1

        artifact.write_text(json.dumps({
            "stones": STONES,
            "probes": N_PROBES,
            "pipeline_depth": PIPELINE_DEPTH,
            "binary_mismatches": binary_mismatches,
            "json_mismatches": json_mismatches,
            "local_mismatches": local_mismatches,
        }, indent=2, sort_keys=True) + "\n")
        print(f"== aserve smoke OK (artifact: {artifact})")
        return 0
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
