#!/usr/bin/env python
"""End-to-end serving smoke test, used by the CI ``serve-smoke`` job.

Drives the full CLI surface the way an operator would, with the server
in a real subprocess:

1. ``repro solve``  — build a small awari database archive
2. ``repro page``   — convert it to the paged serving format
3. ``repro serve``  — start a TCP probe server (subprocess, ready-file)
4. probe it: 1,000 mixed single/batched probes through
   :class:`~repro.serve.client.ProbeClient` plus ``repro probe`` CLI
   invocations, every value checked against the in-memory ground truth
5. SIGINT the server and require a clean, zero-status shutdown

Exits non-zero on any mismatch or protocol failure.

Run:  PYTHONPATH=src python scripts/serve_smoke.py
"""

import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

STONES = 5
N_PROBES = 1_000
BATCH = 64


def wait_for(path: Path, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return path.read_text().strip()
        time.sleep(0.05)
    raise TimeoutError(f"server did not become ready within {timeout}s")


def cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def main() -> int:
    from repro.db.store import DatabaseSet
    from repro.serve.client import ProbeClient

    tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    archive, paged, ready = tmp / "db.npz", tmp / "db.pgdb", tmp / "ready"

    print(f"== solve: {STONES}-stone awari ->", archive)
    cli("solve", "--stones", str(STONES), "--out", str(archive))
    print("== page:", cli("page", str(archive), str(paged),
                          "--block-positions", "256").strip())

    dbs = DatabaseSet.load(archive)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(paged),
         "--cache-kb", "4", "--ready-file", str(ready)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        host, port = wait_for(ready).split()
        print(f"== server ready on {host}:{port} (cache 4 KiB)")

        rng = np.random.default_rng(2026)
        ids = dbs.ids()
        pairs = [
            (int(d), int(rng.integers(0, dbs[int(d)].shape[0])))
            for d in rng.choice(ids, size=N_PROBES)
        ]
        expected = np.array(
            [int(dbs[d][i]) for d, i in pairs], dtype=np.int16
        )

        mismatches = 0
        with ProbeClient(host, int(port)) as client:
            assert client.ping(), "ping failed"
            got = [client.probe(*pairs[k]) for k in range(N_PROBES // 2)]
            for start in range(N_PROBES // 2, N_PROBES, BATCH):
                got.extend(client.probe_many(pairs[start:start + BATCH]))
            mismatches = int((np.asarray(got, dtype=np.int16)
                              != expected).sum())
            stats = client.stats()
        print(f"== probed {N_PROBES} positions "
              f"(half single, half batched): {mismatches} mismatches, "
              f"cache hit rate {100 * stats['hit_rate']:.0f}%")
        if mismatches:
            return 1

        d, i = pairs[0]
        out = cli("probe", "--port", port, "--db", str(d),
                  "--index", str(i))
        want = f"value {int(expected[0]):+d}"
        print("== repro probe CLI:", out.strip())
        if want not in out:
            print(f"CLI probe mismatch: wanted {want!r}", file=sys.stderr)
            return 1
        board = ",".join(["0"] * 7 + ["1", "1", "1", "1", "1"])
        out = cli("probe", "--port", port, "--board", board, "--stats")
        if "value for the mover" not in out or "hit_rate" not in out:
            print("CLI best-move/stats output malformed", file=sys.stderr)
            return 1

        print("== SIGINT -> graceful shutdown")
        server.send_signal(signal.SIGINT)
        output, _ = server.communicate(timeout=30)
        if server.returncode != 0 or "server stopped" not in output:
            print(f"unclean shutdown (rc={server.returncode}):\n{output}",
                  file=sys.stderr)
            return 1
        print("== smoke OK")
        return 0
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
