#!/usr/bin/env python
"""Bit-packed codec smoke test, used by the CI ``codec-smoke`` job.

Drives the packed codec the way an operator would, end to end:

1. ``repro solve``  — build a small awari database archive
2. ``repro page --codec <codec>`` for every codec — sizes compared,
   written to ``codec_smoke.json`` (uploaded as a CI artifact)
3. ``repro serve``  — serve the **packed** store in a subprocess
4. probe it: 1,000 verified probes through
   :class:`~repro.serve.client.ProbeClient`, every value checked against
   the in-memory ground truth, plus the mmap local fast path
   (bulk-unpack mode) over the same packed file
5. SIGINT the server and require a clean, zero-status shutdown

Exits non-zero on any mismatch, size regression, or protocol failure.

Run:  PYTHONPATH=src python scripts/codec_smoke.py [artifact.json]
"""

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

STONES = 5
N_PROBES = 1_000
BATCH = 64
CODECS = ("zlib", "raw", "packed", "packed+zlib")


def wait_for(path: Path, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return path.read_text().strip()
        time.sleep(0.05)
    raise TimeoutError(f"server did not become ready within {timeout}s")


def cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def main() -> int:
    from repro.aserve.local import LocalProbeClient
    from repro.db.store import DatabaseSet
    from repro.serve.client import ProbeClient
    from repro.serve.pagedstore import PagedStore

    artifact = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.gettempdir()
    ) / "codec_smoke.json"
    tmp = Path(tempfile.mkdtemp(prefix="codec-smoke-"))
    archive, ready = tmp / "db.npz", tmp / "ready"

    print(f"== solve: {STONES}-stone awari ->", archive)
    cli("solve", "--stones", str(STONES), "--out", str(archive))
    dbs = DatabaseSet.load(archive)

    sizes = {}
    for codec in CODECS:
        path = tmp / f"db-{codec.replace('+', '-')}.pgdb"
        out = cli("page", str(archive), str(path),
                  "--block-positions", "256", "--codec", codec)
        print(f"== page --codec {codec}:", out.strip().splitlines()[-1])
        with PagedStore(path) as store:
            stored = sum(
                store.stored_block_bytes(db_id, b)
                for db_id in store.ids()
                for b in range(store.n_blocks(db_id))
            )
        sizes[codec] = {
            "file_bytes": path.stat().st_size,
            "stored_bytes": stored,
        }
    if sizes["packed"]["stored_bytes"] >= sizes["raw"]["stored_bytes"]:
        print("packed codec did not beat raw on disk", file=sys.stderr)
        return 1

    packed_path = tmp / "db-packed.pgdb"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(packed_path),
         "--cache-kb", "4", "--ready-file", str(ready)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        host, port = wait_for(ready).split()
        print(f"== server ready on {host}:{port} (packed store, cache 4 KiB)")

        rng = np.random.default_rng(2026)
        ids = dbs.ids()
        pairs = [
            (int(d), int(rng.integers(0, dbs[int(d)].shape[0])))
            for d in rng.choice(ids, size=N_PROBES)
        ]
        expected = np.array(
            [int(dbs[d][i]) for d, i in pairs], dtype=np.int16
        )

        with ProbeClient(host, int(port)) as client:
            assert client.ping(), "ping failed"
            info = client.info()
            if info.get("codec") != "packed":
                print(f"server reports codec {info.get('codec')!r}, "
                      "wanted 'packed'", file=sys.stderr)
                return 1
            got = [client.probe(*pairs[k]) for k in range(N_PROBES // 2)]
            for start in range(N_PROBES // 2, N_PROBES, BATCH):
                got.extend(client.probe_many(pairs[start:start + BATCH]))
            mismatches = int((np.asarray(got, dtype=np.int16)
                              != expected).sum())
            stats = client.stats()
        print(f"== probed {N_PROBES} positions over TCP: "
              f"{mismatches} mismatches, cache hit rate "
              f"{100 * stats['hit_rate']:.0f}%")
        if mismatches:
            return 1

        with LocalProbeClient(packed_path) as local:
            if local.mode != "unpacked":
                print(f"local fast path mode {local.mode!r}, wanted "
                      "'unpacked'", file=sys.stderr)
                return 1
            local_got = local.probe_many(pairs)
        local_mismatches = int((local_got != expected).sum())
        print(f"== mmap bulk-unpack path: {local_mismatches} mismatches")
        if local_mismatches:
            return 1

        result = {
            "schema": "repro/codec-smoke/v1",
            "stones": STONES,
            "positions": int(dbs.total_positions),
            "value_bytes": int(2 * dbs.total_positions),
            "n_probes": N_PROBES,
            "sizes": sizes,
            "packed_vs_raw": (
                sizes["raw"]["stored_bytes"]
                / sizes["packed"]["stored_bytes"]
            ),
        }
        artifact.write_text(json.dumps(result, indent=2) + "\n")
        print(f"== size artifact -> {artifact} "
              f"(packed {result['packed_vs_raw']:.2f}x smaller than raw)")

        print("== SIGINT -> graceful shutdown")
        server.send_signal(signal.SIGINT)
        output, _ = server.communicate(timeout=30)
        if server.returncode != 0 or "server stopped" not in output:
            print(f"unclean shutdown (rc={server.returncode}):\n{output}",
                  file=sys.stderr)
            return 1
        print("== smoke OK")
        return 0
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
