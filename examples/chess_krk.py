#!/usr/bin/env python
"""Build the KRK chess tablebase — retrograde analysis' original home.

Solves king+rook vs king exactly (the classic Thompson-style endgame
database), prints the distance-to-mate histogram and replays the longest
forced mate.  The famous theoretical bound — white mates in at most 16
moves — drops out of the solver's depth array.

Run:  python examples/chess_krk.py
"""

import numpy as np

from repro.core.values import UNKNOWN, WIN
from repro.core.wdl import solve_wdl
from repro.games.krk import WHITE, KRKGame


def main() -> None:
    game = KRKGame()
    print("solving KRK by retrograde analysis ...")
    sol = solve_wdl(game, chunk=1 << 15)

    idx = np.arange(game.size - 1)
    legal = game.legal_mask(idx)
    stm, _, _, _ = game.decode(idx)
    wtm = legal & (stm == WHITE)
    win = wtm & (sol.status[:-1] == WIN)
    print(f"legal positions: {int(legal.sum()):,}")
    print(f"white to move:   {int(wtm.sum()):,} — all winning: {bool((sol.status[:-1][wtm] == WIN).all())}")

    depths = sol.depth[:-1][win]
    moves = (depths + 1) // 2
    print(f"\ndistance-to-mate histogram (white to move, in moves):")
    for m in range(1, int(moves.max()) + 1):
        count = int((moves == m).sum())
        print(f"  mate in {m:>2}: {count:>8,} {'#' * (count // 2500)}")
    print(f"\nlongest forced mate: {int(moves.max())} moves "
          "(the classic KRK bound)")

    # Replay one longest mate following the depth gradient: the winner
    # minimizes the successor's distance, the defender maximizes it.
    hardest = int(idx[win][np.argmax(depths)])
    print(f"\nhardest position: {game.describe(hardest)}")
    line = []
    cur = hardest
    for _ in range(40):
        scan = game.scan_chunk(cur, cur + 1)
        if scan.terminal[0]:
            break
        succ = scan.succ_index[0][scan.legal[0]]
        if sol.status[cur] == WIN:
            # Winning side: move to a lost-for-the-opponent successor of
            # minimal distance (never to a draw, e.g. a hanging rook).
            lost = succ[sol.status[succ] == 2]
            nxt = lost[np.argmin(sol.depth[lost])]
        else:
            # Defender: every move loses; resist as long as possible.
            nxt = succ[np.argmax(sol.depth[succ])]
        line.append(game.describe(int(nxt)))
        cur = int(nxt)
    print("forced line (first 8 positions):")
    for step in line[:8]:
        print(f"  {step}")
    print(f"  ... checkmate after {len(line)} plies")
    assert len(line) == int(depths.max())


if __name__ == "__main__":
    main()
