#!/usr/bin/env python
"""Play out awari endgames perfectly from the databases.

Demonstrates the application the paper motivates: once the endgame
database is built, any position it covers is *solved* — the program
announces the exact outcome and plays a perfect line.

Run:  python examples/endgame_play.py
"""

import numpy as np

from repro import solve_awari
from repro.db import optimal_line
from repro.games import AwariCaptureGame

STONES = 7


def describe(value: int) -> str:
    if value > 0:
        return f"the mover captures {value} more stone(s) than the opponent"
    if value < 0:
        return f"the opponent captures {-value} more stone(s) under best play"
    return "perfectly balanced: optimal play captures nothing for either side"


def main() -> None:
    dbs, _ = solve_awari(STONES)
    game = AwariCaptureGame()
    rng = np.random.default_rng(7)

    print("three random endgames, solved exactly:\n")
    indexer = game.engine.indexer(STONES)
    for idx in rng.integers(0, indexer.count, size=3):
        board = indexer.unrank(np.array([idx]))[0]
        value = int(dbs[STONES][idx])
        print(game.engine.board_to_string(board))
        print(f"database value: {value:+d} — {describe(value)}")
        realized, pits = optimal_line(game, dbs, board)
        shown = ", ".join(str(p) for p in pits[:12])
        more = " ..." if len(pits) > 12 else ""
        print(f"perfect line (pits): {shown}{more}")
        print(f"realized capture difference: {realized:+d}")
        assert realized == value, "replay must realize the stored value"
        print()


if __name__ == "__main__":
    main()
