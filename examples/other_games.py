#!/usr/bin/env python
"""Retrograde analysis beyond awari: the generic WDL solver.

The paper presents RA as a general endgame technique ("applied
successfully to several games").  This example runs the same propagation
kernel on two other substrates:

* nim — converging, no draws, validated against Sprague-Grundy theory;
* a cyclic graph game — where draw detection (positions neither side can
  win) is the whole point.

Run:  python examples/other_games.py
"""

import numpy as np

from repro import LoopyGraphGame, NimGame, solve_wdl_game

def nim_demo() -> None:
    game = NimGame(heaps=3, cap=7)
    sol = solve_wdl_game(game)
    oracle = game.oracle_win(np.arange(game.size))
    agree = (sol.status == 1) == oracle
    print(f"nim {game.heaps}x{game.cap}: {game.size} positions")
    print(f"  wins {sol.wins}, losses {sol.losses}, draws {sol.draws}")
    print(f"  agreement with Sprague-Grundy oracle: {agree.all()}")
    # Distance-to-win of the classic (1, 2, 3) position: it is a LOSS.
    p = int(game.encode(np.array([1, 2, 3])))
    print(f"  position (1,2,3): {'WIN' if sol.status[p] == 1 else 'LOSS'} "
          f"in {sol.depth[p]} plies\n")


def loopy_demo() -> None:
    # A corridor with an escape loop: 0..3 chain into a terminal loss at 4,
    # but 2 can also dodge into a 2-cycle with 5.
    game = LoopyGraphGame(
        successors=[[1], [2], [3, 5], [4], [], [2]],
        name="corridor-with-refuge",
    )
    sol = solve_wdl_game(game)
    names = {0: "draw", 1: "win", 2: "loss"}
    print("cyclic graph game (position: outcome for the mover):")
    for p in range(game.size):
        print(f"  {p}: {names[int(sol.status[p])]}"
              + (f" in {sol.depth[p]} plies" if sol.status[p] else ""))
    print("  -> position 2 escapes the lost corridor into the draw cycle")


def main() -> None:
    """Run both demos."""
    nim_demo()
    loopy_demo()


if __name__ == "__main__":
    main()
