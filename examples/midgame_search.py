#!/usr/bin/env python
"""Using endgame databases inside a game-playing search.

The paper's motivation: endgame databases turn the hardest part of
awari — long tactical endings — into table lookups.  This example builds
databases up to 5 stones, then *exactly* solves 7-stone positions with a
database-probing alpha-beta search: the search only has to bridge two
captures' worth of play before every line bottoms out in solved
territory.

Run:  python examples/midgame_search.py
"""

import numpy as np

from repro import solve_awari
from repro.db.search import DatabaseProbingSearch
from repro.games import AwariCaptureGame

DB_STONES = 5
POSITION_STONES = 7


def main() -> None:
    dbs, _ = solve_awari(DB_STONES)
    game = AwariCaptureGame()
    search = DatabaseProbingSearch(game, dbs, max_depth=24, max_nodes=60_000)

    # Ground truth (with distances) for selecting demo positions and
    # checking the search: the full 7-stone database.
    truth, _ = solve_awari(POSITION_STONES, with_depth=True)
    values = truth[POSITION_STONES]
    depth = truth.depths[POSITION_STONES]

    indexer = game.engine.indexer(POSITION_STONES)
    rng = np.random.default_rng(11)
    print(
        f"solving {POSITION_STONES}-stone positions with only "
        f"<= {DB_STONES}-stone databases + forward search:\n"
    )
    # Tactical positions (short distance to resolution) — search country.
    tactical = np.flatnonzero((np.abs(values) >= 2) & (depth >= 0) & (depth <= 4))
    solved = 0
    shown = 0
    for i in rng.permutation(tactical):
        board = indexer.unrank(np.array([int(i)]))[0]
        res = search.solve(board)
        if not res.exact:
            continue
        shown += 1
        print(game.engine.board_to_string(board))
        status = "MATCHES database" if res.value == int(values[i]) else "WRONG"
        print(
            f"search: value {res.value:+d} via pit {res.best_pit} "
            f"({res.stats.nodes:,} nodes, {res.stats.db_probes:,} probes) "
            f"— {status}\n"
        )
        assert res.value == int(values[i])
        solved += 1
        if shown == 4:
            break

    # One quiet, drawish position — the regime forward search cannot crack.
    drawish = np.flatnonzero(values == 0)
    board = indexer.unrank(np.array([int(drawish[1000])]))[0]
    res = search.solve(board)
    print(game.engine.board_to_string(board))
    if res.exact:
        print(f"search: value {res.value:+d} (solved even here)")
    else:
        print(
            f"search: {res.stats.nodes:,} nodes and still inexact — drawish "
            "cycle regions defeat forward search,\nwhich is exactly why the "
            "paper computes them by retrograde analysis instead."
        )
    print(f"\n{solved} tactical positions solved exactly above the database horizon")


if __name__ == "__main__":
    main()
