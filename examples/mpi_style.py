#!/usr/bin/env python
"""Blocking SPMD programming on the simulated 1995 cluster.

The solver uses an event-driven worker, but the runtime also offers a
blocking, mpi4py-flavoured coroutine layer (``repro.simnet.comm``).  This
example runs a classic SPMD pattern — local work, allreduce, stragglers
waiting at a barrier — on the simulated shared Ethernet and shows how the
collective costs appear in simulated time.

Run:  python examples/mpi_style.py
"""

from repro.simnet.comm import run_programs


def make_program(work_items):
    def program(comm):
        # 1. Uneven local computation (rank r gets r+1 work items).
        local = work_items * (comm.rank + 1)
        yield comm.compute(1e-3 * local)

        # 2. Global sum of the work done (gather + broadcast on the wire).
        total = yield from comm.allreduce(local)

        # 3. Everyone meets at a barrier before the next phase.
        yield from comm.barrier()

        # 4. Root reports; the result returns from every rank's program.
        if comm.rank == 0:
            return ("total-work", total)
        return ("worker", local)

    return program


def main() -> None:
    for procs in (2, 4, 8, 16):
        programs = [make_program(work_items=100)] * procs
        makespan, results = run_programs(programs)
        total = results[0][1]
        print(
            f"P={procs:>2}: allreduce total = {total:>5} work items, "
            f"simulated makespan {makespan * 1e3:7.1f} ms"
        )
    print(
        "\nthe barrier makes everyone wait for the slowest rank — the\n"
        "same straggler effect the heterogeneous-pool benchmark measures."
    )


if __name__ == "__main__":
    main()
