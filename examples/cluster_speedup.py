#!/usr/bin/env python
"""Reproduce the paper's headline effect at example scale.

Solves the 7-stone awari database on a simulated 1995 Ethernet cluster
with 1..32 processors, with and without message combining, and prints the
speedup table.  This is a fast, small version of
``benchmarks/bench_fig1_speedup.py``.

Run:  python examples/cluster_speedup.py
"""

from repro import AwariCaptureGame, ParallelConfig, ParallelSolver, SequentialSolver
from repro.analysis import format_seconds, sequential_seconds

STONES = 7


def main() -> None:
    game = AwariCaptureGame()
    print(f"building awari databases up to {STONES} stones ...")
    seq_values, seq_report = SequentialSolver(game).solve(STONES)
    r = seq_report.by_id()[STONES]
    t_seq = sequential_seconds(r.size, r.thresholds, r.parent_notifications)
    print(
        f"uniprocessor (simulated 1995 machine): {format_seconds(t_seq)} "
        f"for the {r.size:,}-position database\n"
    )
    lower = {n: seq_values[n] for n in range(STONES)}

    print(f"{'procs':>6} {'combining':>12} {'naive':>12}   (simulated time)")
    for procs in (1, 2, 4, 8, 16, 32):
        row = []
        for capacity in (256, 1):
            cfg = ParallelConfig(
                n_procs=procs,
                combining_capacity=capacity,
                predecessor_mode="unmove-cached",
            )
            values, stats = ParallelSolver(game, cfg).solve_database(STONES, lower)
            assert (values == seq_values[STONES]).all()
            row.append(stats.makespan_seconds)
        print(
            f"{procs:>6} {format_seconds(row[0]):>12} {format_seconds(row[1]):>12}"
            f"   speedup {t_seq / row[0]:5.1f} vs {t_seq / row[1]:5.1f}"
        )
    print("\nmessage combining is what makes the distributed algorithm scale.")


if __name__ == "__main__":
    main()
