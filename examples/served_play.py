#!/usr/bin/env python
"""Perfect endgame play over the network.

The `endgame_play.py` scenario replayed through the serving stack: the
databases are converted to the paged on-disk format, served by a TCP
probe server whose cache budget is *smaller than the databases*, and the
optimal lines are replayed by a client that never holds a database in
memory — :class:`~repro.serve.client.ProbeClient` speaks the same probe
protocol as an in-process :class:`~repro.db.store.DatabaseSet`, so
:func:`~repro.db.query.optimal_line` runs over it unchanged.

Run:  python examples/served_play.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import solve_awari
from repro.db import optimal_line
from repro.games import AwariCaptureGame
from repro.serve import ProbeClient, ProbeServer, ProbeService, write_paged

STONES = 7
CACHE_BYTES = 16 * 1024  # far smaller than the 7-stone database


def describe(value: int) -> str:
    if value > 0:
        return f"the mover captures {value} more stone(s) than the opponent"
    if value < 0:
        return f"the opponent captures {-value} more stone(s) under best play"
    return "perfectly balanced: optimal play captures nothing for either side"


def main() -> None:
    dbs, _ = solve_awari(STONES)
    game = AwariCaptureGame()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"awari{STONES}.pgdb"
        summary = write_paged(dbs, path)
        print(
            f"paged {summary['positions']:,} positions "
            f"({summary['value_bytes'] / 1024:.0f} KiB int16 -> "
            f"{summary['stored_bytes'] / 1024:.0f} KiB on disk)"
        )
        service = ProbeService.from_paged(path, cache_bytes=CACHE_BYTES)
        with ProbeServer(service) as server:
            print(
                f"probe server on {server.host}:{server.port}, cache budget "
                f"{CACHE_BYTES // 1024} KiB\n"
            )
            with ProbeClient(server.host, server.port) as client:
                play(game, dbs, client)
                stats = client.stats()
                print(
                    f"server cache after play: {stats['hits']} hits / "
                    f"{stats['misses']} misses "
                    f"(hit rate {100 * stats['hit_rate']:.0f}%), "
                    f"{stats['resident_bytes']:,} bytes resident of "
                    f"{stats['budget_bytes']:,} budget"
                )
        service.close()


def play(game: AwariCaptureGame, dbs, client: ProbeClient) -> None:
    rng = np.random.default_rng(7)
    indexer = game.engine.indexer(STONES)
    print("three random endgames, solved exactly over TCP:\n")
    for idx in rng.integers(0, indexer.count, size=3):
        board = indexer.unrank(np.array([idx]))[0]
        value = client.probe(STONES, int(idx))
        assert value == int(dbs[STONES][idx]), "served value must match"
        print(game.engine.board_to_string(board))
        print(f"served value: {value:+d} — {describe(value)}")
        realized, pits = optimal_line(game, client, board)
        shown = ", ".join(str(p) for p in pits[:12])
        more = " ..." if len(pits) > 12 else ""
        print(f"perfect line (pits): {shown}{more}")
        print(f"realized capture difference: {realized:+d}")
        assert realized == value, "replay must realize the stored value"
        print()


if __name__ == "__main__":
    main()
