#!/usr/bin/env python
"""Quickstart: build awari endgame databases and query them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import solve_awari
from repro.db import best_moves, set_stats
from repro.games import AwariCaptureGame

STONES = 6


def main() -> None:
    # 1. Build every database up to STONES stones (sequential solver).
    dbs, report = solve_awari(STONES)
    print(f"solved {dbs.total_positions:,} positions in {report.wall_seconds:.1f}s\n")

    # 2. Table-1-style statistics.
    print(f"{'db':>4} {'positions':>10} {'wins':>8} {'draws':>8} {'losses':>8}")
    for st in set_stats(dbs):
        print(
            f"{st.db_id:>4} {st.positions:>10,} {st.wins:>8,} "
            f"{st.draws:>8,} {st.losses:>8,}"
        )

    # 3. Query a position: mover to play, 6 stones on the board.
    game = AwariCaptureGame()
    board = np.array([0, 1, 0, 0, 2, 1, 1, 0, 0, 0, 0, 1], dtype=np.int16)
    print()
    print(game.engine.board_to_string(board))
    value, moves = best_moves(game, dbs, board)
    print(f"exact value for the mover: {value:+d} stones")
    for m in moves:
        print(f"optimal move: pit {m.pit} (captures {m.captures})")


if __name__ == "__main__":
    main()
