#!/usr/bin/env python
"""Watch the distributed protocol at work.

Attaches a message tracer to a small 4-processor run and prints the
opening of the event log, the packet-flow matrix and the traffic
breakdown by message type — the update packets doing the real work, the
Safra tokens detecting quiescence, and the phase broadcasts in between.

Run:  python examples/protocol_trace.py
"""

from repro.core.graph import build_database_graph
from repro.core.parallel.driver import ParallelConfig
from repro.core.parallel.worker import RAWorker, WorkerConfig
from repro.core.partition import make_partition
from repro.core.sequential import SequentialSolver
from repro.games.awari_db import AwariCaptureGame
from repro.simnet.rts import SPMDRuntime
from repro.simnet.trace import Tracer

STONES = 4
PROCS = 4


def main() -> None:
    game = AwariCaptureGame()
    values, _ = SequentialSolver(game).solve(STONES - 1)
    graph = build_database_graph(game, STONES, values)
    partition = make_partition("cyclic", graph.size, PROCS)
    cfg = WorkerConfig(predecessor_mode="unmove-cached", combining_capacity=64)
    workers = [
        RAWorker(r, game, STONES, graph, partition, STONES, cfg)
        for r in range(PROCS)
    ]
    runtime = SPMDRuntime(workers, costs=cfg.costs)
    tracer = Tracer().attach(runtime)
    makespan = runtime.run()

    print(f"{STONES}-stone database on {PROCS} simulated processors "
          f"({makespan:.2f}s simulated)\n")
    print("first events:")
    print(tracer.render_log(limit=18))
    print("\npackets sent (row = source, column = destination):")
    print(tracer.render_flow())
    print("\ntraffic by message type:")
    print(tracer.render_tags())


if __name__ == "__main__":
    main()
