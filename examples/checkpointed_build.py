#!/usr/bin/env python
"""Long-running database builds with checkpoint/resume.

The paper's 20-hour computations could not afford to restart from
scratch.  The pipeline runner writes every finished database (plus a
manifest) to disk; a second invocation resumes where the first stopped —
even with a different solver backend.

Run:  python examples/checkpointed_build.py
"""

import tempfile
from pathlib import Path

from repro.core.pipeline import PipelineConfig, PipelineRunner
from repro.games import AwariCaptureGame


def main() -> None:
    game = AwariCaptureGame()
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = str(Path(tmp) / "awari-build")

        # First session: build up to 5 stones with the threshold solver,
        # then "get interrupted".
        cfg = PipelineConfig(backend="sequential", checkpoint_dir=ckpt)
        _, first = PipelineRunner(game, cfg).run(5)
        print(f"session 1: solved {first.solved} in {first.wall_seconds:.1f}s")

        # Second session: extend to 7 stones using the *bounds* solver —
        # the checkpoints interoperate because all backends produce
        # identical databases.
        cfg2 = PipelineConfig(backend="bounds", checkpoint_dir=ckpt)
        values, second = PipelineRunner(game, cfg2).run(7)
        print(
            f"session 2: resumed {second.resumed}, solved {second.solved} "
            f"in {second.wall_seconds:.1f}s"
        )
        total = sum(v.shape[0] for v in values.values())
        print(f"final: {len(values)} databases, {total:,} positions")
        print(f"checkpoint dir held: "
              f"{sorted(p.name for p in Path(ckpt).iterdir())}")


if __name__ == "__main__":
    main()
