"""LRU block cache with a byte budget, safe under concurrent probes.

Sits between a :class:`~repro.serve.pagedstore.PagedStore` and the probe
path: decompressed blocks are retained up to ``budget_bytes``, evicting
least-recently-used blocks first.  The invariant the tests pin down is
that resident bytes never exceed *budget plus one block* — a miss must
materialize its block before anything can be evicted, and the block just
loaded is never evicted to make room for itself.

The cache is **thread-safe**: the threaded JSON server runs one thread
per connection against one shared cache, so every public operation —
and the LRU reordering plus byte accounting inside it — runs under one
``RLock``.  Miss loaders run *under the lock too* (single-flight: two
threads missing the same block do one store read, and the budget can
never be overshot by concurrent loads); that matches the serialization
the paged backend previously imposed externally, so the ~170k probes/s
JSON path pays the same lock it always did, just one layer down.
Re-entrancy (``get`` → ``put`` → ``_evict``) is why the lock is an
``RLock``.  Contended acquisitions are counted (``lock_contended``) via
a non-blocking probe before the blocking acquire, giving operators a
direct gauge of cache serialization pressure.

Byte accounting under compressed codecs: the budget counts
**decompressed working bytes** (``block.nbytes`` of the arrays probes
actually touch), because that is the RAM the cache really holds — a
bit-packed store decodes to the same int16 blocks as a raw one.  The
*stored* (encoded) size of each resident block is tracked alongside and
surfaced as the ``packed_resident_bytes`` gauge, so operators can see
what the same working set costs in its on-disk form (equal to
``resident_bytes`` for ``codec="raw"``, 4-8x smaller for packed
nibble-width games).

Hits, misses, evictions and resident bytes are first-class
``repro.obs`` metric families (pass ``registry.scoped("serve.cache")``);
the same totals are kept as plain attributes so correctness tests and
the throughput benchmark can read them without a registry.  The
attribute/lock discipline is declared with ``# guarded-by:`` comments
and proven by staticcheck rule RA007 on every run.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..obs import NULL_METRICS

__all__ = ["BlockCache"]


class BlockCache:
    """Thread-safe byte-budgeted LRU over decompressed blocks.

    Keys are hashable (the probe path uses ``(db_id, block_no)``); values
    are numpy arrays (anything with ``nbytes``).  All operations are
    serialized under one re-entrant lock; ``stats()`` and ``hit_rate``
    return consistent snapshots.
    """

    def __init__(self, budget_bytes: int, metrics=None):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = int(budget_bytes)
        self._metrics = NULL_METRICS if metrics is None else metrics
        self._lock = threading.RLock()
        # key -> (block, stored_bytes); stored_bytes is the encoded
        # size the block occupies on disk (== block.nbytes when the
        # store's codec is raw, or when the caller did not say).
        self._blocks: OrderedDict = OrderedDict()  # guarded-by: self._lock
        self.hits = 0  # guarded-by: self._lock
        self.misses = 0  # guarded-by: self._lock
        self.evictions = 0  # guarded-by: self._lock
        self.resident_bytes = 0  # guarded-by: self._lock
        self.packed_resident_bytes = 0  # guarded-by: self._lock
        self.peak_resident_bytes = 0  # guarded-by: self._lock
        self.lock_contended = 0  # guarded-by: self._lock
        self._metrics.set_gauge("budget_bytes", self.budget_bytes)
        self._publish()

    # ----------------------------------------------------------------- api

    def get(self, key, loader, stored_bytes=None):
        """The cached block for ``key``, calling ``loader()`` on a miss.

        The loader runs **under the cache lock** (single-flight): a
        second thread missing the same key waits and then hits.
        ``stored_bytes`` is the block's encoded size for the
        ``packed_resident_bytes`` gauge; it only matters on a miss.
        """
        self._acquire()
        try:
            entry = self._blocks.get(key)
            if entry is not None:
                self._blocks.move_to_end(key)
                self.hits += 1
                self._metrics.inc("hits")
                return entry[0]
            self.misses += 1
            self._metrics.inc("misses")
            block = loader()
            self.put(key, block, stored_bytes)
            return block
        finally:
            self._lock.release()

    def put(self, key, block, stored_bytes=None) -> None:
        """Insert (or replace) ``key``'s block and re-run eviction.

        Re-inserting an existing key **replaces** the entry: the old
        sizes are subtracted before the new ones are added, so repeated
        puts of one key never inflate ``resident_bytes`` (the
        double-counting regression the cache tests pin).
        """
        stored = int(block.nbytes) if stored_bytes is None else int(stored_bytes)
        self._acquire()
        try:
            old = self._blocks.pop(key, None)
            if old is not None:
                self.resident_bytes -= int(old[0].nbytes)
                self.packed_resident_bytes -= old[1]
            self._blocks[key] = (block, stored)
            self.resident_bytes += int(block.nbytes)
            self.packed_resident_bytes += stored
            if self.resident_bytes > self.peak_resident_bytes:
                self.peak_resident_bytes = self.resident_bytes
            self._evict()
            self._publish()
        finally:
            self._lock.release()

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._blocks

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def keys(self) -> list:
        """Current keys in eviction order (least recently used first)."""
        with self._lock:
            return list(self._blocks)

    def clear(self) -> None:
        self._acquire()
        try:
            self._blocks.clear()
            self.resident_bytes = 0
            self.packed_resident_bytes = 0
            self._publish()
        finally:
            self._lock.release()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Plain-dict counters (the server's ``stats`` op ships this).

        One consistent snapshot: every field is read under the lock, so
        ``hits + misses`` always equals the number of completed ``get``
        calls and the byte gauges match the resident block set exactly,
        even while other threads probe.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
                "resident_bytes": self.resident_bytes,
                "resident_blocks": len(self._blocks),
                "packed_resident_bytes": self.packed_resident_bytes,
                "peak_resident_bytes": self.peak_resident_bytes,
                "budget_bytes": self.budget_bytes,
                "lock_contended": self.lock_contended,
            }

    # ------------------------------------------------------------ internals

    def _acquire(self) -> None:  # acquires-lock: self._lock
        """Blocking acquire that counts contention.

        The non-blocking probe fails only when another thread holds the
        lock (re-entrant acquisition by the owner always succeeds), so
        ``lock_contended`` counts real cross-thread serialization, not
        ``get`` → ``put`` recursion.
        """
        if self._lock.acquire(blocking=False):
            return
        self._lock.acquire()
        self.lock_contended += 1
        self._metrics.inc("lock_contended")

    def _evict(self) -> None:  # holds-lock: self._lock
        # Never evict the newest entry: a budget smaller than one block
        # still has to hold the block being probed (the "+ one block"
        # slack in the resident-bytes guarantee).
        while self.resident_bytes > self.budget_bytes and len(self._blocks) > 1:
            _, (victim, stored) = self._blocks.popitem(last=False)
            self.resident_bytes -= int(victim.nbytes)
            self.packed_resident_bytes -= stored
            self.evictions += 1
            self._metrics.inc("evictions")

    def _publish(self) -> None:  # holds-lock: self._lock
        self._metrics.set_gauge("resident_bytes", self.resident_bytes)
        self._metrics.set_gauge("resident_blocks", len(self._blocks))
        self._metrics.set_gauge(
            "packed_resident_bytes", self.packed_resident_bytes
        )
        self._metrics.set_gauge("peak_resident_bytes", self.peak_resident_bytes)
