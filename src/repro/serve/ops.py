"""Transport-independent JSON request handling for the probe servers.

The threaded :class:`~repro.serve.server.ProbeServer` and the asyncio
:class:`~repro.aserve.server.AsyncProbeServer` (whose version-byte
fallback keeps legacy clients working) must answer JSON requests
*identically* — same ops, same response shapes, same error contract.
Both delegate to one :class:`JsonRequestHandler` so the two transports
cannot drift.
"""

from __future__ import annotations

from ..obs import NULL_METRICS

__all__ = ["JsonRequestHandler"]


class JsonRequestHandler:
    """Map one decoded JSON request dict to a JSON response dict.

    Pure request/response logic: no sockets, no threads.  Metrics land
    in whatever scope the owning server passes (``serve.server`` for the
    threaded server, ``aserve.server`` for the asyncio one).  Any
    exception a handler raises is isolated to an ``ok: false`` response.
    """

    def __init__(self, service, metrics=None):
        self.service = service
        self._metrics = NULL_METRICS if metrics is None else metrics

    def handle(self, request: dict) -> dict:
        """Answer one request; never raises."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            self._metrics.inc("errors")
            return {"ok": False, "error": f"unknown op {op!r}"}
        self._metrics.inc("requests")
        self._metrics.inc(f"op.{op}")
        try:
            return handler(request)
        except Exception as exc:  # noqa: BLE001 — isolation: one bad
            # request must answer ok:false, never kill the connection.
            self._metrics.inc("errors")
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": True}

    def _op_info(self, request: dict) -> dict:
        service = self.service
        response = {
            "ok": True,
            "game": service.game_name,
            "rules": service.rules,
            "backend": service.backend_kind,
            "ids": service.ids(),
            "positions": {str(i): service.positions(i) for i in service.ids()},
        }
        store = getattr(service.backend, "store", None)
        if store is not None:
            response["codec"] = store.codec
        return response

    def _op_probe(self, request: dict) -> dict:
        value = self.service.probe(request["db"], int(request["index"]))
        return {"ok": True, "value": value}

    def _op_probe_many(self, request: dict) -> dict:
        positions = [(db, int(index)) for db, index in request["positions"]]
        values = self.service.probe_many(positions)
        return {"ok": True, "values": [int(v) for v in values]}

    def _op_best_move(self, request: dict) -> dict:
        board = request["board"]
        if not isinstance(board, list) or len(board) != 12:
            raise ValueError("board must be 12 pit counts")
        value, moves = self.service.best_moves(board)
        return {
            "ok": True,
            "value": int(value),
            "pits": [m.pit for m in moves],
            "moves": [
                {"pit": m.pit, "captures": m.captures, "value": m.value}
                for m in moves
            ],
        }

    def _op_stats(self, request: dict) -> dict:
        return {"ok": True, "stats": self.service.stats()}
