"""Threaded TCP probe server.

One :class:`ProbeServer` wraps one :class:`~repro.serve.service.ProbeService`
and answers the wire protocol of :mod:`repro.serve.protocol`.  Each
client connection gets its own thread (the workload is
lookup-dominated: threads block on socket I/O, and the paged backend
serializes block access internally, so plain threads scale to the
concurrency level a probe workload needs).

Shutdown is graceful: :meth:`~ProbeServer.shutdown` stops the accept
loop, lets every in-flight request finish (connection threads poll a
stop event between frames), and joins the threads before returning.
"""

from __future__ import annotations

import socket
import threading
import time

from ..obs import NULL_METRICS
from .ops import JsonRequestHandler
from .protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    recv_message,
    send_message,
)

__all__ = ["ProbeServer"]

#: Socket timeout used to poll the stop event in accept/recv loops.
_POLL_SECONDS = 0.2


def _overloaded(budget) -> dict:
    """The well-formed load-shedding response both servers answer.

    ``reason`` is machine-readable — clients surface it as
    :class:`~repro.serve.client.ProbeOverloadedError` so routers can
    fail over immediately without treating the endpoint as dead.
    """
    return {
        "ok": False,
        "error": f"server overloaded ({budget} requests in flight)",
        "reason": "overloaded",
    }


class ProbeServer:
    """Serve one :class:`ProbeService` over TCP.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction (the listener is bound eagerly, so clients may connect
    as soon as :meth:`start` — or :meth:`serve_forever` — runs).

    Connections are isolated: a malformed or oversized frame, or any
    exception a handler raises, produces an ``ok: false`` response (or a
    closed connection) for that client only — it never takes down the
    server or wedges another client's thread.  ``max_message_bytes``
    caps accepted frame lengths; ``faults`` optionally carries a
    :class:`~repro.resilience.FaultPlan` whose connection-drop injector
    severs connections deterministically (chaos testing of reconnecting
    clients).

    ``max_connections`` bounds the thread-per-connection model against
    connect floods: beyond the cap, a new connection is answered with a
    well-formed ``ok: false`` capacity rejection and closed immediately
    (counted on ``connections_rejected``) instead of spawning a thread.

    ``max_inflight`` bounds concurrently *executing* requests across
    all connections: past the budget a request is answered with
    ``ok: false, reason: "overloaded"`` (counted on ``overloads``) and
    the connection survives — load is shed per request, never by
    hanging or crashing.  The cluster router treats that answer as
    "try the next replica now" without tripping its circuit breaker.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 metrics=None, max_message_bytes: int = MAX_MESSAGE_BYTES,
                 faults=None, max_connections: int | None = None,
                 max_inflight: int | None = None):
        self.service = service
        self._metrics = NULL_METRICS if metrics is None else metrics
        self._handler = JsonRequestHandler(service, self._metrics)
        self._max_connections = (
            None if max_connections is None else int(max_connections)
        )
        self._max_inflight = (
            None if max_inflight is None else int(max_inflight)
        )
        self._inflight = 0  # guarded-by: self._inflight_lock
        self._inflight_lock = threading.Lock()
        self._max_message_bytes = int(max_message_bytes)
        self._drop = getattr(faults, "connection_drop", None)
        self._latency = getattr(faults, "latency", None)
        self._blackhole = getattr(faults, "blackhole", None)
        self._crash = getattr(faults, "shard_crash", None)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []  # guarded-by: self._lock
        self._accept_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self._listener.settimeout(_POLL_SECONDS)
        self.host, self.port = self._listener.getsockname()[:2]

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ProbeServer":
        """Run the accept loop on a background thread and return."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"probe-server-{self.port}-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread until shutdown."""
        self._accept_loop()

    def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, join all threads."""
        self._stop.set()
        if (
            self._accept_thread is not None
            and self._accept_thread is not threading.current_thread()
        ):
            self._accept_thread.join()
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join()
        self._listener.close()

    def __enter__(self) -> "ProbeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ---------------------------------------------------------- accept loop

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us
            self._metrics.inc("connections")
            if self._drop is not None and self._drop.drop_on_accept():
                # Injected fault: sever this connection before serving it.
                self._metrics.inc("faults.connections_dropped")
                conn.close()
                continue
            with self._lock:
                self._threads = [t for t in self._threads if t.is_alive()]
                at_capacity = (
                    self._max_connections is not None
                    and len(self._threads) >= self._max_connections
                )
            if at_capacity:
                # Reject with a well-formed response rather than spawning
                # an unbounded thread; the client sees an application
                # error, never a hang.
                self._metrics.inc("connections_rejected")
                try:
                    send_message(conn, {
                        "ok": False,
                        "error": "server at capacity "
                                 f"({self._max_connections} connections)",
                    })
                except OSError:
                    self._metrics.inc("client_disconnects")
                conn.close()
                continue
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"probe-server-{self.port}-conn", daemon=True,
            )
            with self._lock:
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(_POLL_SECONDS)
        sever_after = self._drop.sever_after() if self._drop else None
        answered = 0
        try:
            while not self._stop.is_set():
                try:
                    request = recv_message(
                        conn, stop=self._stop,
                        max_bytes=self._max_message_bytes,
                    )
                except ProtocolError as exc:
                    # Reject and close: after a bad frame the stream
                    # cannot be re-synchronized, but only this client's
                    # connection pays for it.
                    send_message(conn, {"ok": False, "error": str(exc)})
                    self._metrics.inc("errors")
                    break
                if request is None:
                    break
                if (self._blackhole is not None
                        and self._blackhole.swallow()):
                    # Injected fault: read the request, never answer —
                    # the silence only a client timeout escapes.
                    self._metrics.inc("faults.requests_blackholed")
                    continue
                if not self._admit():
                    self._metrics.inc("overloads")
                    send_message(conn, _overloaded(self._max_inflight))
                    continue
                try:
                    if self._latency is not None:
                        delay = self._latency.delay_seconds()
                        if delay:
                            self._metrics.inc("faults.latency_injected")
                            time.sleep(delay)
                    response = self._handle(request)
                finally:
                    self._release()
                send_message(conn, response)
                answered += 1
                if self._crash is not None:
                    self._crash.answered()
                if sever_after is not None and answered >= sever_after:
                    # Injected fault: hang up mid-session so reconnect
                    # and replay paths get exercised.
                    self._metrics.inc("faults.connections_severed")
                    break
        except OSError:
            # Client went away mid-response: expected under chaos and
            # abrupt disconnects, but never silent — operators watching
            # a long-running server need the rate.
            self._metrics.inc("client_disconnects")
        finally:
            conn.close()

    # ------------------------------------------------------------- requests

    def _admit(self) -> bool:
        """Claim one in-flight slot; False means shed this request."""
        if self._max_inflight is None:
            return True
        with self._inflight_lock:
            if self._inflight >= self._max_inflight:
                return False
            self._inflight += 1
            return True

    def _release(self) -> None:
        if self._max_inflight is None:
            return
        with self._inflight_lock:
            self._inflight -= 1

    def _handle(self, request: dict) -> dict:
        # Request semantics live in the transport-independent handler,
        # shared with the asyncio server's JSON fallback (serve/ops.py).
        return self._handler.handle(request)
