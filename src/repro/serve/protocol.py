"""Length-prefixed JSON wire protocol for the probe server.

Every message — request or response — is one JSON object encoded as
UTF-8, prefixed by its byte length as a big-endian uint32.  JSON keeps
the protocol inspectable and language-neutral; the length prefix makes
framing trivial over a stream socket.

Requests carry an ``op`` field; responses carry ``ok`` (and ``error``
when ``ok`` is false).  The operations, documented in docs/SERVING.md:

========== =============================================== =============
op          request fields                                  response
========== =============================================== =============
ping        —                                               ``pong: true``
info        —                                               game, rules, ids, positions, backend
probe       ``db``, ``index``                               ``value``
probe_many  ``positions`` = ``[[db, index], ...]``          ``values``
best_move   ``board`` = 12 pit counts                       ``value``, ``pits``, ``moves``
stats       —                                               cache/server counters
========== =============================================== =============
"""

from __future__ import annotations

import json
import socket
import struct

__all__ = [
    "ProtocolError",
    "OversizedFrameError",
    "BINARY_VERSION",
    "MAX_MESSAGE_BYTES",
    "send_message",
    "recv_message",
]

#: Upper bound on one message; a 64 MiB batch is ~4M probes.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: First payload byte of a binary-protocol frame (:mod:`repro.aserve`).
#: 0xB1 can never open a JSON text frame (it is not valid UTF-8 as a
#: leading byte), so one byte discriminates the two protocols per frame.
BINARY_VERSION = 0xB1

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """Malformed frame: oversized, truncated, or not JSON."""


class OversizedFrameError(ProtocolError):
    """A frame's declared length exceeds the receiver's limit.

    Raised *before* any payload allocation — the length prefix alone is
    enough to reject, so a hostile 4 GiB declaration costs 4 bytes of
    buffering, not 4 GiB.
    """


def send_message(sock: socket.socket, message: dict,
                 max_bytes: int = MAX_MESSAGE_BYTES) -> None:
    """Send one length-prefixed JSON message."""
    payload = json.dumps(message, separators=(",", ":")).encode()
    if len(payload) > max_bytes:
        raise OversizedFrameError(
            f"message of {len(payload)} bytes exceeds limit ({max_bytes})"
        )
    sock.sendall(_LEN.pack(len(payload)) + payload)


def recv_message(sock: socket.socket, stop=None,
                 max_bytes: int = MAX_MESSAGE_BYTES) -> dict | None:
    """Receive one message; ``None`` on clean EOF (or ``stop`` set).

    ``stop`` is an optional :class:`threading.Event` polled whenever the
    socket times out, letting a serving thread exit between frames
    during graceful shutdown.  Without ``stop``, a socket timeout
    propagates to the caller (a client must not spin forever on a hung
    server).  ``max_bytes`` caps the accepted frame length; an oversized
    declaration raises :class:`OversizedFrameError` without buffering
    any payload.
    """
    header = _recv_exactly(sock, _LEN.size, stop)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > max_bytes:
        raise OversizedFrameError(
            f"frame of {length} bytes exceeds limit ({max_bytes})"
        )
    payload = _recv_exactly(sock, length, stop)
    if payload is None:
        raise ProtocolError("connection closed mid-message")
    if payload[:1] == bytes([BINARY_VERSION]):
        raise ProtocolError(
            "binary-protocol frame (version 0xb1) on a JSON connection — "
            "this endpoint speaks length-prefixed JSON only; serve with "
            "--protocol binary or use a JSON client"
        )
    try:
        message = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


def _recv_exactly(sock: socket.socket, n: int, stop=None) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    received = 0
    while received < n:
        try:
            data = sock.recv(n - received)
        except socket.timeout:
            if stop is None:
                raise  # no shutdown event to poll: surface the timeout
            if stop.is_set():
                return None
            continue
        if not data:
            if received == 0:
                return None
            raise ProtocolError(
                f"connection closed after {received} of {n} bytes"
            )
        chunks.append(data)
        received += len(data)
    return b"".join(chunks)
