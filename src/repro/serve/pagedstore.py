"""Paged on-disk database format with O(1) random block access.

The ``.npz`` archives load *whole databases* into RAM — exactly the
uniprocessor memory wall the paper measures (>600 MB for the database it
could not build).  The paged format stores each database as fixed-size
runs of positions ("blocks"), each encoded independently, behind a JSON
header that records every block's file offset.  Probing one position
costs one seek plus one block decode, never a full-file decode, so a
server can answer queries from databases far larger than its memory
budget (the cache layer on top is
:class:`~repro.serve.cache.BlockCache`).

File layout::

    8 bytes   magic  b"REPROPGD"
    8 bytes   header length (little-endian uint64)
    N bytes   JSON header (utf-8)
    ...       concatenated encoded blocks

Header schema ``repro/paged-store/v1``: game name, rule string, block
size in positions, value dtype, codec (plus the bit-pack parameters for
the packed codecs), and per-database block tables (``offset`` relative
to the end of the header, stored length, position count).  Database ids
are encoded as strings and parsed back with the same rule as
:class:`~repro.db.store.DatabaseSet`.

Per-block codecs (``CODECS``):

* ``zlib`` — each block zlib-compressed (the default);
* ``raw`` — bare little-endian int16 bytes, mmap-able zero-copy;
* ``packed`` — the arbitrary-bit-width codec of
  :mod:`repro.db.packing`: values biased and packed ``bits`` per value
  (bound-derived, recorded in the header), ``ceil(n*bits/8)`` bytes per
  block — 4-8x smaller than raw for nibble-width games, decode is a
  bulk numpy unpack;
* ``packed+zlib`` — bit-packed blocks zlib-compressed on top (the
  smallest; decode pays both stages).
"""

from __future__ import annotations

import json
import threading
import zlib
from pathlib import Path

import numpy as np

from ..db.packing import bit_width, pack_bits, unpack_bits
from ..db.store import DatabaseSet

__all__ = [
    "PagedStore",
    "write_paged",
    "SCHEMA",
    "CODECS",
    "DEFAULT_BLOCK_POSITIONS",
]

SCHEMA = "repro/paged-store/v1"

_MAGIC = b"REPROPGD"
_DTYPE = "<i2"

#: Per-block encodings the format supports.
CODECS = ("zlib", "raw", "packed", "packed+zlib")

#: Default block granularity: 4096 int16 values = 8 KiB uncompressed.
DEFAULT_BLOCK_POSITIONS = 4096


def _value_range(dbs: DatabaseSet) -> tuple:
    """Global ``(lo, hi)`` over every database's values (0, 0 when the
    store holds no positions) — the bound the packed codecs derive
    their bit width from."""
    lo, hi = 0, 0
    seen = False
    for db_id in dbs.ids():
        values = dbs[db_id]
        if values.shape[0] == 0:
            continue
        vlo, vhi = int(values.min()), int(values.max())
        lo, hi = (vlo, vhi) if not seen else (min(lo, vlo), max(hi, vhi))
        seen = True
    return lo, hi


def write_paged(
    dbs: DatabaseSet,
    path,
    block_positions: int = DEFAULT_BLOCK_POSITIONS,
    level: int = 6,
    codec: str = "zlib",
) -> dict:
    """Convert a :class:`DatabaseSet` to the paged format.

    Only value arrays are paged; depth arrays, when present, stay in the
    ``.npz`` world (serving probes values).

    ``codec`` selects the per-block encoding (see the module doc):
    ``zlib`` | ``raw`` | ``packed`` | ``packed+zlib``.  The packed
    codecs derive their bit width from the store's global value range
    and record it in the header, so every reader decodes with the same
    parameters.

    Returns a summary dict whose byte fields name what they measure:

    * ``value_bytes`` — in-memory int16 working bytes (2 per position);
    * ``stored_bytes`` — encoded block bytes as written (the payloads);
    * ``file_bytes`` — whole file including magic and header;
    * ``stored_ratio`` — ``value_bytes / stored_bytes``; 1.0 for an
      empty store (nothing to store, parity — never 0.0, a zlib'd empty
      block still costs header bytes), and ~1.0 under ``codec="raw"``
      by construction.
    """
    if block_positions < 1:
        raise ValueError("block_positions must be >= 1")
    if codec not in CODECS:
        raise ValueError(
            f"unknown codec {codec!r}; use one of {', '.join(CODECS)}"
        )
    path = Path(path)
    packed = codec in ("packed", "packed+zlib")
    pack = None
    if packed:
        lo, hi = _value_range(dbs)
        pack = {"bits": bit_width(lo, hi), "offset": lo}
    databases: dict[str, dict] = {}
    payloads: list[bytes] = []
    offset = 0
    value_bytes = 0
    for db_id in dbs.ids():
        values = np.ascontiguousarray(dbs[db_id], dtype=_DTYPE)
        value_bytes += values.nbytes
        blocks = []
        for start in range(0, max(values.shape[0], 1), block_positions):
            chunk = values[start : start + block_positions]
            if chunk.shape[0] == 0 and start > 0:
                break
            if codec == "raw":
                payload = chunk.tobytes()
            elif codec == "zlib":
                payload = zlib.compress(chunk.tobytes(), level)
            else:
                payload = pack_bits(
                    chunk, pack["bits"], pack["offset"]
                ).tobytes()
                if codec == "packed+zlib":
                    payload = zlib.compress(payload, level)
            blocks.append(
                {"offset": offset, "clen": len(payload), "count": int(chunk.shape[0])}
            )
            payloads.append(payload)
            offset += len(payload)
        databases[str(db_id)] = {
            "positions": int(values.shape[0]),
            "blocks": blocks,
        }
    header_fields = {
        "schema": SCHEMA,
        "game": dbs.game_name,
        "rules": dbs.rules,
        "block_positions": int(block_positions),
        "dtype": _DTYPE,
        "codec": codec,
        "databases": databases,
    }
    if pack is not None:
        header_fields["pack"] = pack
    header = json.dumps(header_fields, separators=(",", ":")).encode()
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(len(header).to_bytes(8, "little"))
        fh.write(header)
        for payload in payloads:
            fh.write(payload)
    stored = offset
    return {
        "databases": len(databases),
        "positions": dbs.total_positions,
        "codec": codec,
        "value_bytes": value_bytes,
        "file_bytes": path.stat().st_size,
        "stored_bytes": stored,
        "stored_ratio": (
            (value_bytes / stored) if value_bytes and stored else 1.0
        ),
    }


class _BlockTable:
    """Decoded block index of one database."""

    __slots__ = ("positions", "offsets", "clens", "counts")

    def __init__(self, entry: dict):
        self.positions = int(entry["positions"])
        blocks = entry["blocks"]
        self.offsets = [int(b["offset"]) for b in blocks]
        self.clens = [int(b["clen"]) for b in blocks]
        self.counts = [int(b["count"]) for b in blocks]

    @property
    def n_blocks(self) -> int:
        return len(self.offsets)


class PagedStore:
    """Random-access reader over one paged file.

    Reads are thread-safe (a lock serializes seek+read on the shared
    handle), which is what lets the TCP server probe one store from many
    client threads.  The store itself holds **no** decoded data —
    callers that want reuse put a :class:`~repro.serve.cache.BlockCache`
    in front of :meth:`read_block`.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._file = open(self.path, "rb")
        self._lock = threading.Lock()
        magic = self._file.read(len(_MAGIC))
        if magic != _MAGIC:
            self._file.close()
            raise ValueError(f"{self.path} is not a paged store (bad magic)")
        header_len = int.from_bytes(self._file.read(8), "little")
        header = json.loads(self._file.read(header_len).decode())
        if header.get("schema") != SCHEMA:
            self._file.close()
            raise ValueError(
                f"unsupported paged-store schema {header.get('schema')!r}"
            )
        self.game_name: str = header["game"]
        self.rules: str = header["rules"]
        self.block_positions: int = int(header["block_positions"])
        #: Per-block encoding; headers written before the field existed
        #: are zlib by construction.
        self.codec: str = header.get("codec", "zlib")
        if self.codec not in CODECS:
            self._file.close()
            raise ValueError(f"unsupported paged-store codec {self.codec!r}")
        pack = header.get("pack")
        if self.codec in ("packed", "packed+zlib"):
            if not isinstance(pack, dict):
                self._file.close()
                raise ValueError(
                    f"{self.path}: codec {self.codec!r} header lacks the "
                    "pack parameters"
                )
            #: Bits per value and bias of the packed codecs (None
            #: otherwise).
            self.pack_bits_per_value: int | None = int(pack["bits"])
            self.pack_offset: int | None = int(pack["offset"])
        else:
            self.pack_bits_per_value = None
            self.pack_offset = None
        self._dtype = np.dtype(header["dtype"])
        self._data_start = len(_MAGIC) + 8 + header_len
        self._tables = {
            DatabaseSet._parse_id(key): _BlockTable(entry)
            for key, entry in header["databases"].items()
        }

    # ------------------------------------------------------------- metadata

    def ids(self) -> list:
        return sorted(self._tables)

    def __contains__(self, db_id) -> bool:
        return db_id in self._tables

    def positions(self, db_id) -> int:
        return self._table(db_id).positions

    @property
    def total_positions(self) -> int:
        return sum(t.positions for t in self._tables.values())

    def n_blocks(self, db_id) -> int:
        return self._table(db_id).n_blocks

    def block_of(self, index: int) -> int:
        """Block number holding position ``index`` (any database)."""
        return int(index) // self.block_positions

    @property
    def file_bytes(self) -> int:
        return self.path.stat().st_size

    @property
    def data_start(self) -> int:
        """File offset where block data begins (block offsets are
        relative to this point) — what an mmap reader addresses from."""
        return self._data_start

    @property
    def dtype(self) -> np.dtype:
        """Value dtype of every block."""
        return self._dtype

    def block_span(self, db_id, block_no: int) -> tuple:
        """``(relative offset, stored length, position count)`` of one
        block — the address an external (mmap) reader needs."""
        table = self._table(db_id)
        if not (0 <= block_no < table.n_blocks):
            raise IndexError(
                f"block {block_no} out of range for db {db_id!r} "
                f"({table.n_blocks} blocks)"
            )
        return (table.offsets[block_no], table.clens[block_no],
                table.counts[block_no])

    def stored_block_bytes(self, db_id, block_no: int) -> int:
        """Stored (encoded) byte size of one block, as on disk."""
        return self.block_span(db_id, block_no)[1]

    def _table(self, db_id) -> _BlockTable:
        try:
            return self._tables[db_id]
        except KeyError:
            raise KeyError(
                f"database {db_id!r} not present; have {self.ids()}"
            ) from None

    # ---------------------------------------------------------------- reads

    def decode_block(self, payload: bytes, count: int) -> np.ndarray:
        """Decode one stored block payload to its value array."""
        codec = self.codec
        if codec == "packed+zlib":
            payload = zlib.decompress(payload)
            codec = "packed"
        elif codec == "zlib":
            payload = zlib.decompress(payload)
            codec = "raw"
        if codec == "packed":
            values = unpack_bits(
                np.frombuffer(payload, dtype=np.uint8),
                count,
                self.pack_bits_per_value,
                self.pack_offset,
            ).astype(self._dtype, copy=False)
        else:
            values = np.frombuffer(payload, dtype=self._dtype)
        return values

    def read_block(self, db_id, block_no: int) -> np.ndarray:
        """Read one block: a seek plus one block decode (zlib stream,
        bulk bit-unpack, or a bare copy for ``codec="raw"``), O(block)."""
        table = self._table(db_id)
        if not (0 <= block_no < table.n_blocks):
            raise IndexError(
                f"block {block_no} out of range for db {db_id!r} "
                f"({table.n_blocks} blocks)"
            )
        offset = self._data_start + table.offsets[block_no]
        clen = table.clens[block_no]
        with self._lock:
            self._file.seek(offset)
            payload = self._file.read(clen)
        if len(payload) != clen:
            raise IOError(f"short read in {self.path} at offset {offset}")
        try:
            values = self.decode_block(payload, table.counts[block_no])
        except ValueError as exc:
            raise IOError(
                f"block {block_no} of db {db_id!r} failed to decode: {exc}"
            ) from exc
        if values.shape[0] != table.counts[block_no]:
            raise IOError(
                f"block {block_no} of db {db_id!r} decoded "
                f"{values.shape[0]} values, expected {table.counts[block_no]}"
            )
        return values

    def read_all(self, db_id) -> np.ndarray:
        """Whole database (test/convenience path, not the serving path)."""
        table = self._table(db_id)
        if table.n_blocks == 0:
            return np.zeros(0, dtype=self._dtype)
        return np.concatenate(
            [self.read_block(db_id, b) for b in range(table.n_blocks)]
        )

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PagedStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
