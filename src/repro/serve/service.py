"""The probe service — one lookup protocol over two storage backends.

A :class:`ProbeService` answers the three questions a game-playing
client asks of a solved database: the value of one position
(:meth:`~ProbeService.probe`), the values of many positions
(:meth:`~ProbeService.probe_many` — sorted by storage locality so a
batch touches each cached block once), and the best move from a board
(:meth:`~ProbeService.best_moves`, which delegates to the same
:func:`~repro.db.query.best_moves` logic as the in-memory path, so
serving can never disagree with it).

Backends:

* :class:`MemoryBackend` — a resident :class:`~repro.db.store.DatabaseSet`
  (today's behaviour, wrapped);
* :class:`PagedBackend` — a :class:`~repro.serve.pagedstore.PagedStore`
  behind a :class:`~repro.serve.cache.BlockCache`, which never holds
  more than the cache budget plus one block in memory.

Anything exposing ``probe`` / ``probe_many`` / ``__contains__`` speaks
the same protocol — the TCP :class:`~repro.serve.client.ProbeClient`
does too, so ``repro.db.query`` and ``repro.db.search`` run unchanged
over a remote server.
"""

from __future__ import annotations


import numpy as np

from ..db.store import DatabaseSet
from ..obs import NULL_METRICS
from .cache import BlockCache
from .pagedstore import PagedStore

__all__ = ["MemoryBackend", "PagedBackend", "ProbeService"]

#: Default cache budget for paged serving: 64 MiB.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


class MemoryBackend:
    """Probe backend over an in-memory :class:`DatabaseSet`."""

    kind = "memory"

    def __init__(self, dbs: DatabaseSet):
        self._dbs = dbs

    @property
    def game_name(self) -> str:
        return self._dbs.game_name

    @property
    def rules(self) -> str:
        return self._dbs.rules

    def ids(self) -> list:
        return self._dbs.ids()

    def __contains__(self, db_id) -> bool:
        return db_id in self._dbs

    def positions(self, db_id) -> int:
        return int(self._dbs[db_id].shape[0])

    def gather(self, db_id, indices: np.ndarray) -> np.ndarray:
        return self._dbs[db_id][indices]

    def locality_key(self, db_id, index: int):
        # Whole databases are resident; grouping by database is enough.
        return (str(db_id),)

    def depth_of(self, db_id, index: int):
        return self._dbs.depth_of(db_id, index)

    def stats(self) -> dict:
        return {"resident_bytes": self._dbs.memory_bytes()}

    def close(self) -> None:
        pass


class PagedBackend:
    """Probe backend over a paged store behind an LRU block cache."""

    kind = "paged"

    def __init__(self, store: PagedStore, cache: BlockCache):
        self._store = store
        self._cache = cache

    @property
    def game_name(self) -> str:
        return self._store.game_name

    @property
    def rules(self) -> str:
        return self._store.rules

    @property
    def cache(self) -> BlockCache:
        return self._cache

    @property
    def store(self) -> PagedStore:
        return self._store

    def ids(self) -> list:
        return self._store.ids()

    def __contains__(self, db_id) -> bool:
        return db_id in self._store

    def positions(self, db_id) -> int:
        return self._store.positions(db_id)

    def gather(self, db_id, indices: np.ndarray) -> np.ndarray:
        block_positions = self._store.block_positions
        if not indices.shape[0]:
            return np.empty(0, dtype=np.int16)
        blocks = indices // block_positions
        if blocks.shape[0] > 1 and np.any(np.diff(blocks) < 0):
            # Direct callers may pass unsorted indices; the probe
            # service's batched paths arrive locality-sorted and skip
            # this re-sort.
            order = np.argsort(indices, kind="stable")
            out = np.empty(indices.shape[0], dtype=np.int16)
            out[order] = self.gather(db_id, indices[order])
            return out
        # Blocks are non-decreasing: each distinct block is one
        # contiguous run, so the gather is one cache hit plus one slice
        # per block instead of a boolean mask over the whole batch.
        out = np.empty(indices.shape[0], dtype=np.int16)
        run_bounds = np.flatnonzero(np.diff(blocks)) + 1
        starts = np.concatenate(([0], run_bounds))
        stops = np.concatenate((run_bounds, [blocks.shape[0]]))
        # The cache serializes itself (BlockCache holds its RLock across
        # the miss loader), so block loads stay single-flight without an
        # extra backend lock on the hit path.
        for a, b in zip(starts, stops):
            block_no = int(blocks[a])
            values = self._cache.get(
                (db_id, block_no),
                lambda n=block_no: self._store.read_block(db_id, n),
                stored_bytes=self._store.stored_block_bytes(
                    db_id, block_no
                ),
            )
            out[a:b] = values[indices[a:b] - block_no * block_positions]
        return out

    def locality_key(self, db_id, index: int):
        return (str(db_id), int(index) // self._store.block_positions)

    def depth_of(self, db_id, index: int):
        return None  # depth arrays are not paged

    def stats(self) -> dict:
        stats = dict(self._cache.stats())
        stats["codec"] = self._store.codec
        return stats

    def close(self) -> None:
        self._store.close()


class ProbeService:
    """Batched position lookups plus best-move queries over one backend."""

    def __init__(self, backend, game=None, metrics=None):
        self._backend = backend
        self._game = game
        self._metrics = NULL_METRICS if metrics is None else metrics

    # --------------------------------------------------------- constructors

    @classmethod
    def from_database_set(cls, dbs: DatabaseSet, game=None, metrics=None):
        return cls(MemoryBackend(dbs), game=game, metrics=metrics)

    @classmethod
    def from_paged(
        cls,
        store,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        game=None,
        metrics=None,
    ):
        """Serve a paged store (path or open :class:`PagedStore`)."""
        if not isinstance(store, PagedStore):
            store = PagedStore(store)
        scoped = metrics.scoped("cache") if metrics is not None else None
        cache = BlockCache(cache_bytes, metrics=scoped)
        return cls(PagedBackend(store, cache), game=game, metrics=metrics)

    # ------------------------------------------------------------- metadata

    @property
    def backend(self):
        return self._backend

    @property
    def backend_kind(self) -> str:
        return self._backend.kind

    @property
    def game_name(self) -> str:
        return self._backend.game_name

    @property
    def rules(self) -> str:
        return self._backend.rules

    def ids(self) -> list:
        return self._backend.ids()

    def __contains__(self, db_id) -> bool:
        return db_id in self._backend

    def positions(self, db_id) -> int:
        return self._backend.positions(db_id)

    def stats(self) -> dict:
        stats = dict(self._backend.stats())
        stats["backend"] = self._backend.kind
        return stats

    # ---------------------------------------------------------------- probes

    def probe(self, db_id, index: int) -> int:
        """Exact value of position ``index`` of database ``db_id``."""
        self._metrics.inc("probes")
        idx = np.asarray([index], dtype=np.int64)
        self._check_range(db_id, idx)
        return int(self._backend.gather(db_id, idx)[0])

    def probe_many(self, positions) -> np.ndarray:
        """Values for ``[(db_id, index), ...]``, in request order.

        Lookups are executed sorted by the backend's locality key
        (database, then block for the paged backend) so a batch touching
        one block pays for it once regardless of request order.
        """
        positions = list(positions)
        self._metrics.inc("batches")
        self._metrics.inc("probes", len(positions))
        out = np.empty(len(positions), dtype=np.int16)
        if not positions:
            return out
        order = sorted(
            range(len(positions)),
            key=lambda k: self._backend.locality_key(*positions[k]),
        )
        run_start = 0
        while run_start < len(order):
            db_id = positions[order[run_start]][0]
            run_stop = run_start
            while (
                run_stop < len(order)
                and positions[order[run_stop]][0] == db_id
            ):
                run_stop += 1
            slots = order[run_start:run_stop]
            idx = np.asarray(
                [int(positions[k][1]) for k in slots], dtype=np.int64
            )
            self._check_range(db_id, idx)
            out[slots] = self._backend.gather(db_id, idx)
            run_start = run_stop
        return out

    def probe_array(self, db_id, indices) -> np.ndarray:
        """Vectorized ``probe_many`` over one database.

        Bit-identical to ``probe_many([(db_id, i) for i in indices])``
        but with no per-position Python work: the batch is locality-
        sorted with ``argsort``, gathered in one backend call per block
        run, and scattered back to request order.  This is the binary
        server's hot path.
        """
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._metrics.inc("batches")
        self._metrics.inc("probes", int(indices.shape[0]))
        return self._gather_sorted(db_id, indices)

    def probe_packed(self, directory, db_slots, indices) -> np.ndarray:
        """Vectorized mixed-database batch: probe ``i`` targets database
        ``directory[db_slots[i]]`` at position ``indices[i]``.

        The binary wire format of :mod:`repro.aserve.frames` decodes
        straight into these parallel arrays; grouping per database and
        the locality sort are all numpy, so a 64k-probe frame costs a
        handful of Python-level operations, not 64k.
        """
        db_slots = np.asarray(db_slots)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._metrics.inc("batches")
        self._metrics.inc("probes", int(indices.shape[0]))
        out = np.empty(indices.shape[0], dtype=np.int16)
        if not indices.shape[0]:
            return out
        if int(db_slots.max()) >= len(directory) or int(db_slots.min()) < 0:
            raise KeyError("probe references a db slot beyond the directory")
        for slot, db_id in enumerate(directory):
            mask = db_slots == slot
            if mask.any():
                out[mask] = self._gather_sorted(db_id, indices[mask])
        return out

    def _gather_sorted(self, db_id, indices: np.ndarray) -> np.ndarray:
        """Range-check, locality-sort, gather, restore request order."""
        self._check_range(db_id, indices)
        if indices.shape[0] <= 1:
            return self._backend.gather(db_id, indices).astype(
                np.int16, copy=False
            )
        order = np.argsort(indices, kind="stable")
        out = np.empty(indices.shape[0], dtype=np.int16)
        out[order] = self._backend.gather(db_id, indices[order])
        return out

    def depth_of(self, db_id, index: int):
        """Distance for one position, ``None`` when not available."""
        return self._backend.depth_of(db_id, index)

    def _check_range(self, db_id, idx: np.ndarray) -> None:
        n = self._backend.positions(db_id)
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= n):
            bad = int(idx[(idx < 0) | (idx >= n)][0])
            raise IndexError(
                f"index {bad} out of range for db {db_id!r} ({n} positions)"
            )

    # ------------------------------------------------------------ best move

    @property
    def game(self):
        """The capture game, reconstructed from metadata on first use."""
        if self._game is None:
            from ..games.registry import capture_game_for

            self._game = capture_game_for(self)
        return self._game

    def evaluate_moves(self, board: np.ndarray):
        """Exact evaluation of every legal move (probes are batched)."""
        from ..db.query import evaluate_moves

        self._metrics.inc("best_move_queries")
        return evaluate_moves(self.game, self, board)

    def best_moves(self, board: np.ndarray):
        """(position value, optimal moves) — the serving-side twin of
        :func:`repro.db.query.best_moves`."""
        from ..db.query import best_moves

        self._metrics.inc("best_move_queries")
        return best_moves(self.game, self, board)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "ProbeService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
