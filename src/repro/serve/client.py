"""TCP probe client with transparent reconnection.

A :class:`ProbeClient` speaks the wire protocol of
:mod:`repro.serve.protocol` *and* implements the probe protocol of
:class:`~repro.serve.service.ProbeService` (``probe`` / ``probe_many`` /
``__contains__`` / ``depth_of``), so the in-memory query and search code
— :func:`repro.db.query.best_moves`, :func:`repro.db.query.optimal_line`,
:class:`repro.db.search.DatabaseProbingSearch` — runs unmodified against
a remote server (see ``examples/served_play.py``).

Failure handling: every transport error (refused/reset connection,
timeout, torn frame) is normalized to :class:`ProbeError`.  Because the
probe protocol is a pure lookup service, every request is idempotent —
after a dropped connection the client reconnects with bounded backoff
(:class:`~repro.resilience.ReconnectPolicy`) and transparently replays
the in-flight request; a long search mid-game survives a server restart
or a flaky network hop.  Reconnections are counted on
:attr:`ProbeClient.reconnects` and as ``resilience.reconnects`` in an
optional metrics registry.
"""

from __future__ import annotations

import socket
import time

import numpy as np

from ..db.store import DatabaseSet
from ..obs import NULL_METRICS, names
from ..resilience import ReconnectPolicy
from .protocol import ProtocolError, recv_message, send_message

__all__ = ["ProbeError", "ProbeTransportError", "ProbeOverloadedError",
           "ProbeClient"]


class ProbeError(RuntimeError):
    """A probe failed: the server rejected the request (``ok: false``)
    or the connection could not be (re-)established within the policy's
    bounds.  Every raw socket error surfaces as this type."""


class ProbeTransportError(ProbeError):
    """The *transport* failed: the connection could not be established,
    or it dropped and the bounded replays ran out.  Distinct from an
    application rejection (plain :class:`ProbeError` on ``ok: false``)
    because retrying elsewhere can help — the cluster
    :class:`~repro.cluster.router.ShardRouter` fails over to a replica
    on this type only; an ``ok: false`` answer would be identical on
    every replica and is re-raised as-is."""


class ProbeOverloadedError(ProbeError):
    """The server shed this request under load (``reason: overloaded``
    / the binary OVERLOADED flag).  Deliberately *not* a
    :class:`ProbeTransportError`: the endpoint is alive and the
    connection survives, so the router tries the next replica
    immediately without recording a circuit-breaker failure — shedding
    is the server protecting itself, not the server dying."""


class ProbeClient:
    """Blocking client for one probe server, reconnecting on failure.

    ``reconnect=False`` restores fail-fast semantics (no replays);
    ``policy`` bounds connection attempts, request replays, and backoff.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 policy: ReconnectPolicy | None = None,
                 reconnect: bool = True, metrics=None):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.policy = policy if policy is not None else ReconnectPolicy()
        self.reconnect = reconnect
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Connections re-established after a drop (not the initial one).
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._closed = False
        self._info: dict | None = None
        self._connect()

    # ----------------------------------------------------------------- wire

    def _connect(self) -> None:
        attempts = max(self.policy.connect_attempts, 1)
        last: OSError | None = None
        for attempt in range(1, attempts + 1):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                return
            except OSError as exc:
                last = exc
                self._sock = None
                if attempt < attempts:
                    self.metrics.inc(names.RESILIENCE_CONNECT_RETRIES)
                    time.sleep(self.policy.backoff(attempt))
        raise ProbeTransportError(
            f"cannot connect to {self.host}:{self.port} after "
            f"{attempts} attempts: {last}"
        ) from last

    def set_timeout(self, seconds: float) -> None:
        """Adjust the per-request timeout, live connection included —
        the router's deadline machinery caps each failover attempt to
        the remaining call budget through this hook."""
        seconds = float(seconds)
        if seconds <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = seconds
        if self._sock is not None:
            self._sock.settimeout(seconds)

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # staticcheck: disable=RA004 -- best-effort close of an already-failed socket; the caller counts the drop (reconnects / the raised ProbeError), closing twice has no signal to record
                pass
            self._sock = None

    def request(self, message: dict, idempotent: bool = True) -> dict:
        """One round trip; raises :class:`ProbeError` on ``ok: false``.

        Transport failures of idempotent requests are transparently
        replayed over a fresh connection, up to the policy's bound.  All
        probe-protocol operations are idempotent; pass
        ``idempotent=False`` for a hypothetical mutating op to make a
        transport failure surface immediately instead.
        """
        if self._closed:
            raise ProbeError("client is closed")
        replays = (
            self.policy.request_replays
            if (self.reconnect and idempotent)
            else 0
        )
        for attempt in range(replays + 1):
            try:
                if self._sock is None:
                    self._connect()
                    self.reconnects += 1
                    self.metrics.inc(names.RESILIENCE_RECONNECTS)
                send_message(self._sock, message)
                response = recv_message(self._sock)
                if response is None:
                    raise ConnectionError("server closed the connection")
            except ProbeError:
                raise  # _connect exhausted its own bounded retries
            except (OSError, ProtocolError) as exc:
                self._drop_socket()
                if attempt >= replays:
                    raise ProbeTransportError(
                        f"request {message.get('op')!r} to "
                        f"{self.host}:{self.port} failed: {exc}"
                    ) from exc
                time.sleep(self.policy.backoff(attempt + 1))
                continue
            if not response.get("ok"):
                message = response.get("error", "unknown server error")
                if response.get("reason") == "overloaded":
                    raise ProbeOverloadedError(message)
                raise ProbeError(message)
            return response
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------- metadata

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def info(self) -> dict:
        """Server metadata (cached: game, rules, ids, positions)."""
        if self._info is None:
            response = self.request({"op": "info"})
            response.pop("ok")
            response["ids"] = [
                DatabaseSet._parse_id(str(i)) for i in response["ids"]
            ]
            self._info = response
        return self._info

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    @property
    def game_name(self) -> str:
        return self.info()["game"]

    @property
    def rules(self) -> str:
        return self.info()["rules"]

    def ids(self) -> list:
        return list(self.info()["ids"])

    def __contains__(self, db_id) -> bool:
        return db_id in self.info()["ids"]

    def positions(self, db_id) -> int:
        return int(self.info()["positions"][str(db_id)])

    # ---------------------------------------------------------------- probes

    def probe(self, db_id, index: int) -> int:
        return int(self.request(
            {"op": "probe", "db": db_id, "index": int(index)}
        )["value"])

    def probe_many(self, positions) -> np.ndarray:
        pairs = [[db_id, int(index)] for db_id, index in positions]
        values = self.request({"op": "probe_many", "positions": pairs})["values"]
        return np.asarray(values, dtype=np.int16)

    def depth_of(self, db_id, index: int):
        return None  # distances are not served over the wire

    def best_move(self, board) -> dict:
        """Server-side best move: ``{"value", "pits", "moves"}``."""
        board = [int(x) for x in np.asarray(board).reshape(12)]
        response = self.request({"op": "best_move", "board": board})
        response.pop("ok")
        return response

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Close the connection; safe to call any number of times."""
        self._closed = True
        self._drop_socket()

    def __enter__(self) -> "ProbeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
