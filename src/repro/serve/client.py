"""TCP probe client.

A :class:`ProbeClient` speaks the wire protocol of
:mod:`repro.serve.protocol` *and* implements the probe protocol of
:class:`~repro.serve.service.ProbeService` (``probe`` / ``probe_many`` /
``__contains__`` / ``depth_of``), so the in-memory query and search code
— :func:`repro.db.query.best_moves`, :func:`repro.db.query.optimal_line`,
:class:`repro.db.search.DatabaseProbingSearch` — runs unmodified against
a remote server (see ``examples/served_play.py``).
"""

from __future__ import annotations

import socket

import numpy as np

from ..db.store import DatabaseSet
from .protocol import recv_message, send_message

__all__ = ["ProbeError", "ProbeClient"]


class ProbeError(RuntimeError):
    """The server rejected a request (``ok: false``)."""


class ProbeClient:
    """Blocking client for one probe server connection."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._info: dict | None = None

    # ----------------------------------------------------------------- wire

    def request(self, message: dict) -> dict:
        """One round trip; raises :class:`ProbeError` on ``ok: false``."""
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if response is None:
            raise ProbeError("server closed the connection")
        if not response.get("ok"):
            raise ProbeError(response.get("error", "unknown server error"))
        return response

    # ------------------------------------------------------------- metadata

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def info(self) -> dict:
        """Server metadata (cached: game, rules, ids, positions)."""
        if self._info is None:
            response = self.request({"op": "info"})
            response.pop("ok")
            response["ids"] = [
                DatabaseSet._parse_id(str(i)) for i in response["ids"]
            ]
            self._info = response
        return self._info

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    @property
    def game_name(self) -> str:
        return self.info()["game"]

    @property
    def rules(self) -> str:
        return self.info()["rules"]

    def ids(self) -> list:
        return list(self.info()["ids"])

    def __contains__(self, db_id) -> bool:
        return db_id in self.info()["ids"]

    def positions(self, db_id) -> int:
        return int(self.info()["positions"][str(db_id)])

    # ---------------------------------------------------------------- probes

    def probe(self, db_id, index: int) -> int:
        return int(self.request(
            {"op": "probe", "db": db_id, "index": int(index)}
        )["value"])

    def probe_many(self, positions) -> np.ndarray:
        pairs = [[db_id, int(index)] for db_id, index in positions]
        values = self.request({"op": "probe_many", "positions": pairs})["values"]
        return np.asarray(values, dtype=np.int16)

    def depth_of(self, db_id, index: int):
        return None  # distances are not served over the wire

    def best_move(self, board) -> dict:
        """Server-side best move: ``{"value", "pits", "moves"}``."""
        board = [int(x) for x in np.asarray(board).reshape(12)]
        response = self.request({"op": "best_move", "board": board})
        response.pop("ok")
        return response

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ProbeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
