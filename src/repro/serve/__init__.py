"""repro.serve — paged, cached endgame-database serving.

Turns solved databases into a servable artifact: a paged on-disk format
with O(1) block access (:mod:`~repro.serve.pagedstore`), an LRU block
cache with a byte budget (:mod:`~repro.serve.cache`), a batched probe
service over either storage backend (:mod:`~repro.serve.service`), and
a TCP server/client pair speaking a length-prefixed JSON protocol
(:mod:`~repro.serve.server` / :mod:`~repro.serve.client`).  See
docs/SERVING.md.
"""

from .cache import BlockCache
from .client import ProbeClient, ProbeError
from .pagedstore import DEFAULT_BLOCK_POSITIONS, PagedStore, write_paged
from .protocol import MAX_MESSAGE_BYTES, ProtocolError, recv_message, send_message
from .server import ProbeServer
from .service import MemoryBackend, PagedBackend, ProbeService

__all__ = [
    "BlockCache",
    "DEFAULT_BLOCK_POSITIONS",
    "MAX_MESSAGE_BYTES",
    "MemoryBackend",
    "PagedBackend",
    "PagedStore",
    "ProbeClient",
    "ProbeError",
    "ProbeServer",
    "ProbeService",
    "ProtocolError",
    "recv_message",
    "send_message",
    "write_paged",
]
