"""High-level convenience API.

These wrappers cover the common cases in a single call; power users work
with :class:`~repro.core.sequential.SequentialSolver` and
:class:`~repro.core.parallel.driver.ParallelSolver` directly.
"""

from __future__ import annotations

from .core.parallel.driver import ParallelConfig, ParallelSolver
from .core.sequential import SequentialSolver
from .core.wdl import solve_wdl
from .db.store import DatabaseSet
from .games.awari import AwariRules
from .games.awari_db import AwariCaptureGame
from .games.base import WDLGame

__all__ = ["solve_awari", "solve_wdl_game"]


def solve_awari(
    stones: int,
    procs: int = 1,
    rules: AwariRules | None = None,
    config: ParallelConfig | None = None,
    with_depth: bool = False,
    metrics=None,
):
    """Compute all awari endgame databases up to ``stones``.

    ``procs == 1`` runs the sequential solver and returns
    ``(DatabaseSet, SolveReport)``.  ``procs > 1`` runs the simulated
    cluster and returns ``(DatabaseSet, list[DatabaseRunStats])`` — the
    values are identical either way, only the measurements differ.
    ``config`` overrides everything else when given.  ``with_depth``
    additionally stores distance-to-outcome arrays (sequential path only).
    ``metrics`` is an optional :class:`~repro.obs.MetricsRegistry` the
    chosen solver reports into (see docs/OBSERVABILITY.md).
    """
    if stones < 0:
        raise ValueError("stones must be >= 0")
    game = AwariCaptureGame(rules)
    if config is None and procs <= 1:
        solver = SequentialSolver(game, collect_depth=with_depth, metrics=metrics)
        values, report = solver.solve(stones)
        depths = solver.depths if with_depth else None
        return _dbset(game, values, depths), report
    if with_depth:
        raise ValueError("with_depth requires the sequential solver (procs=1)")
    if config is None:
        config = ParallelConfig(n_procs=procs, predecessor_mode="unmove-cached")
    values, stats = ParallelSolver(game, config, metrics=metrics).solve(stones)
    return _dbset(game, values), stats


def _dbset(game: AwariCaptureGame, values: dict, depths=None) -> DatabaseSet:
    return DatabaseSet(
        game_name=game.name,
        values=values,
        rules=game.rules.describe(),
        depths=depths,
    )


def solve_wdl_game(game: WDLGame):
    """Win/draw/loss retrograde analysis of any :class:`WDLGame`."""
    return solve_wdl(game)
