"""RA004 — exception handlers in worker/server paths must account.

A fault-tolerant system is allowed to catch broadly — the probe server
must survive any request, the supervised pool must survive any task —
but it is never allowed to *swallow silently*: every broad handler must
re-raise, delegate (log, count via ``repro.obs``, record the failure),
or the operators lose the only signal that something went wrong 40
hours into a solve.

Two shapes are flagged in library code (``src/repro/``):

* a **broad** handler (bare ``except:``, ``except Exception``,
  ``except BaseException``, alone or in a tuple) whose body neither
  ``raise``s nor makes any call — a handler that only ``pass``es,
  assigns, or ``return``s a constant is hiding the failure;
* in the request-path modules (probe server/client, multiprocess
  fan-out, supervised pool), a ``pass``-only handler of *any* type —
  even a narrow ``except OSError: pass`` there drops a client or a
  worker on the floor without a counter.
"""

from __future__ import annotations

import ast

from .framework import Checker, register

_BROAD = {"Exception", "BaseException"}

#: Modules where even a narrow pass-only handler must count the event.
_REQUEST_PATHS = (
    "src/repro/serve/server.py",
    "src/repro/serve/client.py",
    "src/repro/core/multiproc.py",
    "src/repro/resilience/pool.py",
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for t in types:
        if isinstance(t, ast.Name) and t.id in _BROAD:
            return True
        if isinstance(t, ast.Attribute) and t.attr in _BROAD:
            return True
    return False


def _handles(handler: ast.ExceptHandler) -> bool:
    """True if the body re-raises or delegates (makes any call)."""
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call)):
            return True
    return False


def _pass_only(handler: ast.ExceptHandler) -> bool:
    return all(isinstance(stmt, ast.Pass) for stmt in handler.body)


@register
class ExceptionHygieneChecker(Checker):
    """Flag handlers that swallow failures silently (see module doc)."""

    rule_id = "RA004"
    title = "broad exception handlers must re-raise, log or count"
    rationale = (
        "Catching Exception (or anything, in a request path) and doing "
        "nothing erases the only evidence of a failure; handlers must "
        "re-raise, or delegate to logging / a repro.obs counter / a "
        "failure recorder so the event is observable."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_file(self, ctx):
        in_request_path = ctx.relpath in _REQUEST_PATHS
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node):
                if not _handles(node):
                    kind = ("bare except" if node.type is None
                            else f"except {ast.unparse(node.type)}")
                    yield (node.lineno, node.col_offset,
                           f"{kind} swallows the failure; re-raise, "
                           f"log, or count it via repro.obs")
            elif in_request_path and _pass_only(node):
                yield (node.lineno, node.col_offset,
                       f"except {ast.unparse(node.type)}: pass in a "
                       f"request path drops the event silently; count "
                       f"it via repro.obs or re-raise")
