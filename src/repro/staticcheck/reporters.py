"""Text, JSON and SARIF rendering of a checker :class:`Report`."""

from __future__ import annotations

import json

from .framework import Report

__all__ = ["render_text", "render_json", "render_sarif"]

#: Bumped when the JSON shape changes; CI parses this artifact.
JSON_SCHEMA = "repro/staticcheck-report/v1"

#: The SARIF standard pinned by GitHub code-scanning ingestion.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def render_text(report: Report, verbose: bool = False) -> str:
    """Human-readable findings, one ``path:line:col RULE message`` per
    line, with a summary footer."""
    lines = []
    for finding in report.findings:
        lines.append(f"{finding.location()} {finding.rule} "
                     f"{finding.message}")
    if verbose:
        for finding in report.suppressed:
            lines.append(f"{finding.location()} {finding.rule} "
                         f"suppressed: {finding.justification}")
    counts = report.by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}×{n}" for rule, n in
                             sorted(counts.items()))
        lines.append(f"{len(report.findings)} finding(s) "
                     f"({per_rule}) in {report.files_scanned} file(s); "
                     f"{len(report.suppressed)} suppressed")
    else:
        lines.append(f"clean: {report.files_scanned} file(s), "
                     f"{len(report.suppressed)} suppression(s)")
    return "\n".join(lines)


def _finding_dict(finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "suppressed": finding.suppressed,
        "justification": finding.justification,
    }


def render_json(report: Report) -> str:
    """Machine-readable report (the CI artifact)."""
    return json.dumps(
        {
            "schema": JSON_SCHEMA,
            "files_scanned": report.files_scanned,
            "findings": [_finding_dict(f) for f in report.findings],
            "suppressed": [_finding_dict(f) for f in report.suppressed],
            "counts": report.by_rule(),
            "exit_code": report.exit_code,
        },
        indent=2,
        sort_keys=True,
    ) + "\n"


def _sarif_result(finding) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; ours are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.suppressed:
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": finding.justification,
            }
        ]
    return result


def render_sarif(report: Report) -> str:
    """SARIF 2.1.0 report — what GitHub code scanning ingests to turn
    findings into PR diff annotations.  Active findings are ``error``
    results; justified suppressions ride along as suppressed results so
    the budget stays visible in the scanning UI too."""
    from .framework import all_checkers

    rules = [
        {
            "id": rule_id,
            "name": cls.__name__,
            "shortDescription": {"text": cls.title},
            "fullDescription": {"text": cls.rationale},
            "help": {"text": "See docs/STATICCHECK.md for the rule "
                             "catalog and suppression syntax."},
        }
        for rule_id, cls in all_checkers().items()
    ]
    run = {
        "tool": {
            "driver": {
                "name": "repro-staticcheck",
                "informationUri": "docs/STATICCHECK.md",
                "rules": rules,
            }
        },
        "results": [
            _sarif_result(f)
            for f in list(report.findings) + list(report.suppressed)
        ],
        "columnKind": "utf16CodeUnits",
    }
    return json.dumps(
        {
            "$schema": SARIF_SCHEMA,
            "version": SARIF_VERSION,
            "runs": [run],
        },
        indent=2,
        sort_keys=True,
    ) + "\n"
