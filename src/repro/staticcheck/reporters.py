"""Text and JSON rendering of a checker :class:`Report`."""

from __future__ import annotations

import json

from .framework import Report

__all__ = ["render_text", "render_json"]

#: Bumped when the JSON shape changes; CI parses this artifact.
JSON_SCHEMA = "repro/staticcheck-report/v1"


def render_text(report: Report, verbose: bool = False) -> str:
    """Human-readable findings, one ``path:line:col RULE message`` per
    line, with a summary footer."""
    lines = []
    for finding in report.findings:
        lines.append(f"{finding.location()} {finding.rule} "
                     f"{finding.message}")
    if verbose:
        for finding in report.suppressed:
            lines.append(f"{finding.location()} {finding.rule} "
                         f"suppressed: {finding.justification}")
    counts = report.by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}×{n}" for rule, n in
                             sorted(counts.items()))
        lines.append(f"{len(report.findings)} finding(s) "
                     f"({per_rule}) in {report.files_scanned} file(s); "
                     f"{len(report.suppressed)} suppressed")
    else:
        lines.append(f"clean: {report.files_scanned} file(s), "
                     f"{len(report.suppressed)} suppression(s)")
    return "\n".join(lines)


def _finding_dict(finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "suppressed": finding.suppressed,
        "justification": finding.justification,
    }


def render_json(report: Report) -> str:
    """Machine-readable report (the CI artifact)."""
    return json.dumps(
        {
            "schema": JSON_SCHEMA,
            "files_scanned": report.files_scanned,
            "findings": [_finding_dict(f) for f in report.findings],
            "suppressed": [_finding_dict(f) for f in report.suppressed],
            "counts": report.by_rule(),
            "exit_code": report.exit_code,
        },
        indent=2,
        sort_keys=True,
    ) + "\n"
