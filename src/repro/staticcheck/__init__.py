"""repro.staticcheck — AST-based enforcement of the repo's invariants.

The concurrency and durability contracts accumulated by PRs 1–4
(atomic checkpoint writes, fork-safe pool fan-out, cataloged metric
names, accounted exception handling, documented CLI flags) are checked
mechanically here instead of by convention.  ``repro staticcheck
src/ tests/ scripts/`` runs every rule; see docs/STATICCHECK.md for
the rule catalog and the suppression syntax.
"""

from .framework import (
    Checker,
    FileContext,
    Finding,
    Project,
    Report,
    all_checkers,
    check_source,
    register,
    run_paths,
)
from .reporters import render_json, render_text

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "Project",
    "Report",
    "all_checkers",
    "check_source",
    "register",
    "run_paths",
    "render_json",
    "render_text",
]
