"""RA011 — the binary frame format may not drift from its schema.

Three artifacts describe the probe-frame wire format: the
implementation constants in ``src/repro/aserve/frames.py``, the
declarative schema in ``src/repro/aserve/schema.py``, and the
frame-layout table in ``docs/SERVING.md``.  Peers on different
revisions interoperate only while all three agree — a struct format
edited in ``frames.py`` alone is a silent protocol fork that
handshakes fine and then mis-parses every body.  This rule diffs the
implementation (by AST, so a broken ``frames.py`` still checks) and
the docs table against the schema on every run, making a wire-format
change reviewable only as a synchronized three-file diff.

Checked, with exact line numbers:

* every ``struct.Struct("...")`` format string against
  ``schema.FRAME_STRUCTS`` (both directions: undeclared struct, stale
  schema entry);
* every ``np.dtype(...)`` literal against ``schema.FRAME_DTYPES``
  (structural comparison of the literal spec);
* every ``OP_*`` / ``FLAG_*`` integer constant against
  ``schema.OPCODES`` / ``schema.FLAGS``;
* the ``docs/SERVING.md`` frame-layout table rows (offset, size,
  field) against ``schema.header_layout()``, and the doc's opcode
  listing against ``schema.OPCODES``.

The schema module is loaded by file path, never through the
``repro.aserve`` package, so the check cannot be broken by the very
drift it is hunting.
"""

from __future__ import annotations

import ast
import importlib.util
import re
from pathlib import Path

from .framework import Checker, register

_FRAMES_REL = "src/repro/aserve/frames.py"
_SCHEMA_REL = "src/repro/aserve/schema.py"
_DOC_REL = "docs/SERVING.md"

_TABLE_ROW_RE = re.compile(
    r"^\|\s*(?P<offset>\d+)\s*\|\s*(?P<size>\d+|\.\.\.)\s*\|"
    r"\s*(?P<field>[^|]+?)\s*\|\s*$"
)
_DOC_OPCODE_RE = re.compile(r"`(?P<name>\w+)`\s*=\s*(?P<num>\d+)")

#: Substring each schema header field must appear as in its doc row.
_FIELD_DOC_WORDS = {
    "version": "version",
    "opcode": "opcode",
    "flags": "flags",
    "seq": "sequence",
    "body": "body",
}


def _load_schema(root: Path):
    """The schema module, imported by path (no package side effects)."""
    path = root / _SCHEMA_REL
    if not path.is_file():
        return None
    spec = importlib.util.spec_from_file_location(
        "_staticcheck_frame_schema", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _literal(node):
    """``ast.literal_eval`` that returns a sentinel on failure."""
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return _literal  # unmistakable non-value sentinel


def _dtype_spec_equal(found, declared) -> bool:
    """Structural dtype-spec comparison: plain strings compare as
    strings; record specs compare field-by-field as (name, format)."""
    if isinstance(found, str) or isinstance(declared, str):
        return found == declared
    try:
        return [tuple(f) for f in found] == [tuple(f) for f in declared]
    except TypeError:
        return False


@register
class FrameSchemaChecker(Checker):
    """Diff frames.py and docs/SERVING.md against aserve/schema.py."""

    rule_id = "RA011"
    title = "frame implementation or docs drifted from the schema"
    rationale = (
        "struct formats, dtypes, opcodes and flags in aserve/frames.py "
        "and the frame-layout table in docs/SERVING.md must match the "
        "declarative schema in aserve/schema.py — a one-sided edit is "
        "a silent wire-protocol fork between peers on different "
        "revisions (docs/STATICCHECK.md, frame schema)."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath == _FRAMES_REL

    # -------------------------------------------------------- frames.py

    def check_file(self, ctx):
        schema = _load_schema(ctx.project.root)
        if schema is None:
            yield (1, 0, f"frame schema module {_SCHEMA_REL} is missing; "
                         f"frames.py cannot be validated")
            return
        structs: dict = {}
        dtypes: dict = {}
        opcodes: dict = {}
        flags: dict = {}
        lines: dict = {}
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name, value = target.id, node.value
            lines[name] = node.lineno
            if isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Attribute):
                owner = value.func.value
                if isinstance(owner, ast.Name) and value.args:
                    if owner.id == "struct" and \
                            value.func.attr == "Struct":
                        structs[name] = _literal(value.args[0])
                    elif owner.id == "np" and value.func.attr == "dtype":
                        dtypes[name] = _literal(value.args[0])
            elif isinstance(value, ast.Constant) and \
                    isinstance(value.value, int):
                if name.startswith("OP_") and name != "OP_NAMES":
                    opcodes[name] = value.value
                elif name.startswith("FLAG_"):
                    flags[name] = value.value

        if not (structs or dtypes or opcodes or flags) \
                and ctx.relpath != _FRAMES_REL:
            # Scope was bypassed (fixture testing) on a file that
            # declares no frame artifacts at all: not a frame module.
            return

        for label, found, declared in [
            ("struct format", structs, schema.FRAME_STRUCTS),
            ("dtype", dtypes, schema.FRAME_DTYPES),
            ("opcode", opcodes, schema.OPCODES),
            ("flag", flags, schema.FLAGS),
        ]:
            comparator = (_dtype_spec_equal if label == "dtype"
                          else lambda a, b: a == b)
            for name, value in sorted(found.items()):
                if name not in declared:
                    yield (lines[name], 0,
                           f"{label} {name} is not declared in "
                           f"{_SCHEMA_REL}; add it there (and to the "
                           f"docs) in the same change")
                elif not comparator(value, declared[name]):
                    yield (lines[name], 0,
                           f"{label} {name} = {value!r} disagrees with "
                           f"{_SCHEMA_REL} ({declared[name]!r}); a "
                           f"wire-format change must update both")
            for name in sorted(set(declared) - set(found)):
                yield (1, 0,
                       f"{label} {name} is declared in {_SCHEMA_REL} "
                       f"but missing from frames.py")

    # ---------------------------------------------------------- the docs

    def finalize(self, project):
        schema = _load_schema(project.root)
        if schema is None:
            return  # already reported against frames.py
        doc = project.read_doc(_DOC_REL)
        if doc is None:
            yield (_DOC_REL, 1, "docs/SERVING.md is missing but the "
                                "frame schema expects its layout table")
            return
        doc_lines = doc.splitlines()
        rows = []  # (lineno, offset, size_text, description)
        for lineno, line in enumerate(doc_lines, start=1):
            match = _TABLE_ROW_RE.match(line.strip())
            if match:
                rows.append((lineno, int(match.group("offset")),
                             match.group("size"), match.group("field")))
        expected = schema.header_layout()
        if len(rows) < len(expected):
            yield (_DOC_REL, 1,
                   f"frame-layout table has {len(rows)} rows; the "
                   f"schema header needs {len(expected)} "
                   f"(fields {[f for f, _, _ in expected]})")
            return
        rows = rows[: len(expected)]
        for (lineno, offset, size_text, desc), (field, want_off, want_size) \
                in zip(rows, expected):
            want_size_text = "..." if want_size is None else str(want_size)
            if offset != want_off or size_text != want_size_text:
                yield (_DOC_REL, lineno,
                       f"layout row for {field!r} says offset {offset} "
                       f"size {size_text}; schema says offset "
                       f"{want_off} size {want_size_text}")
            word = _FIELD_DOC_WORDS.get(field, field)
            if word not in desc.lower():
                yield (_DOC_REL, lineno,
                       f"layout row at offset {offset} should describe "
                       f"{field!r} (expected the word {word!r})")
        version_row = rows[0]
        version_hex = f"0x{schema.PROTOCOL_VERSION:02X}"
        if version_hex.lower() not in version_row[3].lower():
            yield (_DOC_REL, version_row[0],
                   f"version row does not mention the protocol version "
                   f"byte {version_hex}")
        documented = {f"OP_{name.upper()}": int(num)
                      for name, num in _DOC_OPCODE_RE.findall(doc)}
        for op_name, value in sorted(schema.OPCODES.items()):
            if op_name not in documented:
                yield (_DOC_REL, 1,
                       f"docs/SERVING.md never lists "
                       f"`{op_name[3:].lower()}`={value} in the opcode "
                       f"listing")
            elif documented[op_name] != value:
                yield (_DOC_REL, 1,
                       f"docs/SERVING.md lists "
                       f"`{op_name[3:].lower()}`={documented[op_name]} "
                       f"but the schema says {value}")
