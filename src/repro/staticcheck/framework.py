"""Checker framework: rule registry, suppressions, file walking.

``repro.staticcheck`` exists because the repo's correctness story rests
on conventions — atomic checkpoint writes, fork-safe pool workers,
cataloged metric names, accounted exception handling, documented CLI
flags — that a month-long parallel solve cannot afford to have silently
broken.  Each convention is a :class:`Checker` subclass registered under
a stable rule id (``RA001``…); the framework parses every file once,
hands the AST to each applicable checker, and filters the findings
through per-line suppression comments.

Suppression syntax (see docs/STATICCHECK.md)::

    risky_call()  # staticcheck: disable=RA001 -- why this one is safe
    # staticcheck: disable-file=RA003 -- whole-file opt-out, same shape

A suppression **must** carry a justification after ``--`` (or an em
dash); one that doesn't — or that names an unknown rule — is itself
reported as an ``RA000`` finding, so the suppression budget stays
visible in review.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "FileContext",
    "Project",
    "Checker",
    "Report",
    "register",
    "all_checkers",
    "run_paths",
    "check_source",
]

#: Rule id reserved for the framework itself (parse errors, bad
#: suppressions); it cannot be suppressed.
FRAMEWORK_RULE = "RA000"

_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*(?P<scope>disable|disable-file)="
    r"(?P<rules>[A-Za-z0-9_,]+)"
    r"(?:\s*(?:--|—|–)\s*(?P<why>\S.*?))?\s*$"
)

#: A comment that *looks* like a suppression attempt; anything matching
#: this but not the full syntax is reported as malformed.  The ``\s*``
#: keeps the regex from matching its own source text.
_HINT_RE = re.compile(r"#\s*staticcheck\s*:")

#: Directory names never walked into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class Project:
    """Shared cross-file state: the repo root and cached doc text."""

    root: Path
    _docs: dict = field(default_factory=dict)

    def read_doc(self, relpath: str) -> str | None:
        """Cached text of a doc file under the root, None if absent."""
        if relpath not in self._docs:
            path = self.root / relpath
            try:
                self._docs[relpath] = path.read_text()
            except OSError:
                self._docs[relpath] = None
        return self._docs[relpath]

    def flag_documentation(self) -> str:
        """Concatenated README + docs/*.md, the corpus RA005 checks
        CLI flags against."""
        key = "__flags__"
        if key not in self._docs:
            parts = []
            for candidate in [self.root / "README.md"] + sorted(
                (self.root / "docs").glob("*.md")
            ):
                try:
                    parts.append(candidate.read_text())
                except OSError:
                    continue
            self._docs[key] = "\n".join(parts)
        return self._docs[key]


@dataclass
class FileContext:
    """One parsed source file, as handed to every checker."""

    project: Project
    path: Path
    relpath: str  # posix, relative to project.root
    source: str
    tree: ast.Module

    @property
    def lines(self) -> list:
        return self.source.splitlines()


class Checker:
    """Base class: subclass, set the class attributes, register."""

    rule_id = ""
    title = ""
    #: One-paragraph rationale rendered by ``--list-rules`` and the docs.
    rationale = ""

    def applies_to(self, relpath: str) -> bool:
        """Default scope; the runner can be told to ignore it (tests
        exercising fixture files do)."""
        return True

    def check_file(self, ctx: FileContext):
        """Yield ``(line, col, message)`` tuples for one file."""
        return ()

    def finalize(self, project: Project):
        """Optional project-level pass after all files; yields
        ``(relpath, line, message)`` tuples (e.g. doc drift)."""
        return ()


_REGISTRY: dict[str, type] = {}


def register(cls):
    """Class decorator adding a :class:`Checker` to the registry."""
    if not cls.rule_id or cls.rule_id == FRAMEWORK_RULE:
        raise ValueError(f"checker {cls.__name__} needs a real rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_checkers() -> dict:
    """rule id -> checker class, importing the built-in rules once."""
    from . import rules_async  # noqa: F401
    from . import rules_atomic  # noqa: F401
    from . import rules_cliflags  # noqa: F401
    from . import rules_exceptions  # noqa: F401
    from . import rules_forksafe  # noqa: F401
    from . import rules_frameschema  # noqa: F401
    from . import rules_locks  # noqa: F401
    from . import rules_metrics  # noqa: F401
    from . import rules_resources  # noqa: F401
    from . import rules_sockets  # noqa: F401

    return dict(sorted(_REGISTRY.items()))


# ------------------------------------------------------------- suppressions


@dataclass
class _Suppressions:
    """Parsed suppression comments of one file."""

    by_line: dict  # line -> {rule: justification}
    file_level: dict  # rule -> justification
    problems: list  # (line, message) — malformed suppressions

    @classmethod
    def scan(cls, source: str, known_rules) -> "_Suppressions":
        by_line: dict = {}
        file_level: dict = {}
        problems: list = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                if _HINT_RE.search(line):
                    problems.append(
                        (lineno, "malformed staticcheck comment "
                                 "(expected disable=RULE -- justification)")
                    )
                continue
            why = match.group("why") or ""
            rules = [r for r in match.group("rules").split(",") if r]
            if not why:
                problems.append(
                    (lineno, "suppression without a justification "
                             "(append ' -- why this is safe')")
                )
                continue  # an unjustified suppression does not suppress
            for rule in rules:
                if rule not in known_rules:
                    problems.append((lineno, f"unknown rule {rule!r} in "
                                             f"suppression"))
                    continue
                if match.group("scope") == "disable-file":
                    file_level[rule] = why
                else:
                    by_line.setdefault(lineno, {})[rule] = why
        return cls(by_line, file_level, problems)

    def lookup(self, rule: str, line: int):
        """Justification suppressing ``rule`` at ``line``, else None."""
        if rule in self.file_level:
            return self.file_level[rule]
        return self.by_line.get(line, {}).get(rule)


# -------------------------------------------------------------------- run


@dataclass
class Report:
    """Everything one checker run produced."""

    findings: list = field(default_factory=list)  # active (unsuppressed)
    suppressed: list = field(default_factory=list)
    files_scanned: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def by_rule(self) -> dict:
        counts: dict = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def _iter_py_files(paths, root: Path):
    """Expand files/directories into .py files, deterministically.

    Fixture trees (``.../staticcheck/fixtures/``) hold deliberate
    violations for the checker's own tests, so directory walks skip
    them; naming a fixture file *directly* still checks it.
    """
    seen = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for sub in sorted(path.rglob("*.py")):
            parts = sub.parts
            if any(part in _SKIP_DIRS for part in parts):
                continue
            if "fixtures" in parts:
                i = parts.index("fixtures")
                if i > 0 and "staticcheck" in parts[i - 1]:
                    continue
            if sub not in seen:
                seen.add(sub)
                yield sub


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_source(source: str, relpath: str, project: Project,
                 checkers, enforce_scope: bool = True) -> Report:
    """Check one in-memory source file (the unit the tests drive)."""
    report = Report(files_scanned=1)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        report.findings.append(Finding(
            FRAMEWORK_RULE, relpath, exc.lineno or 1, exc.offset or 0,
            f"file does not parse: {exc.msg}",
        ))
        return report
    # Suppressions validate against the *full* registry, not just the
    # checkers selected for this run — `--rules RA007` must not turn
    # every unrelated suppression into an RA000.
    suppressions = _Suppressions.scan(
        source, set(all_checkers()) | set(checkers) | {FRAMEWORK_RULE}
    )
    for line, message in suppressions.problems:
        report.findings.append(
            Finding(FRAMEWORK_RULE, relpath, line, 0, message)
        )
    ctx = FileContext(project, Path(relpath), relpath, source, tree)
    for rule_id, checker in checkers.items():
        if enforce_scope and not checker.applies_to(relpath):
            continue
        for line, col, message in checker.check_file(ctx):
            why = suppressions.lookup(rule_id, line)
            finding = Finding(rule_id, relpath, line, col, message,
                              suppressed=why is not None,
                              justification=why or "")
            (report.suppressed if why is not None
             else report.findings).append(finding)
    return report


def run_paths(paths, root=None, rules=None,
              enforce_scope: bool = True) -> Report:
    """Run every (or the selected) checker over files and directories."""
    root = Path(root) if root is not None else Path.cwd()
    project = Project(root=root)
    classes = all_checkers()
    if rules is not None:
        unknown = set(rules) - set(classes)
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        classes = {r: classes[r] for r in rules}
    checkers = {rule_id: cls() for rule_id, cls in classes.items()}
    report = Report()
    for path in _iter_py_files(paths, root):
        relpath = _relpath(path, root)
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            report.findings.append(Finding(
                FRAMEWORK_RULE, relpath, 1, 0, f"unreadable file: {exc}"
            ))
            continue
        sub = check_source(source, relpath, project, checkers,
                           enforce_scope=enforce_scope)
        report.findings.extend(sub.findings)
        report.suppressed.extend(sub.suppressed)
        report.files_scanned += 1
    for checker in checkers.values():
        for relpath, line, message in checker.finalize(project):
            report.findings.append(
                Finding(checker.rule_id, relpath, line, 0, message)
            )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
