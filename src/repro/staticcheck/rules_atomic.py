"""RA001 — atomic-write discipline for persistent files.

A checkpoint, manifest, paged database or ready-file that is half
written when the process dies must never be mistaken for a complete
one.  The repo's answer (docs/RESILIENCE.md) is a single pattern —
write to a temp file, fsync, ``os.replace`` — implemented once in
``resilience/checkpoint.py`` (and, for the paged format with its own
trailer validation, ``serve/pagedstore.py``).  Library code therefore
must not open files for writing directly: route every durable write
through the blessed helpers.

Flagged calls (library code under ``src/repro/`` only — tests and
scripts write scratch files at will):

* ``open(path, "w" / "wb" / "a" / ...)`` — any truncating/appending
  text or binary mode
* ``np.save`` / ``np.savez`` / ``np.savez_compressed``
* ``json.dump`` / ``pickle.dump``
* ``<path>.write_text(...)`` / ``<path>.write_bytes(...)``

``"r"``/``"r+b"`` opens are untouched (the fault injector patches
checkpoint bytes in place on purpose).
"""

from __future__ import annotations

import ast

from .framework import Checker, register

#: Modules that implement the atomic pattern and may write directly.
_BLESSED = (
    "src/repro/resilience/checkpoint.py",
    "src/repro/serve/pagedstore.py",
)

_NUMPY_SAVERS = {"save", "savez", "savez_compressed"}
_STREAM_DUMPERS = {"json", "pickle", "marshal"}
_PATH_WRITERS = {"write_text", "write_bytes"}


def _write_mode(call: ast.Call):
    """The literal mode argument of an ``open`` call if it writes."""
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return None  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if any(ch in mode.value for ch in "wax"):
            return mode.value
    return None


@register
class AtomicWriteChecker(Checker):
    """Flag direct persistent writes in library code (see module doc)."""

    rule_id = "RA001"
    title = "persistent writes must go through the atomic helpers"
    rationale = (
        "Bare open(.., 'w'), np.save, json.dump and Path.write_text "
        "leave torn files behind on a crash; library code must use "
        "atomic_write_bytes/text/json, atomic_save_array or "
        "atomic_savez_compressed from resilience/checkpoint.py (or the "
        "paged-store writer), which write tmp+fsync+os.replace."
    )

    def applies_to(self, relpath: str) -> bool:
        return (
            relpath.startswith("src/repro/")
            and relpath not in _BLESSED
        )

    def check_file(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _write_mode(node)
                if mode is not None:
                    yield (node.lineno, node.col_offset,
                           f"bare open(..., {mode!r}) writes "
                           f"non-atomically; use the atomic_write_* "
                           f"helpers in resilience/checkpoint.py")
            elif isinstance(func, ast.Attribute):
                recv = func.value
                if (isinstance(recv, ast.Name)
                        and recv.id in ("np", "numpy")
                        and func.attr in _NUMPY_SAVERS):
                    yield (node.lineno, node.col_offset,
                           f"np.{func.attr} writes non-atomically; use "
                           f"atomic_save_array / atomic_savez_compressed")
                elif (isinstance(recv, ast.Name)
                        and recv.id in _STREAM_DUMPERS
                        and func.attr == "dump"):
                    yield (node.lineno, node.col_offset,
                           f"{recv.id}.dump to a file handle writes "
                           f"non-atomically; serialize to a string/bytes "
                           f"and use atomic_write_text/bytes")
                elif func.attr in _PATH_WRITERS:
                    yield (node.lineno, node.col_offset,
                           f".{func.attr}() writes non-atomically; use "
                           f"atomic_write_text/bytes")
