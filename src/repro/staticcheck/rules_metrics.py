"""RA003 — metric names must come from the generated catalog.

PR 4 spent real effort re-aligning ``moves_generated`` and
``exit_lookups`` between the sequential and multiprocess builders after
their free-typed metric strings drifted apart.  This rule makes that
class of bug a lint error: every name passed to the
:class:`~repro.obs.registry.MetricsRegistry` instruments must be (a
scoped suffix of) an entry in the generated catalog
``src/repro/obs/names.py``, whose declarative source of truth is
:mod:`repro.staticcheck.catalog`.

Accepted argument shapes at a call site:

* a string literal that is a catalog name (``"multiproc.databases"``),
  a scoped suffix of one (``"hits"`` inside the ``serve.cache`` scope),
  or a family prefix;
* an f-string / ``+``-concatenation whose literal head matches a
  declared dynamic family (``f"sent.{tag}"`` → ``simnet.sent.``);
* a constant imported from ``repro.obs.names``.

Anything else — a misspelled literal, an undeclared dynamic family, an
arbitrary variable — is a finding.  The project-level pass also fails
if the committed ``names.py`` is stale with respect to the catalog, or
if ``docs/OBSERVABILITY.md`` mentions a metric the catalog lacks.
"""

from __future__ import annotations

import ast

from . import catalog
from .framework import Checker, register

#: The registry itself forwards caller-supplied names; the generated
#: module is data.
_EXEMPT = (
    "src/repro/obs/registry.py",
    "src/repro/obs/names.py",
)

#: MetricsRegistry methods whose first argument is a metric name.
_METHODS = {"inc", "set_gauge", "observe", "observe_seconds", "phase"}


def _catalog_sets():
    from ..obs import names as names_mod

    universe = frozenset(names_mod.NAMES) | names_mod.DYNAMIC_EXAMPLES
    return universe, tuple(names_mod.DYNAMIC_PREFIXES)


def _literal_ok(token: str, universe, prefixes) -> bool:
    if token in universe:
        return True
    if any(n.endswith("." + token) for n in universe):
        return True  # scoped registry supplies the family prefix
    if any(n.startswith(token + ".") for n in universe):
        return True
    return any(token.startswith(p) for p in prefixes)


def _dynamic_head_ok(head: str, prefixes) -> bool:
    """A computed name's literal head must pin a declared dynamic
    family — either spelled in full (``simnet.sent.``) or as the scoped
    tail of one (``op.`` under the ``serve.server`` scope)."""
    if not head:
        return False
    return any(
        head.startswith(p) or p.endswith("." + head) for p in prefixes
    )


def _fstring_head(node: ast.JoinedStr) -> str:
    parts = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        else:
            break
    return "".join(parts)


class _NamesImports(ast.NodeVisitor):
    """Names under which this module can see the generated catalog."""

    def __init__(self):
        self.constants: set = set()  # from repro.obs.names import X
        self.modules: set = set()  # from repro.obs import names [as n]

    def visit_ImportFrom(self, node: ast.ImportFrom):
        module = node.module or ""
        if module.endswith("names"):
            for alias in node.names:
                self.constants.add(alias.asname or alias.name)
        elif module.endswith("obs"):
            for alias in node.names:
                if alias.name == "names":
                    self.modules.add(alias.asname or alias.name)


@register
class MetricNameChecker(Checker):
    """Flag metric names absent from the generated catalog (module doc)."""

    rule_id = "RA003"
    title = "metric names must exist in the generated catalog"
    rationale = (
        "Free-typed metric strings drift between backends and break the "
        "counter-parity invariants; every name passed to inc/set_gauge/"
        "observe/phase must be a catalog entry (or scoped suffix / "
        "declared dynamic family), preferably imported from "
        "repro.obs.names."
    )

    def applies_to(self, relpath: str) -> bool:
        return (
            relpath.startswith("src/repro/")
            and relpath not in _EXEMPT
        )

    def check_file(self, ctx):
        universe, prefixes = _catalog_sets()
        imports = _NamesImports()
        imports.visit(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METHODS
                    and node.args):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if not _literal_ok(arg.value, universe, prefixes):
                    yield (arg.lineno, arg.col_offset,
                           f"metric name {arg.value!r} is not in the "
                           f"catalog (repro.obs.names); add it to "
                           f"repro.staticcheck.catalog and regenerate")
            elif isinstance(arg, ast.JoinedStr):
                head = _fstring_head(arg)
                if not _dynamic_head_ok(head, prefixes):
                    yield (arg.lineno, arg.col_offset,
                           f"computed metric name with head {head!r} "
                           f"does not match a declared dynamic family "
                           f"(DYNAMIC_PREFIXES)")
            elif (isinstance(arg, ast.BinOp)
                    and isinstance(arg.op, ast.Add)
                    and isinstance(arg.left, ast.Constant)
                    and isinstance(arg.left.value, str)):
                if not _dynamic_head_ok(arg.left.value, prefixes):
                    yield (arg.lineno, arg.col_offset,
                           f"computed metric name with head "
                           f"{arg.left.value!r} does not match a "
                           f"declared dynamic family")
            elif isinstance(arg, ast.Name):
                if arg.id not in imports.constants:
                    yield (arg.lineno, arg.col_offset,
                           f"metric name variable {arg.id!r} is not a "
                           f"constant imported from repro.obs.names")
            elif isinstance(arg, ast.Attribute):
                recv = arg.value
                if not (isinstance(recv, ast.Name)
                        and recv.id in imports.modules):
                    yield (arg.lineno, arg.col_offset,
                           f"metric name expression "
                           f"{ast.unparse(arg)!r} cannot be checked; "
                           f"use a repro.obs.names constant or literal")
            else:
                yield (arg.lineno, arg.col_offset,
                       "metric name must be a literal, a declared "
                       "dynamic-family f-string, or a repro.obs.names "
                       "constant")

    def finalize(self, project):
        path = catalog.names_path()
        try:
            committed = path.read_text()
        except OSError:
            committed = None
        if committed != catalog.generate_source():
            yield ("src/repro/obs/names.py", 1,
                   "generated catalog is stale; run "
                   "'python -m repro.staticcheck.catalog --write'")
        doc = project.read_doc("docs/OBSERVABILITY.md")
        if doc is not None:
            for token, lineno in catalog.doc_drift(doc):
                yield ("docs/OBSERVABILITY.md", lineno,
                       f"doc mentions metric {token!r} that the catalog "
                       f"does not declare")
