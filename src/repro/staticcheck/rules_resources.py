"""RA010 — acquired resources must reach ``close()`` on all paths.

Sockets, mmaps, shared-memory segments and file handles leak silently
in a long-running server: the solve keeps going, the fd table fills,
and the failure surfaces hours later as ``EMFILE`` in an unrelated
accept loop.  This rule runs a *may*-dataflow over the CFG: acquiring
a resource into a local name generates an "open" fact, releasing or
handing off ownership kills it, and any fact still live flowing into
the function's normal exit — or its uncaught-``raise`` sink — means
some path leaks.

Tracked acquisitions (assignment of a call result to a local name):
``socket.socket``, ``socket.create_connection``, ``mmap.mmap``,
``SharedMemory(...)`` (any spelling), and builtin ``open``.

The fact dies when, on that path:

* the name's ``close()`` / ``shutdown()`` / ``unlink()`` method is
  called (``try/finally`` bodies are modeled, so a close in a
  ``finally`` covers both the normal and the explicit-raise route);
* ownership escapes — the name is returned, yielded, stored into an
  attribute/subscript/container, rebound, or passed as a call argument
  (including ``contextlib.closing``): whoever received it owns the
  close now, and an intraprocedural analysis stops there;
* the resource was acquired by a ``with`` statement in the first
  place — the context manager closes it, so no fact is ever created.

Implicit exceptions (any call may raise) are deliberately *not* CFG
edges (see :mod:`repro.staticcheck.cfg`); the ``with``/``try-finally``
shapes this rule pushes toward are exactly the ones that are safe
under them anyway.
"""

from __future__ import annotations

import ast

from .cfg import function_cfgs
from .dataflow import may_facts
from .framework import Checker, register

_RELEASE_METHODS = {"close", "shutdown", "unlink", "terminate"}


def _acquisition_kind(call: ast.Call):
    """Resource kind acquired by ``call``, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "file handle (open)"
        if func.id == "SharedMemory":
            return "shared-memory segment"
        if func.id == "mmap":
            return "mmap"
        return None
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner == "socket" and func.attr in {"socket",
                                                   "create_connection"}:
                return f"socket ({func.attr})"
            if owner == "mmap" and func.attr == "mmap":
                return "mmap"
        if func.attr == "SharedMemory":
            return "shared-memory segment"
    return None


def _escaping_names(stmt) -> set:
    """Local names whose ownership leaves this function at ``stmt``."""
    out: set = set()

    def names_in(node):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                out.add(sub.id)

    if isinstance(stmt, ast.Return) and stmt.value is not None:
        names_in(stmt.value)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # A nested def capturing the name closes over it — ownership is
        # shared with the closure, beyond intraprocedural tracking.
        names_in(stmt)
        return out
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Yield, ast.YieldFrom)) \
                and node.value is not None:
            names_in(node.value)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                names_in(arg)
            for kw in node.keywords:
                names_in(kw.value)
        elif isinstance(node, ast.Assign):
            # Stored somewhere non-local (attribute, subscript, or into
            # a container literal) — or rebound to another name, which
            # aliases it beyond what this analysis tracks.
            if any(not isinstance(t, ast.Name) for t in node.targets):
                names_in(node.value)
            elif not isinstance(node.value, ast.Call):
                names_in(node.value)
    return out


@register
class ResourceLifetimeChecker(Checker):
    """Flag resources that can leak past the function on some path."""

    rule_id = "RA010"
    title = "resource may not reach close() on every path"
    rationale = (
        "a socket/mmap/SharedMemory/file acquired in library code must "
        "be released on every route out of the function — with blocks "
        "or try/finally, which also survive the implicit exceptions "
        "the CFG does not model; a leak per request exhausts the fd "
        "table of a month-long serve (docs/STATICCHECK.md, resource "
        "lifetime)."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_file(self, ctx):
        for func, cfg in function_cfgs(ctx.tree):
            yield from self._check_function(func, cfg)

    def _check_function(self, func, cfg):
        sites: dict = {}  # fact (local name) -> (acquisition node, kind)

        def gen_kill(stmt):
            gen: list = []
            kill: list = []
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                # Context managers release their own resources; nothing
                # to track (and names bound by `as` are managed too).
                return gen, kill, ()
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        kill.append(target.id)  # rebinding forgets it
                kind = (_acquisition_kind(stmt.value)
                        if isinstance(stmt.value, ast.Call) else None)
                if kind and len(stmt.targets) == 1 and \
                        isinstance(stmt.targets[0], ast.Name):
                    name = stmt.targets[0].id
                    gen.append(name)
                    if name not in sites:
                        sites[name] = (stmt.value, kind)
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.attr in _RELEASE_METHODS:
                    kill.append(node.func.value.id)
            kill.extend(_escaping_names(stmt))
            return gen, kill, ()

        _, exit_facts, raise_facts = may_facts(cfg, gen_kill)
        for name in sorted(exit_facts | raise_facts):
            if name not in sites:
                continue
            node, kind = sites[name]
            route = ("an explicit-raise path"
                     if name in raise_facts and name not in exit_facts
                     else "some path")
            yield (node.lineno, node.col_offset,
                   f"{kind} '{name}' may leak on {route}: no close() "
                   f"before the function exits; use with or try/finally")
