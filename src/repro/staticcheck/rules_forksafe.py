"""RA002 — functions fanned out to worker processes must be fork-safe.

``SupervisedPool`` (and the ``ProcessPoolExecutor`` under it) runs the
submitted callable in a forked child.  A lambda or nested function
fails to pickle at best, and at worst captures parent-process state —
a held lock, a connected socket, an open file, a ``ShmArena`` handle —
that is meaningless or deadlock-prone on the other side of the fork.
The repo's convention (docs/RESILIENCE.md) is that every fanned-out
callable is a plain module-level function taking picklable arguments,
with shared arrays reaching the child only through the fork-inherited
module globals that ``ShmArena`` publishes.

Checked call shapes: ``SupervisedPool(fn, ...)`` and anything of the
form ``<pool>.submit(fn, ...)``.  ``fn`` is flagged when it is a
lambda, a bound method (``self.x`` / ``obj.x``), or a name that
resolves to a function defined inside another function; a module-level
function is additionally flagged if it reads a module global bound to
a lock, socket, open file or arena at import time.  Names that cannot
be resolved within the module (parameters, imports) are left alone —
the rule is a linter, not a prover.
"""

from __future__ import annotations

import ast

from .framework import Checker, register

#: The pool implementation itself hands self._fn to the executor.
_EXEMPT = ("src/repro/resilience/pool.py",)

#: Constructor names whose module-level results are fork-hostile.
_HOSTILE_CTORS = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "socket", "open", "ShmArena", "SharedMemory", "connect",
    "create_connection",
}


def _ctor_name(call: ast.Call):
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _ModuleIndex:
    """Where every function in the module is defined, and which module
    globals hold fork-hostile objects."""

    def __init__(self, tree: ast.Module):
        self.module_defs: dict = {}
        self.nested_defs: set = set()
        self.hostile_globals: dict = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_defs[node.name] = node
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                ctor = _ctor_name(node.value)
                if ctor in _HOSTILE_CTORS:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.hostile_globals[target.id] = ctor
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if inner is node:
                        continue
                    if isinstance(inner,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.nested_defs.add(inner.name)

    def hostile_reads(self, fn: ast.FunctionDef):
        for node in ast.walk(fn):
            if (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in self.hostile_globals):
                yield node.id, self.hostile_globals[node.id]


def _submitted_callable(call: ast.Call):
    """The callable argument of a pool fan-out call, if this is one."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "SupervisedPool":
        pass
    elif isinstance(func, ast.Attribute) and func.attr == "SupervisedPool":
        pass
    elif isinstance(func, ast.Attribute) and func.attr == "submit":
        pass
    else:
        return None
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "fn":
            return kw.value
    return None


@register
class ForkSafetyChecker(Checker):
    """Flag fork-hostile callables handed to worker pools (module doc)."""

    rule_id = "RA002"
    title = "pool-submitted callables must be module-level and fork-safe"
    rationale = (
        "Callables handed to SupervisedPool / executor.submit run in "
        "forked children: lambdas and nested functions don't pickle, "
        "and captured locks/sockets/files/ShmArena handles are invalid "
        "across the fork. Fan out plain module-level functions with "
        "picklable arguments."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath not in _EXEMPT

    def check_file(self, ctx):
        index = None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _submitted_callable(node)
            if target is None:
                continue
            if index is None:
                index = _ModuleIndex(ctx.tree)
            if isinstance(target, ast.Lambda):
                yield (target.lineno, target.col_offset,
                       "lambda submitted to a worker pool; define a "
                       "module-level function instead")
            elif isinstance(target, ast.Attribute):
                yield (target.lineno, target.col_offset,
                       f"bound method '{ast.unparse(target)}' submitted "
                       f"to a worker pool; its instance state does not "
                       f"survive the fork — use a module-level function")
            elif isinstance(target, ast.Name):
                if target.id in index.module_defs:
                    fn = index.module_defs[target.id]
                    for name, ctor in index.hostile_reads(fn):
                        yield (target.lineno, target.col_offset,
                               f"'{target.id}' reads module global "
                               f"'{name}' (a {ctor}() result), which is "
                               f"not valid in a forked worker")
                elif target.id in index.nested_defs:
                    yield (target.lineno, target.col_offset,
                           f"'{target.id}' is defined inside another "
                           f"function; pool workers need module-level "
                           f"functions")
