"""Command-line entry point for the checker (``repro staticcheck``)."""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from .framework import all_checkers, run_paths
from .reporters import render_json, render_sarif, render_text


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Populate ``parser`` (shared by ``repro staticcheck`` and
    ``python -m repro.staticcheck.cli``)."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to check "
                             "(default: src)")
    parser.add_argument("--root", default=".",
                        help="repository root for relative paths and "
                             "doc lookups (default: cwd)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--out", default=None,
                        help="also write the JSON report to this path "
                             "(atomic; the CI artifact)")
    parser.add_argument("--sarif-out", default=None,
                        help="also write a SARIF 2.1.0 report to this "
                             "path (atomic; uploaded by CI so findings "
                             "annotate PR diffs)")
    parser.add_argument("--metrics-out", default=None,
                        help="write a repro.obs run manifest with "
                             "staticcheck.* gauges to this path")
    parser.add_argument("--changed-only", action="store_true",
                        help="check only files changed per git "
                             "(working tree + branch point vs the "
                             "default branch); fast local mode")
    parser.add_argument("--verbose", action="store_true",
                        help="list suppressed findings too")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def _git_changed_files(root: Path) -> list | None:
    """Repo-relative paths git reports as changed, or None when git is
    unavailable (not a repo, no git binary).

    The union of three diffs — unstaged, staged, and committed since
    the merge base with the default branch (``origin/main``, falling
    back to ``main``) — matches "what this PR touches" for local runs.
    Deleted files drop out naturally (run_paths skips missing paths).
    """
    def lines(*argv):
        try:
            proc = subprocess.run(
                ["git", *argv], cwd=root, capture_output=True,
                text=True, timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return [line.strip() for line in proc.stdout.splitlines()
                if line.strip()]

    inside = lines("rev-parse", "--is-inside-work-tree")
    if not inside or inside[0] != "true":
        return None
    changed: list = []
    seen: set = set()
    diffs = [("diff", "--name-only"),
             ("diff", "--name-only", "--cached")]
    for base in ("origin/main", "main"):
        if lines("rev-parse", "--verify", "--quiet", base) is not None:
            diffs.append(("diff", "--name-only", f"{base}...HEAD"))
            break
    for argv in diffs:
        for rel in lines(*argv) or []:
            if rel not in seen:
                seen.add(rel)
                changed.append(rel)
    return changed


def _scope_to_changed(paths, root: Path) -> list | None:
    """The changed files that fall under the requested paths; None when
    git state is unavailable, ``[]`` when nothing relevant changed."""
    changed = _git_changed_files(root)
    if changed is None:
        return None
    requested = [Path(p) if Path(p).is_absolute() else root / p
                 for p in paths]
    scoped = []
    for rel in changed:
        if not rel.endswith(".py"):
            continue
        path = root / rel
        if not path.is_file():
            continue  # deleted in the working tree
        resolved = path.resolve()
        for req in requested:
            req = req.resolve()
            if resolved == req or str(resolved).startswith(str(req) + "/"):
                scoped.append(str(path))
                break
    return scoped


def _write_metrics(report, path: Path) -> None:
    """Persist the run's totals as a ``repro.obs`` manifest, through
    the cataloged ``staticcheck.*`` gauge names."""
    from ..obs import MetricsRegistry
    from ..obs.manifest import RunManifest

    registry = MetricsRegistry()
    scoped = registry.scoped("staticcheck")
    scoped.set_gauge("findings", len(report.findings))
    scoped.set_gauge("suppressed", len(report.suppressed))
    scoped.set_gauge("files_scanned", report.files_scanned)
    RunManifest.from_registry(
        registry, game="staticcheck", command="staticcheck",
        config={"exit_code": report.exit_code},
    ).save(path)


def run(args: argparse.Namespace) -> int:
    """Execute the checker for parsed ``args``; returns the exit code
    (0 clean, 1 findings, 2 usage error)."""
    if args.list_rules:
        for rule_id, cls in all_checkers().items():
            print(f"{rule_id}  {cls.title}")
            print(f"       {cls.rationale}")
        return 0
    rules = (None if args.rules is None
             else [r for r in args.rules.split(",") if r])
    root = Path(args.root)
    paths = args.paths
    if args.changed_only:
        scoped = _scope_to_changed(paths, root)
        if scoped is None:
            print("staticcheck: --changed-only needs a git work tree; "
                  "checking the requested paths in full",
                  file=sys.stderr)
        else:
            paths = scoped
            if not paths:
                print("staticcheck: no changed .py files under the "
                      "requested paths; nothing to do")
                return 0
    try:
        report = run_paths(paths, root=root, rules=rules)
    except ValueError as exc:
        print(f"staticcheck: {exc}", file=sys.stderr)
        return 2
    if args.out:
        from ..resilience.checkpoint import atomic_write_text

        atomic_write_text(Path(args.out), render_json(report))
    if args.sarif_out:
        from ..resilience.checkpoint import atomic_write_text

        atomic_write_text(Path(args.sarif_out), render_sarif(report))
    if args.metrics_out:
        _write_metrics(report, Path(args.metrics_out))
    if args.format == "json":
        print(render_json(report), end="")
    elif args.format == "sarif":
        print(render_sarif(report), end="")
    else:
        print(render_text(report, verbose=args.verbose))
    return report.exit_code


def main(argv=None) -> int:
    """Standalone entry point (``python -m repro.staticcheck.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro staticcheck",
        description="run the repo's invariant checkers",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
