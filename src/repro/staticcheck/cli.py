"""Command-line entry point for the checker (``repro staticcheck``)."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .framework import all_checkers, run_paths
from .reporters import render_json, render_text


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Populate ``parser`` (shared by ``repro staticcheck`` and
    ``python -m repro.staticcheck.cli``)."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to check "
                             "(default: src)")
    parser.add_argument("--root", default=".",
                        help="repository root for relative paths and "
                             "doc lookups (default: cwd)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--out", default=None,
                        help="also write the JSON report to this path "
                             "(atomic; the CI artifact)")
    parser.add_argument("--verbose", action="store_true",
                        help="list suppressed findings too")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def run(args: argparse.Namespace) -> int:
    """Execute the checker for parsed ``args``; returns the exit code
    (0 clean, 1 findings, 2 usage error)."""
    if args.list_rules:
        for rule_id, cls in all_checkers().items():
            print(f"{rule_id}  {cls.title}")
            print(f"       {cls.rationale}")
        return 0
    rules = (None if args.rules is None
             else [r for r in args.rules.split(",") if r])
    try:
        report = run_paths(args.paths, root=Path(args.root), rules=rules)
    except ValueError as exc:
        print(f"staticcheck: {exc}", file=sys.stderr)
        return 2
    if args.out:
        from ..resilience.checkpoint import atomic_write_text

        atomic_write_text(Path(args.out), render_json(report))
    if args.format == "json":
        print(render_json(report), end="")
    else:
        print(render_text(report, verbose=args.verbose))
    return report.exit_code


def main(argv=None) -> int:
    """Standalone entry point (``python -m repro.staticcheck.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro staticcheck",
        description="run the repo's invariant checkers",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
