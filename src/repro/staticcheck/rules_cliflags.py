"""RA005 — every CLI flag must be mentioned in the documentation.

The CLI is the repo's operational surface: a flag that exists only in
``add_argument`` is invisible to anyone reading README/docs, and a doc
that describes a removed flag is worse.  This rule walks every
``add_argument("--flag", ...)`` call in the CLI modules (any file named
``cli.py`` or ``*_cli.py``) and requires the flag string to appear
somewhere in ``README.md`` or ``docs/*.md``.

A flag counts as documented if its literal spelling (``--shm-debug``)
occurs anywhere in that corpus — prose, tables and fenced examples all
qualify.  Positional argument names are not checked (they appear in
usage strings naturally); short aliases pass if the long spelling of
the same ``add_argument`` call is documented.
"""

from __future__ import annotations

import ast

from .framework import Checker, register


def _option_strings(call: ast.Call):
    for arg in call.args:
        if (isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                and arg.value.startswith("-")):
            yield arg.value


@register
class CliFlagDocChecker(Checker):
    """Flag CLI options missing from README/docs (see module doc)."""

    rule_id = "RA005"
    title = "CLI flags must appear in README or docs/"
    rationale = (
        "add_argument flags that no document mentions are dead "
        "operational surface; each flag's literal spelling must occur "
        "in README.md or docs/*.md."
    )

    def applies_to(self, relpath: str) -> bool:
        name = relpath.rsplit("/", 1)[-1]
        return name == "cli.py" or name.endswith("_cli.py")

    def check_file(self, ctx):
        corpus = ctx.project.flag_documentation()
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_argument"):
                continue
            flags = list(_option_strings(node))
            if not flags:
                continue  # positional argument
            if any(flag in corpus for flag in flags):
                continue
            longest = max(flags, key=len)
            yield (node.lineno, node.col_offset,
                   f"flag {longest!r} is not mentioned in README.md or "
                   f"docs/; document it (or remove it)")
