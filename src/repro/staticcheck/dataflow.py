"""Dataflow analyses over the staticcheck CFG.

Two analysis families power the path-sensitive rules:

* :func:`reaching_definitions` — the classic *may* analysis: which
  assignments of each local name can reach each block.  Join is set
  union; used to trace a resource handle from its acquisition to its
  uses and releases (RA010).
* :class:`HeldFacts` — a *must* analysis over an abstract set of
  "facts" (``lock:self._lock`` is held, ``resource:sock`` is open).
  Join is set intersection: a fact survives a join only when **every**
  incoming path established it, which is exactly the "on all CFG
  paths" obligation of the lock-discipline rule (RA007).

Both run the textbook worklist algorithm to a fixpoint.  Transfer
functions are per *statement*, supplied by the rule as gen/kill
callbacks — the framework owns iteration order and convergence, the
rule owns semantics.  Loops converge because the lattices are finite
(sets of program points / declared facts) and the transfer functions
are monotone.
"""

from __future__ import annotations

import ast

from .cfg import CFG, Block

__all__ = [
    "solve_forward",
    "reaching_definitions",
    "must_held_at",
    "may_facts",
    "assignments_of",
]

#: Sentinel lattice value for "block not yet visited" in must analyses
#: (the top element: intersecting with it is the identity).
TOP = None


def solve_forward(cfg: CFG, transfer, join, initial):
    """Generic forward worklist solver.

    ``transfer(block, state) -> state`` maps a block's input state to
    its output state (must not mutate its argument); ``join(states) ->
    state`` merges predecessor outputs (called with a non-empty list);
    ``initial`` is the entry block's input state.  Returns
    ``(block_in, block_out)`` dicts keyed by block.

    Blocks with no visited predecessor yet contribute :data:`TOP`
    (skipped by the caller-supplied join via filtering here), so a
    must-analysis does not leak "nothing is held" from not-yet-reached
    back edges into the first iteration.
    """
    block_in: dict = {}
    block_out: dict = {}
    worklist = [cfg.entry]
    block_in[cfg.entry] = initial
    while worklist:
        block = worklist.pop(0)
        if block is cfg.entry:
            state_in = initial
        else:
            preds = [block_out[p] for p in block.predecessors
                     if p in block_out]
            if not preds:
                continue  # unreachable (or not yet reached)
            state_in = join(preds)
        previous_in = block_in.get(block, TOP)
        if previous_in is not TOP and state_in == previous_in \
                and block in block_out:
            continue
        block_in[block] = state_in
        state_out = transfer(block, state_in)
        if block_out.get(block) != state_out or block not in block_out:
            block_out[block] = state_out
            for successor in block.successors:
                if successor not in worklist:
                    worklist.append(successor)
    return block_in, block_out


# ------------------------------------------------------- reaching defs


def assignments_of(stmt) -> list:
    """Local names bound by one statement: ``[(name, node), ...]``."""
    out: list = []

    def collect_target(target):
        if isinstance(target, ast.Name):
            out.append((target.id, stmt))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            collect_target(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        collect_target(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        collect_target(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                collect_target(item.optional_vars)
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            out.append((stmt.name, stmt))
    return out


def reaching_definitions(cfg: CFG):
    """Which definitions of each name may reach each block's entry.

    Returns ``(block_in, block_out)``: block → ``{name: frozenset of
    defining statements}``.  A later definition of a name kills earlier
    ones along its path; joins union (an ``if``'s two arms both
    reach the join).
    """

    def transfer(block: Block, state: dict) -> dict:
        state = dict(state)
        for stmt in block.statements:
            for name, node in assignments_of(stmt):
                state[name] = frozenset([node])
        return state

    def join(states: list) -> dict:
        merged: dict = {}
        for state in states:
            for name, defs in state.items():
                merged[name] = merged.get(name, frozenset()) | defs
        return merged

    return solve_forward(cfg, transfer, join, initial={})


# --------------------------------------------------------- held facts


def must_held_at(cfg: CFG, gen_kill, initial=frozenset()):
    """Per-statement *must*-held facts (the RA007 engine).

    ``gen_kill(stmt) -> (gen, kill, scoped)`` describes one statement's
    effect: ``gen``/``kill`` are iterables of fact strings applied in
    kill-then-gen order; ``scoped`` is an iterable of facts established
    only for the statement's lexical body (a ``with lock:`` holds the
    lock for its suite and releases it after — the CFG's with-exit
    block is where the scope ends).

    Returns ``facts_at``: ``{statement: frozenset(facts)}`` giving the
    facts guaranteed held *when that statement executes*, on **every**
    path from the entry.  Join is intersection, so one unlocked route
    is enough to lose a fact — exactly the obligation "this attribute
    is only touched with the lock held on all paths".  ``initial``
    seeds the entry state (a ``# holds-lock:`` method contract).
    """
    # Pre-compute scoped facts: a with statement contributes its facts
    # to every statement lexically inside its body.
    scope_facts: dict = {}  # statement (by id) -> frozenset of extras

    def note_scope(with_stmt, facts):
        for inner in ast.walk(with_stmt):
            if inner is with_stmt:
                continue
            if isinstance(inner, ast.stmt):
                scope_facts[inner] = scope_facts.get(
                    inner, frozenset()) | facts

    for block in cfg.blocks:
        for stmt in block.statements:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                _, _, scoped = gen_kill(stmt)
                scoped = frozenset(scoped)
                if scoped:
                    note_scope(stmt, scoped)

    def transfer(block: Block, state: frozenset) -> frozenset:
        for stmt in block.statements:
            gen, kill, _ = gen_kill(stmt)
            state = (state - frozenset(kill)) | frozenset(gen)
        return state

    def join(states: list) -> frozenset:
        merged = states[0]
        for state in states[1:]:
            merged = merged & state
        return merged

    block_in, _ = solve_forward(
        cfg, transfer, join, initial=frozenset(initial)
    )

    facts_at: dict = {}
    for block in cfg.blocks:
        if block not in block_in:
            continue  # unreachable
        state = block_in[block]
        for stmt in block.statements:
            facts_at[stmt] = state | scope_facts.get(stmt, frozenset())
            gen, kill, _ = gen_kill(stmt)
            state = (state - frozenset(kill)) | frozenset(gen)
    return facts_at


def may_facts(cfg: CFG, gen_kill):
    """Per-statement *may*-held facts plus the facts that may survive
    to each sink (the RA010 engine).

    Same ``gen_kill`` contract as :func:`must_held_at`, but join is
    **union**: a fact reaches a point if it is live on *some* path
    (``scoped`` facts are ignored here — a ``with``-managed resource
    is released by its context manager, so the rule simply never
    generates a fact for it).  Returns ``(facts_at, exit_facts,
    raise_facts)`` where ``exit_facts`` is the union state flowing
    into the normal exit and ``raise_facts`` the state flowing into
    the uncaught-raise sink — a resource still open in either leaked
    on some path.
    """

    def transfer(block: Block, state: frozenset) -> frozenset:
        for stmt in block.statements:
            gen, kill, _ = gen_kill(stmt)
            state = (state - frozenset(kill)) | frozenset(gen)
        return state

    def join(states: list) -> frozenset:
        merged = states[0]
        for state in states[1:]:
            merged = merged | state
        return merged

    block_in, _ = solve_forward(cfg, transfer, join, initial=frozenset())

    facts_at: dict = {}
    for block in cfg.blocks:
        if block not in block_in:
            continue
        state = block_in[block]
        for stmt in block.statements:
            facts_at[stmt] = state
            gen, kill, _ = gen_kill(stmt)
            state = (state - frozenset(kill)) | frozenset(gen)

    def sink_state(sink: Block) -> frozenset:
        merged = frozenset()
        seen = False
        for pred in sink.predecessors:
            # The sink's input is its predecessors' outputs: re-run the
            # transfer over the recorded input state.
            if pred not in block_in:
                continue
            seen = True
            merged = merged | transfer(pred, block_in[pred])
        return merged if seen else frozenset()

    return facts_at, sink_state(cfg.exit), sink_state(cfg.raise_exit)
