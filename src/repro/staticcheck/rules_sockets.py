"""RA006 — blocking socket calls must carry an explicit timeout.

Every hang this repo's resilience layers can absorb — dead shard
servers, blackholed requests, wedged supervisors — turns into an
*unrecoverable* hang the moment some code path blocks on a socket with
no timeout: the circuit breakers, deadlines and health probes all sit
behind that syscall and never get to run.  The serving stack therefore
bounds every blocking socket operation (clients via per-request
timeouts the router can cap, servers via the poll-interval timeout that
keeps shutdown responsive), and this rule keeps it that way.

Flagged calls (library code under ``src/repro/`` only):

* ``socket.create_connection(addr)`` with no timeout — the second
  positional argument or a ``timeout=`` keyword must be present, and
  must not be the literal ``None``
* ``<sock>.settimeout(None)`` — switching a socket back to fully
  blocking mode
* ``socket.setdefaulttimeout(None)`` — the process-wide variant

A timeout passed as a variable is trusted: the rule pins the *shape*
(an explicit bound exists at every call site), not the value.
"""

from __future__ import annotations

import ast

from .framework import Checker, register


def _is_none(node) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _timeout_argument(call: ast.Call):
    """The timeout expression of a ``create_connection`` call: second
    positional or ``timeout=`` keyword; ``None`` when absent."""
    if len(call.args) >= 2:
        return call.args[1]
    for kw in call.keywords:
        if kw.arg == "timeout":
            return kw.value
        if kw.arg is None:
            return kw  # **kwargs may carry one; trust it
    return None


@register
class SocketTimeoutChecker(Checker):
    """Flag unbounded blocking socket calls (see module doc)."""

    rule_id = "RA006"
    title = "blocking socket calls need an explicit timeout"
    rationale = (
        "socket.create_connection without a timeout and "
        "settimeout(None) / setdefaulttimeout(None) block forever when "
        "a peer dies silently, which defeats every failover, deadline "
        "and health-probe layer above them; pass an explicit timeout "
        "at each call site (see docs/CLUSTER.md, Failure model)."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_file(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            if name == "create_connection":
                timeout = _timeout_argument(node)
                if timeout is None:
                    yield (node.lineno, node.col_offset,
                           "create_connection without a timeout blocks "
                           "forever on a silent peer; pass timeout=")
                elif _is_none(timeout):
                    yield (node.lineno, node.col_offset,
                           "create_connection(..., timeout=None) is an "
                           "unbounded connect; pass a finite timeout")
            elif name == "settimeout":
                if len(node.args) == 1 and _is_none(node.args[0]):
                    yield (node.lineno, node.col_offset,
                           "settimeout(None) makes the socket fully "
                           "blocking; every recv/send then hangs "
                           "unboundedly on a dead peer")
            elif name == "setdefaulttimeout":
                if len(node.args) == 1 and _is_none(node.args[0]):
                    yield (node.lineno, node.col_offset,
                           "setdefaulttimeout(None) removes the "
                           "process-wide socket bound; set a finite "
                           "default or per-socket timeouts")
