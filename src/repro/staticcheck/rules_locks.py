"""RA007 — ``# guarded-by:`` attributes need their lock on every path.

The threaded serving stack shares mutable objects across connection
threads (the ``BlockCache`` LRU, the probe server's thread registry,
in-flight admission counters).  The discipline is declared in the
source — an attribute whose initialising assignment carries a
``# guarded-by: <lock>`` comment must only be read or written while
that lock is held — and this rule *proves* it per method with a
must-dataflow over the CFG: the lock fact has to survive the
intersection join on **every** route to the access, so one unlocked
``if`` arm or early return is enough to fire.

Annotation grammar (see docs/STATICCHECK.md):

* ``self._entries = {}  # guarded-by: self._lock`` — on the attribute's
  initialising assignment (usually in ``__init__``).
* ``def _evict(self):  # holds-lock: self._lock`` — a method contract:
  callers must hold the lock, so the analysis seeds it held at entry
  *and* checks it is held at every call site of the method.
* ``def _acquire(self):  # acquires-lock: self._lock`` — a helper that
  leaves the lock held; calls to it establish the fact.

Facts are established by ``with self._lock:`` (held for the suite),
``self._lock.acquire()`` (held until ``.release()``), the two method
annotations above, and nothing else — aliasing a lock defeats the
analysis on purpose, because it defeats human review too.

``__init__`` and ``__del__`` are exempt (the object is not shared
before construction completes or during teardown), as is the
annotated assignment itself.
"""

from __future__ import annotations

import ast
import re

from .cfg import build_cfg
from .dataflow import must_held_at
from .framework import Checker, register

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][\w.]*)")
_HOLDS_RE = re.compile(r"#\s*holds-lock:\s*(?P<lock>[A-Za-z_][\w.]*)")
_ACQUIRES_RE = re.compile(r"#\s*acquires-lock:\s*(?P<lock>[A-Za-z_][\w.]*)")

#: Methods where guarded attributes may be touched lock-free.
_EXEMPT_METHODS = {"__init__", "__del__", "__repr__"}


def _expr_text(node) -> str:
    return ast.unparse(node)


def _own_expressions(stmt):
    """The expression nodes evaluated *by* ``stmt`` itself — headers of
    compound statements, everything of simple ones — excluding nested
    statement suites (those are separate CFG statements with their own
    facts) and nested function/class bodies (separate scopes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    if isinstance(stmt, ast.Try):
        return []
    out = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            out.append(child)
    return out


def _walk_expr(node):
    """``ast.walk`` over an expression, not descending into lambdas
    (their bodies run later, under whatever locks the caller holds)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _comment_in_header(lines, func, regex):
    """Match ``regex`` against the def line(s) of ``func`` (multi-line
    signatures allowed: anywhere before the first body statement)."""
    start = func.lineno
    stop = func.body[0].lineno if func.body else start + 1
    for lineno in range(start, stop + 1):
        if lineno - 1 >= len(lines):
            break
        match = regex.search(lines[lineno - 1])
        if match:
            return match.group("lock")
    return None


def _guarded_attrs(cls: ast.ClassDef, lines) -> dict:
    """``{attr_name: (lock_expr, decl_lineno)}`` from ``# guarded-by:``
    comments on ``self.<attr> = ...`` lines inside the class."""
    annotated: dict = {}
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        else:
            continue
        line = lines[node.lineno - 1] if node.lineno - 1 < len(lines) else ""
        match = _GUARDED_RE.search(line)
        if not match:
            continue
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                annotated[target.attr] = (match.group("lock"), node.lineno)
    return annotated


@register
class LockDisciplineChecker(Checker):
    """Prove ``# guarded-by:`` attribute accesses hold their lock."""

    rule_id = "RA007"
    title = "guarded-by attributes accessed without their lock held"
    rationale = (
        "shared mutable state touched by connection threads must hold "
        "its declared lock on every CFG path to the access; a single "
        "unlocked route corrupts LRU order and byte accounting in ways "
        "differential tests rarely catch (docs/STATICCHECK.md, lock "
        "discipline)."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_file(self, ctx):
        lines = ctx.lines
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, lines)

    # ----------------------------------------------------------- per class

    def _check_class(self, cls: ast.ClassDef, lines):
        guarded = _guarded_attrs(cls, lines)
        if not guarded:
            return
        methods = [stmt for stmt in cls.body
                   if isinstance(stmt, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))]
        holds: dict = {}     # method name -> required lock
        acquires: dict = {}  # method name -> lock left held
        for method in methods:
            lock = _comment_in_header(lines, method, _HOLDS_RE)
            if lock:
                holds[method.name] = lock
            lock = _comment_in_header(lines, method, _ACQUIRES_RE)
            if lock:
                acquires[method.name] = lock
        decl_lines = {lineno for _, lineno in guarded.values()}
        for method in methods:
            if method.name in _EXEMPT_METHODS:
                continue
            yield from self._check_method(
                method, guarded, holds, acquires, decl_lines
            )

    def _check_method(self, method, guarded, holds, acquires, decl_lines):
        cfg = build_cfg(method)
        locks = {lock for lock, _ in guarded.values()}
        locks.update(holds.values())
        locks.update(acquires.values())

        def self_call_name(call: ast.Call):
            func = call.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"):
                return func.attr
            return None

        def gen_kill(stmt):
            gen: list = []
            kill: list = []
            scoped: list = []
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if _expr_text(item.context_expr) in locks:
                        scoped.append(f"lock:{_expr_text(item.context_expr)}")
                return gen, kill, scoped
            for expr in _own_expressions(stmt):
                for node in _walk_expr(expr):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if isinstance(func, ast.Attribute):
                        owner = _expr_text(func.value)
                        if owner in locks and func.attr == "acquire":
                            gen.append(f"lock:{owner}")
                        elif owner in locks and func.attr == "release":
                            kill.append(f"lock:{owner}")
                    name = self_call_name(node)
                    if name in acquires:
                        gen.append(f"lock:{acquires[name]}")
            return gen, kill, scoped

        initial = frozenset()
        if method.name in holds:
            initial = frozenset({f"lock:{holds[method.name]}"})
        facts_at = must_held_at(cfg, gen_kill, initial=initial)

        seen: set = set()  # (line, col, attr) — one finding per access
        for stmt, facts in facts_at.items():
            for expr in _own_expressions(stmt):
                for node in _walk_expr(expr):
                    if isinstance(node, ast.Call):
                        name = None
                        if (isinstance(node.func, ast.Attribute)
                                and isinstance(node.func.value, ast.Name)
                                and node.func.value.id == "self"):
                            name = node.func.attr
                        if name in holds and \
                                f"lock:{holds[name]}" not in facts:
                            key = (node.lineno, node.col_offset, name)
                            if key not in seen:
                                seen.add(key)
                                yield (node.lineno, node.col_offset,
                                       f"call to {name}() requires "
                                       f"{holds[name]} held "
                                       f"(# holds-lock contract), but it "
                                       f"is not held on every path here")
                    if not (isinstance(node, ast.Attribute)
                            and isinstance(node.value, ast.Name)
                            and node.value.id == "self"
                            and node.attr in guarded):
                        continue
                    lock, decl_lineno = guarded[node.attr]
                    if node.lineno in decl_lines:
                        continue  # the annotated declaration itself
                    if f"lock:{lock}" in facts:
                        continue
                    key = (node.lineno, node.col_offset, node.attr)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield (node.lineno, node.col_offset,
                           f"self.{node.attr} is guarded-by {lock} "
                           f"(declared line {decl_lineno}) but accessed "
                           f"here without it held on every path")
