"""Intraprocedural control-flow graphs over the stdlib ``ast``.

The per-statement pattern matchers of RA001–RA006 cannot see *paths*:
whether a lock is held on every route to an attribute access, or
whether a socket opened at the top of a function reaches ``close()``
when the function returns early.  This module builds the control-flow
graph those questions need, one :class:`CFG` per function (or module),
from nothing but the parsed AST — no third-party dependency, matching
the rest of the checker.

The model is deliberately simple and documented here so rule authors
can reason about it:

* A :class:`Block` holds a straight-line run of *simple* statements
  (assignments, expression statements, ``pass``, …).  Compound
  statements (``if``/``for``/``while``/``try``/``with``/``match`` is
  not used in this repo) terminate blocks and contribute edges.
* Every CFG has one synthetic :attr:`~CFG.entry` block and two
  synthetic sinks: :attr:`~CFG.exit` (normal completion — falling off
  the end or ``return``) and :attr:`~CFG.raise_exit` (explicit
  ``raise`` that no enclosing handler catches).
* ``try`` is approximated conservatively for the *explicit* control
  flow: every statement inside a ``try`` body gets its own block with
  an edge to each handler (an exception may interrupt the body at any
  statement boundary), handlers flow to the ``finally``/join, and the
  ``finally`` suite is duplicated on the fall-through and exceptional
  routes so facts computed "after the try" always passed through it.
* *Implicit* exceptions (any call may raise) are **not** modeled as
  edges to the function exit — doing so would make "on all paths"
  vacuous for every analysis.  Rules that care about implicit
  exceptions (RA010) handle them by requiring ``with``/``try-finally``
  shapes instead.
* ``break``/``continue`` edge to the innermost loop's exit/header;
  loop ``else`` suites run on normal loop exit only.
* ``assert`` falls through on success; the failing route is treated
  like an uncaught raise.

``build_cfg`` accepts a function def (sync or async) or a whole
module; ``function_cfgs`` walks a tree and yields a CFG per function,
which is how the dataflow rules consume it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "CFG", "build_cfg", "function_cfgs"]


@dataclass
class Block:
    """One basic block: a straight-line run of simple statements."""

    index: int
    statements: list = field(default_factory=list)
    successors: list = field(default_factory=list)  # Block refs
    predecessors: list = field(default_factory=list)
    #: Human-readable role for debugging/tests: "entry", "exit",
    #: "raise", "body", "loop-header", "handler", "finally", ...
    kind: str = "body"

    def add_successor(self, other: "Block") -> None:
        if other not in self.successors:
            self.successors.append(other)
            other.predecessors.append(self)

    @property
    def first_line(self):
        return self.statements[0].lineno if self.statements else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        succ = [b.index for b in self.successors]
        return (f"Block({self.index}, kind={self.kind!r}, "
                f"stmts={len(self.statements)}, succ={succ})")

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other) -> bool:
        return self is other


class CFG:
    """The control-flow graph of one function (or module) body."""

    def __init__(self, node):
        #: The ``ast`` node the graph was built from.
        self.node = node
        self.blocks: list = []
        self.entry = self._new_block("entry")
        self.exit = self._new_block("exit")
        self.raise_exit = self._new_block("raise")

    def _new_block(self, kind: str = "body") -> Block:
        block = Block(index=len(self.blocks), kind=kind)
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------- queries

    def block_of(self, stmt) -> Block | None:
        """The block holding ``stmt`` (identity match), None if absent."""
        for block in self.blocks:
            for candidate in block.statements:
                if candidate is stmt:
                    return block
        return None

    def reachable(self) -> set:
        """Blocks reachable from the entry."""
        seen: set = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block in seen:
                continue
            seen.add(block)
            stack.extend(block.successors)
        return seen

    def exit_blocks(self) -> list:
        """The normal-completion sink(s): ``[self.exit]``."""
        return [self.exit]


@dataclass
class _LoopFrame:
    """break/continue targets of the innermost enclosing loop."""

    header: Block
    after: Block
    #: ``len(finally_stack)`` at loop entry: break/continue run only the
    #: finally suites pushed *inside* the loop on their way out.
    finally_depth: int = 0


class _Builder:
    """Recursive-descent CFG construction.

    Each ``_visit_*`` takes the block control currently flows through
    and returns the block control flows *out* of (or ``None`` when the
    suite cannot complete normally — every route returned, raised,
    broke or continued).
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.loops: list = []  # innermost last
        #: Entry blocks of the handlers/finally suites that an exception
        #: raised "here" would reach first, innermost try last.
        self.handler_targets: list = []
        #: ``(finalbody, handler_depth)`` of every enclosing
        #: try-with-finally, innermost last: return/break/continue run
        #: these suites (duplicated, innermost first) on the way out.
        #: ``handler_depth`` restores the handler targets that were
        #: active *outside* that try while its finally copy is built.
        self.finally_stack: list = []

    # --------------------------------------------------------------- suites

    def build(self, body: list) -> None:
        current = self.cfg._new_block("body")
        self.cfg.entry.add_successor(current)
        out = self.visit_suite(body, current)
        if out is not None:
            out.add_successor(self.cfg.exit)

    def visit_suite(self, body: list, current: Block) -> Block | None:
        for stmt in body:
            if current is None:
                # Unreachable code after return/raise/break: still give
                # the statements a block so ``block_of`` finds them, but
                # leave it disconnected.
                current = self.cfg._new_block("unreachable")
            current = self.visit_statement(stmt, current)
        return current

    def visit_statement(self, stmt, current: Block) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._visit_while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, current)
        if isinstance(stmt, ast.Return):
            current.statements.append(stmt)
            self._exception_edges(current)
            out = self._run_finallys(current, depth=0)
            if out is not None:
                out.add_successor(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            current.statements.append(stmt)
            self._raise_edges(current)
            return None
        if isinstance(stmt, ast.Break):
            current.statements.append(stmt)
            if self.loops:
                frame = self.loops[-1]
                out = self._run_finallys(current, frame.finally_depth)
                if out is not None:
                    out.add_successor(frame.after)
            return None
        if isinstance(stmt, ast.Continue):
            current.statements.append(stmt)
            if self.loops:
                frame = self.loops[-1]
                out = self._run_finallys(current, frame.finally_depth)
                if out is not None:
                    out.add_successor(frame.header)
            return None
        if isinstance(stmt, ast.Assert):
            # Success falls through; failure is an implicit raise.
            current.statements.append(stmt)
            self._raise_edges(current, fallthrough=True)
            return current
        # Nested function/class definitions are opaque statements here;
        # ``function_cfgs`` builds their own graphs separately.
        current.statements.append(stmt)
        if self.handler_targets:
            # Inside a try body every statement boundary may divert to
            # the innermost handler set: close the block so the edge is
            # position-precise.
            self._exception_edges(current)
            nxt = self.cfg._new_block("body")
            current.add_successor(nxt)
            return nxt
        return current

    # ------------------------------------------------------------ compound

    def _visit_if(self, stmt: ast.If, current: Block) -> Block | None:
        current.statements.append(stmt)  # the test expression
        self._exception_edges(current)
        after = self.cfg._new_block("join")
        then_entry = self.cfg._new_block("body")
        current.add_successor(then_entry)
        then_out = self.visit_suite(stmt.body, then_entry)
        if then_out is not None:
            then_out.add_successor(after)
        if stmt.orelse:
            else_entry = self.cfg._new_block("body")
            current.add_successor(else_entry)
            else_out = self.visit_suite(stmt.orelse, else_entry)
            if else_out is not None:
                else_out.add_successor(after)
        else:
            current.add_successor(after)
        if not after.predecessors:
            return None  # both arms left the suite
        return after

    def _visit_while(self, stmt: ast.While, current: Block) -> Block | None:
        header = self.cfg._new_block("loop-header")
        header.statements.append(stmt)  # the test expression
        current.add_successor(header)
        self._exception_edges(header)
        after = self.cfg._new_block("join")
        body_entry = self.cfg._new_block("body")
        header.add_successor(body_entry)
        self.loops.append(_LoopFrame(header=header, after=after,
                                     finally_depth=len(self.finally_stack)))
        body_out = self.visit_suite(stmt.body, body_entry)
        self.loops.pop()
        if body_out is not None:
            body_out.add_successor(header)
        is_infinite = (isinstance(stmt.test, ast.Constant)
                       and bool(stmt.test.value))
        if stmt.orelse and not is_infinite:
            else_entry = self.cfg._new_block("body")
            header.add_successor(else_entry)
            else_out = self.visit_suite(stmt.orelse, else_entry)
            if else_out is not None:
                else_out.add_successor(after)
        elif not is_infinite:
            header.add_successor(after)
        if not after.predecessors:
            return None  # while True with no break
        return after

    def _visit_for(self, stmt, current: Block) -> Block | None:
        header = self.cfg._new_block("loop-header")
        header.statements.append(stmt)  # iterator advance + target bind
        current.add_successor(header)
        self._exception_edges(header)
        after = self.cfg._new_block("join")
        body_entry = self.cfg._new_block("body")
        header.add_successor(body_entry)
        self.loops.append(_LoopFrame(header=header, after=after,
                                     finally_depth=len(self.finally_stack)))
        body_out = self.visit_suite(stmt.body, body_entry)
        self.loops.pop()
        if body_out is not None:
            body_out.add_successor(header)
        if stmt.orelse:
            else_entry = self.cfg._new_block("body")
            header.add_successor(else_entry)
            else_out = self.visit_suite(stmt.orelse, else_entry)
            if else_out is not None:
                else_out.add_successor(after)
        else:
            header.add_successor(after)
        return after

    def _visit_with(self, stmt, current: Block) -> Block | None:
        # The with statement itself (context-manager entry) heads its
        # own block so rules can key facts on it (lock acquisition).
        entry = self.cfg._new_block("with-entry")
        entry.statements.append(stmt)
        current.add_successor(entry)
        self._exception_edges(entry)
        body_entry = self.cfg._new_block("body")
        entry.add_successor(body_entry)
        body_out = self.visit_suite(stmt.body, body_entry)
        if body_out is None:
            return None
        exit_block = self.cfg._new_block("with-exit")
        body_out.add_successor(exit_block)
        return exit_block

    def _visit_try(self, stmt: ast.Try, current: Block) -> Block | None:
        after = self.cfg._new_block("join")

        handler_entries = []
        for handler in stmt.handlers:
            entry = self.cfg._new_block("handler")
            entry.statements.append(handler)  # the except clause itself
            handler_entries.append(entry)

        def run_finally(block: Block, kind: str) -> Block | None:
            """Route ``block`` through a copy of the finally suite."""
            if not stmt.finalbody:
                return block
            entry = self.cfg._new_block(f"finally-{kind}")
            block.add_successor(entry)
            return self.visit_suite(stmt.finalbody, entry)

        # While the body, else and handler suites are visited, the
        # finally is pending: return/break/continue inside them must
        # route through it (``_run_finallys``).
        handler_depth = len(self.handler_targets)
        if stmt.finalbody:
            self.finally_stack.append((stmt.finalbody, handler_depth))

        # --- try body: exceptions may divert to handlers (or, with no
        # handlers, to the finally-then-reraise route).
        body_entry = self.cfg._new_block("try-body")
        current.add_successor(body_entry)
        if handler_entries:
            self.handler_targets.append(handler_entries)
        else:
            # No handlers: an exception runs the finally then re-raises.
            reraise = self.cfg._new_block("finally-reraise-entry")
            self.handler_targets.append([reraise])
        body_out = self.visit_suite(stmt.body, body_entry)
        diverted = self.handler_targets.pop()

        # --- else suite runs only when the body completed normally.
        if body_out is not None and stmt.orelse:
            body_out = self.visit_suite(stmt.orelse, body_out)

        # --- handlers: body flows to finally/join; an uncaught raise
        # inside a handler behaves like any other raise.
        handler_outs = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            # A body that could not raise leaves the handler entry
            # disconnected but still parsed (block_of finds it).
            handler_outs.append(self.visit_suite(handler.body, entry))

        if stmt.finalbody:
            self.finally_stack.pop()

        if not handler_entries and stmt.finalbody:
            # Wire the exceptional route through the finally suite and
            # on to the raise exit.
            reraise_entry = diverted[0]
            if reraise_entry.predecessors:
                out = self.visit_suite(stmt.finalbody, reraise_entry)
                if out is not None:
                    out.add_successor(self.cfg.raise_exit)
            # else: the try body had no statements that could raise

        normal_out = run_finally(body_out, "normal") if body_out is not None \
            else None
        if normal_out is not None:
            normal_out.add_successor(after)
        for handler_out in handler_outs:
            if handler_out is not None:
                handler_out = run_finally(handler_out, "handler")
            if handler_out is not None:
                handler_out.add_successor(after)

        if not after.predecessors:
            return None
        return after

    def _run_finallys(self, block: Block, depth: int) -> Block | None:
        """Duplicate the pending finally suites above ``depth``
        (innermost first) onto a route that leaves through ``block`` —
        how return/break/continue honor ``try/finally`` on the way out.
        Returns the last copy's out-block (None if a finally itself
        cannot complete normally)."""
        out = block
        saved_handlers = self.handler_targets
        saved_finally = self.finally_stack
        for i in range(len(saved_finally) - 1, depth - 1, -1):
            finalbody, handler_depth = saved_finally[i]
            entry = self.cfg._new_block("finally-leave")
            out.add_successor(entry)
            # The finally runs outside its try: restore the handler
            # targets and pending finallys that surround that try.
            self.handler_targets = saved_handlers[:handler_depth]
            self.finally_stack = saved_finally[:i]
            out = self.visit_suite(finalbody, entry)
            if out is None:
                break
        self.handler_targets = saved_handlers
        self.finally_stack = saved_finally
        return out

    # ------------------------------------------------------------ edges

    def _exception_edges(self, block: Block) -> None:
        """Edges for "a statement here may raise": to the innermost
        enclosing handlers only (implicit raises are otherwise
        unmodeled; see the module doc)."""
        if self.handler_targets:
            for target in self.handler_targets[-1]:
                block.add_successor(target)

    def _raise_edges(self, block: Block, fallthrough: bool = False) -> None:
        """Edges for an explicit ``raise`` (or failing ``assert``)."""
        if self.handler_targets:
            for target in self.handler_targets[-1]:
                block.add_successor(target)
        else:
            block.add_successor(self.cfg.raise_exit)
        if not fallthrough:
            return


def build_cfg(node) -> CFG:
    """The CFG of one function def (sync or async) or module body."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Module)):
        raise TypeError(f"cannot build a CFG from {type(node).__name__}")
    cfg = CFG(node)
    _Builder(cfg).build(list(node.body))
    return cfg


def function_cfgs(tree):
    """Yield ``(func_node, CFG)`` for every function in ``tree``
    (methods included; nested functions get their own graphs)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, build_cfg(node)
