"""RA008/RA009 — coroutine hygiene for the asyncio serving stack.

One event loop drives every connection of the binary probe server; a
single blocking call inside a coroutine stalls *all* of them, and an
un-awaited coroutine (or a dropped ``create_task`` handle) silently
discards both its work and its exceptions.  These two rules pin the
conventions the aserve/cluster code already follows:

**RA008** — no blocking calls inside ``async def``: ``time.sleep``,
``zlib.compress``/``decompress`` (CPU-bound on block-sized payloads),
``socket.create_connection`` / blocking socket methods
(``accept``/``recv``/``recv_into``/``sendall``), and builtin ``open``.
The blessed escapes — ``await loop.run_in_executor(None, fn, ...)`` and
``await asyncio.to_thread(fn, ...)`` — pass the blocking function as a
*reference*, not a call, so they never trip the rule; likewise a
blocking helper *defined* inside the coroutine (and shipped to an
executor) is a separate sync scope the rule does not enter.

**RA009** — no orphaned coroutines: an expression statement that calls
an ``async def`` defined in the same file without ``await`` creates a
coroutine object that never runs; an expression statement that drops
the result of ``create_task``/``ensure_future``/``gather`` loses the
only handle through which the task's exception can ever be observed
(asyncio logs "Task exception was never retrieved" at interpreter
teardown — long after the damage).  Keep the handle, await it, or
attach a done-callback.
"""

from __future__ import annotations

import ast

from .framework import Checker, register

#: Socket methods that block the calling thread (event loop).
_BLOCKING_SOCKET_METHODS = {"accept", "recv", "recv_into", "sendall"}

#: ``module.function`` calls that block or burn CPU on the loop thread.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"),
    ("zlib", "compress"),
    ("zlib", "decompress"),
    ("socket", "create_connection"),
}


def _async_body_statements(func: ast.AsyncFunctionDef):
    """Statements belonging to ``func``'s own scope: walk the body but
    do not descend into nested function/class definitions."""
    stack = list(func.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.ExceptHandler):
                stack.extend(child.body)


def _walk_own_exprs(stmt):
    """Expression nodes evaluated by ``stmt`` itself (compound bodies
    excluded — they reappear as their own statements)."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield from ast.walk(child)
        elif isinstance(child, ast.withitem):
            yield from ast.walk(child.context_expr)


@register
class BlockingCallInCoroutineChecker(Checker):
    """Flag loop-stalling blocking calls inside ``async def``."""

    rule_id = "RA008"
    title = "blocking call inside a coroutine stalls the event loop"
    rationale = (
        "one event loop serves every connection; time.sleep, blocking "
        "socket ops, zlib on block-sized payloads, and synchronous file "
        "IO inside async def freeze all of them at once — route through "
        "await asyncio.sleep / run_in_executor / asyncio.to_thread "
        "instead (docs/STATICCHECK.md, coroutine hygiene)."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_file(self, ctx):
        awaited = {id(node.value) for node in ast.walk(ctx.tree)
                   if isinstance(node, ast.Await)}
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for stmt in _async_body_statements(func):
                for node in _walk_own_exprs(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    if id(node) in awaited:
                        continue  # awaitable wrapper, not a blocking call
                    yield from self._check_call(node)

    def _check_call(self, call: ast.Call):
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                yield (call.lineno, call.col_offset,
                       "builtin open() inside async def does blocking "
                       "file IO on the event-loop thread; use "
                       "asyncio.to_thread or an executor")
            return
        if not isinstance(func, ast.Attribute):
            return
        if isinstance(func.value, ast.Name):
            key = (func.value.id, func.attr)
            if key in _BLOCKING_MODULE_CALLS:
                yield (call.lineno, call.col_offset,
                       f"{key[0]}.{key[1]}() blocks the event loop "
                       f"inside async def; use asyncio.sleep / "
                       f"run_in_executor / to_thread")
                return
        if func.attr in _BLOCKING_SOCKET_METHODS:
            yield (call.lineno, call.col_offset,
                   f".{func.attr}() is a blocking socket operation "
                   f"inside async def; use the asyncio stream/loop "
                   f"equivalents (sock_accept, StreamReader, ...)")


@register
class OrphanedCoroutineChecker(Checker):
    """Flag never-awaited coroutines and dropped task handles."""

    rule_id = "RA009"
    title = "orphaned coroutine or dropped task handle"
    rationale = (
        "a coroutine call without await never runs, and a discarded "
        "create_task/ensure_future/gather result has no owner to "
        "observe its exception — failures surface only as 'Task "
        "exception was never retrieved' at teardown; keep the handle "
        "and await it, or attach add_done_callback "
        "(docs/STATICCHECK.md, coroutine hygiene)."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_file(self, ctx):
        # Name resolution is deliberately narrow to stay precise: a bare
        # ``foo()`` resolves against async defs outside any class; a
        # ``self.m()`` resolves against async methods of the *enclosing*
        # class only (``writer.close()`` never matches an unrelated
        # ``async def close`` elsewhere in the file).
        parents: dict = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        free_async = {node.name for node in ast.walk(ctx.tree)
                      if isinstance(node, ast.AsyncFunctionDef)
                      and not isinstance(parents.get(node), ast.ClassDef)}
        class_async = {
            node: {m.name for m in node.body
                   if isinstance(m, ast.AsyncFunctionDef)}
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }

        def enclosing_class(node):
            while node is not None:
                node = parents.get(node)
                if isinstance(node, ast.ClassDef):
                    return node
            return None

        for stmt in ast.walk(ctx.tree):
            if not isinstance(stmt, ast.Expr):
                continue
            call = stmt.value
            if not isinstance(call, ast.Call):
                continue  # awaited / assigned / otherwise consumed
            func = call.func
            if isinstance(func, ast.Attribute):
                if func.attr in {"create_task", "ensure_future", "gather"}:
                    yield (call.lineno, call.col_offset,
                           f"{func.attr}() result dropped: without the "
                           f"Task handle its exception is never "
                           f"retrieved and the task may be garbage-"
                           f"collected mid-flight; keep a reference")
                    continue
                if not (isinstance(func.value, ast.Name)
                        and func.value.id == "self"):
                    continue
                cls = enclosing_class(stmt)
                if cls is None or \
                        func.attr not in class_async.get(cls, ()):
                    continue
                name = f"self.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in free_async:
                name = func.id
            else:
                continue
            yield (call.lineno, call.col_offset,
                   f"{name}() is async: calling it without await "
                   f"builds a coroutine object that never runs")
