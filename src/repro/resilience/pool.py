"""Supervised process pools: track, retry, replay, rebuild.

``concurrent.futures.ProcessPoolExecutor`` treats one killed child as
fatal: every outstanding future raises ``BrokenProcessPool`` and the
executor is unusable.  For a database build that fans a scan or a set of
threshold runs across cores, that turns one OOM-killed worker into a
lost database.  :class:`SupervisedPool` keeps per-task completion state
outside the executor, so a broken pool is rebuilt (up to a bounded
number of times) and only the tasks that had not finished are replayed;
a task that raises an ordinary exception is retried with deterministic
exponential backoff.

Counters (through the :mod:`repro.obs` registry handed in):

=============================== ==========================================
``resilience.retries``           task re-executions, any cause
``resilience.task_failures``     tasks that raised an ordinary exception
``resilience.pool_rebuilds``     executor reconstructions after a break
``resilience.tasks_replayed``    unfinished tasks resubmitted on rebuild
``resilience.tasks_completed``   tasks that produced a result
=============================== ==========================================
"""

from __future__ import annotations

import time
from concurrent.futures import as_completed, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..obs import NULL_METRICS, names
from .retry import backoff_delay

__all__ = ["RetryPolicy", "PoolFailedError", "SupervisedPool"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on how hard a :class:`SupervisedPool` fights back.

    ``max_task_retries`` bounds re-executions of one task after ordinary
    exceptions; ``max_pool_rebuilds`` bounds executor reconstructions
    over the pool's lifetime (a deterministic crasher exhausts this
    rather than looping forever).
    """

    max_task_retries: int = 3
    max_pool_rebuilds: int = 2
    backoff_seconds: float = 0.05
    backoff_max_seconds: float = 1.0

    def backoff(self, attempt: int) -> float:
        return backoff_delay(attempt, self.backoff_seconds,
                             self.backoff_max_seconds)


class PoolFailedError(RuntimeError):
    """Retries/rebuilds exhausted; the remaining tasks cannot complete."""


class SupervisedPool:
    """Run ``fn`` over tasks on a process pool that survives dead workers.

    Parameters
    ----------
    fn:
        Picklable callable applied to each task (with a ``fork`` context
        it may also read module globals inherited from the parent, the
        idiom :class:`~repro.core.multiproc.MultiprocessSolver` uses).
    max_workers / mp_context:
        Passed through to :class:`ProcessPoolExecutor`.  The context is
        re-used when the pool is rebuilt, so forked children re-inherit
        whatever globals the parent still holds.
    policy:
        :class:`RetryPolicy`; defaults are deliberately conservative.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` (or scoped view); counters
        land under ``resilience.*``.
    """

    def __init__(self, fn, max_workers: int, mp_context=None,
                 policy: RetryPolicy | None = None, metrics=None,
                 sleep=time.sleep):
        self._fn = fn
        self._max_workers = max(int(max_workers), 1)
        self._context = mp_context
        self.policy = policy if policy is not None else RetryPolicy()
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._sleep = sleep
        self._pool: ProcessPoolExecutor | None = None
        #: Lifetime pool reconstructions (bounded by the policy).
        self.rebuilds = 0

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ map

    def map(self, tasks, on_result=None) -> list:
        """Apply ``fn`` to every task; returns results in task order.

        ``on_result(index, result)`` fires as each task first completes
        (in completion order) — checkpointing callers persist partial
        progress there, so work finished before a crash survives it.
        """
        tasks = list(tasks)
        results: list = [None] * len(tasks)
        pending = set(range(len(tasks)))
        failures = [0] * len(tasks)
        while pending:
            try:
                self._run_round(tasks, results, pending, failures, on_result)
            except BrokenProcessPool:
                self._rebuild(len(pending))
        return results

    # ------------------------------------------------------------ internals

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._max_workers, mp_context=self._context
            )
        return self._pool

    def _run_round(self, tasks, results, pending, failures, on_result):
        """One submit-and-drain pass over every still-pending task."""
        pool = self._ensure_pool()
        futures = {pool.submit(self._fn, tasks[i]): i for i in sorted(pending)}
        for future in as_completed(futures):
            i = futures[future]
            try:
                result = future.result()
            except BrokenProcessPool:
                raise
            except Exception as exc:
                self._record_failure(i, failures, exc)
                continue  # stays pending; re-submitted next round
            results[i] = result
            pending.discard(i)
            self.metrics.inc(names.RESILIENCE_TASKS_COMPLETED)
            if on_result is not None:
                on_result(i, result)

    def _record_failure(self, i, failures, exc) -> None:
        failures[i] += 1
        self.metrics.inc(names.RESILIENCE_TASK_FAILURES)
        self.metrics.inc(names.RESILIENCE_RETRIES)
        if failures[i] > self.policy.max_task_retries:
            raise PoolFailedError(
                f"task {i} failed {failures[i]} times "
                f"(max_task_retries={self.policy.max_task_retries}): {exc!r}"
            ) from exc
        self._sleep(self.policy.backoff(failures[i]))

    def _rebuild(self, n_pending: int) -> None:
        """Replace a broken executor and account for the replayed tasks."""
        self.rebuilds += 1
        if self.rebuilds > self.policy.max_pool_rebuilds:
            raise PoolFailedError(
                f"process pool broke {self.rebuilds} times "
                f"(max_pool_rebuilds={self.policy.max_pool_rebuilds}); "
                f"{n_pending} tasks incomplete"
            )
        self.metrics.inc(names.RESILIENCE_POOL_REBUILDS)
        self.metrics.inc(names.RESILIENCE_TASKS_REPLAYED, n_pending)
        self.metrics.inc(names.RESILIENCE_RETRIES, n_pending)
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._sleep(self.policy.backoff(self.rebuilds))
