"""repro.resilience — fault tolerance for solving and serving.

The paper's headline run compresses a 40-hour uniprocessor solve to 50
minutes on 64 Ethernet-connected machines — exactly the regime where a
single crashed worker, dropped socket, or torn checkpoint erases hours
of retrograde analysis.  This package makes every long-running path
restartable and failure-isolated:

* :class:`SupervisedPool` — a process pool with per-task completion
  tracking, bounded retry/backoff, and pool rebuilds, so a killed child
  costs one task, not one database.
* :mod:`~repro.resilience.checkpoint` — atomic tmp-file + rename writes
  with CRC32 verification, plus :class:`RoundStore` for intra-database
  (per-threshold) snapshots of long solves.
* :mod:`~repro.resilience.faults` — deterministic, seeded fault
  injectors (kill the worker running one chosen task, sever a client
  connection, corrupt a checkpoint file) so every recovery path is
  exercised by tests and ``--inject-fault`` CLI flags, not just written.

All counters land in the ``resilience.*`` family of the
:mod:`repro.obs` registry; see docs/RESILIENCE.md.
"""

from .checkpoint import (
    CheckpointCorruptError,
    RoundStore,
    atomic_save_array,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    crc32_of_file,
    load_array_verified,
)
from .faults import (
    BlackholeInjector,
    CheckpointCorruptInjector,
    ConnectionDropInjector,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    LatencyInjector,
    ShardCrashInjector,
    WorkerKillInjector,
    corrupt_file,
    parse_fault,
)
from .pool import PoolFailedError, RetryPolicy, SupervisedPool
from .retry import ReconnectPolicy, backoff_delay

__all__ = [
    "SupervisedPool",
    "RetryPolicy",
    "PoolFailedError",
    "ReconnectPolicy",
    "backoff_delay",
    "CheckpointCorruptError",
    "RoundStore",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_save_array",
    "crc32_of_file",
    "load_array_verified",
    "FaultSpec",
    "FaultSpecError",
    "FaultPlan",
    "WorkerKillInjector",
    "ConnectionDropInjector",
    "CheckpointCorruptInjector",
    "ShardCrashInjector",
    "LatencyInjector",
    "BlackholeInjector",
    "corrupt_file",
    "parse_fault",
]
