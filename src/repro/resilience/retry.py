"""Shared retry/backoff knobs for the resilience layer.

Backoff is deterministic (pure exponential, no jitter): two runs with
the same fault plan sleep the same amounts, which is what lets the chaos
suite assert bit-identical outcomes and exact ``resilience.*`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["backoff_delay", "ReconnectPolicy"]


def backoff_delay(attempt: int, base: float, cap: float) -> float:
    """Delay before re-execution ``attempt`` (1-based): ``base * 2**(a-1)``
    capped at ``cap``."""
    return min(base * (2 ** max(int(attempt) - 1, 0)), cap)


@dataclass(frozen=True)
class ReconnectPolicy:
    """How hard a :class:`~repro.serve.client.ProbeClient` fights back.

    ``connect_attempts`` bounds attempts per (re-)connection;
    ``request_replays`` bounds transparent replays of one idempotent
    request after a dropped connection.  Every probe-protocol operation
    is a pure lookup, so replay is always safe for them.
    """

    connect_attempts: int = 4
    request_replays: int = 3
    backoff_seconds: float = 0.05
    backoff_max_seconds: float = 1.0

    def backoff(self, attempt: int) -> float:
        return backoff_delay(attempt, self.backoff_seconds,
                             self.backoff_max_seconds)
