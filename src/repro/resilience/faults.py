"""Deterministic fault injection for the chaos suite and CLI.

A recovery path that is never executed is a recovery path that does not
work.  This module turns the failure modes the resilience layer
defends against into *deterministic, repeatable* injectors:

* ``kill-worker`` — SIGKILL the pool worker executing one chosen task
  (a scan chunk or a threshold run), exactly once.
* ``drop-conn`` — sever probe connections server-side: every Nth
  accepted connection outright, and/or each connection after K answered
  requests.
* ``corrupt-checkpoint`` — flip a byte in one database's checkpoint
  file after it is written, exactly once.
* ``crash-shard`` — SIGKILL a shard server process after it has
  answered N requests, exactly once (what exercises the supervisor's
  auto-restart and the router's probe-back).
* ``latency`` — sleep X milliseconds before answering every Nth
  request (deadline and hedged-read tests).
* ``blackhole`` — after N answered requests, keep reading requests but
  never reply (client-timeout-path tests).

Once-only semantics survive process boundaries (forked pool workers,
killed-and-resumed pipelines, respawned shard servers) through an
``O_CREAT | O_EXCL`` flag file:
whichever process trips the fault first atomically claims the flag, and
every later attempt — including the replay of the killed task — runs
clean.  That is what makes "inject a fault, finish anyway, bit-identical
output" assertable.

Specs are compact strings for the CLI (``--inject-fault``)::

    kill-worker:chunk=2          kill the worker scanning chunk 2
    kill-worker:threshold=3      kill the worker solving threshold 3
    drop-conn:every=50           drop every 50th accepted connection
    drop-conn:after=100          sever each connection after 100 requests
    drop-conn:every=7,after=100  both
    corrupt-checkpoint:db=4      corrupt database 4's checkpoint file
    crash-shard:shard=1,after=50 SIGKILL shard 1's server after 50 requests
    latency:ms=200,every=3       200ms delay on every 3rd request
    blackhole:after=10           answer 10 requests, then go silent
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
from dataclasses import dataclass, field

__all__ = [
    "FaultSpecError",
    "FaultSpec",
    "parse_fault",
    "WorkerKillInjector",
    "ConnectionDropInjector",
    "CheckpointCorruptInjector",
    "ShardCrashInjector",
    "LatencyInjector",
    "BlackholeInjector",
    "FaultPlan",
    "corrupt_file",
]

#: kind -> allowed integer parameters.
_KINDS = {
    "kill-worker": {"chunk", "threshold"},
    "drop-conn": {"every", "after"},
    "corrupt-checkpoint": {"db"},
    "crash-shard": {"shard", "after"},
    "latency": {"ms", "every"},
    "blackhole": {"after"},
}

#: kind -> parameters that must be present in a valid spec.
_REQUIRED = {
    "crash-shard": {"after"},
    "latency": {"ms"},
    "blackhole": {"after"},
}


class FaultSpecError(ValueError):
    """A ``--inject-fault`` spec string does not parse."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``kind:key=value[,key=value]`` spec."""

    kind: str
    params: dict


def parse_fault(text: str) -> FaultSpec:
    """Parse one ``kind:key=int[,key=int]`` fault spec, validating the
    kind and its parameter names; raises :class:`FaultSpecError`."""
    kind, _, rest = str(text).strip().partition(":")
    if kind not in _KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r} (expected one of "
            f"{', '.join(sorted(_KINDS))})"
        )
    params: dict = {}
    for part in filter(None, rest.split(",")):
        key, sep, value = part.partition("=")
        if key not in _KINDS[kind]:
            raise FaultSpecError(f"{kind!r} takes {sorted(_KINDS[kind])}, "
                                 f"not {key!r}")
        if not sep:
            raise FaultSpecError(f"parameter {key!r} needs =<int>")
        try:
            params[key] = int(value)
        except ValueError as exc:
            raise FaultSpecError(f"{key}={value!r} is not an integer") from exc
    if not params:
        raise FaultSpecError(f"{kind!r} needs at least one parameter, e.g. "
                             f"{kind}:{sorted(_KINDS[kind])[0]}=1")
    if kind == "kill-worker" and len(params) != 1:
        raise FaultSpecError("kill-worker takes exactly one of chunk=/threshold=")
    missing = _REQUIRED.get(kind, set()) - params.keys()
    if missing:
        raise FaultSpecError(
            f"{kind!r} needs {'/'.join(f'{k}=' for k in sorted(missing))}"
        )
    return FaultSpec(kind, params)


# ---------------------------------------------------------------- injectors


def _claim_flag(flag_path: str) -> bool:
    """Atomically claim a once-only flag; True for the first claimant."""
    try:
        fd = os.open(flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


@dataclass(frozen=True)
class WorkerKillInjector:
    """SIGKILL the process executing one chosen task — once.

    ``scope`` is ``"chunk"`` (scan fan-out) or ``"threshold"``
    (threshold fan-out); ``target`` is the task number within that
    scope.  The flag file makes the kill fire exactly once across every
    fork and pool rebuild, so the replayed task succeeds.
    """

    scope: str
    target: int
    flag_path: str

    def should_fire(self, scope: str, number: int) -> bool:
        if scope != self.scope or int(number) != self.target:
            return False
        return _claim_flag(self.flag_path)

    def maybe_kill(self, scope: str, number: int) -> None:
        if self.should_fire(scope, number):
            os.kill(os.getpid(), signal.SIGKILL)


class ConnectionDropInjector:
    """Sever probe connections server-side, deterministically.

    ``every=N`` drops every Nth accepted connection before it is served;
    ``after=K`` severs each connection once it has answered K requests.
    Counting is process-local and thread-safe.
    """

    def __init__(self, every: int | None = None, after: int | None = None):
        if not every and not after:
            raise FaultSpecError("drop-conn needs every= and/or after=")
        self.every = int(every) if every else None
        self.after = int(after) if after else None
        self._accepted = 0
        self._lock = threading.Lock()

    def drop_on_accept(self) -> bool:
        if self.every is None:
            return False
        with self._lock:
            self._accepted += 1
            return self._accepted % self.every == 0

    def sever_after(self) -> int | None:
        return self.after


class ShardCrashInjector:
    """SIGKILL this process after it has answered N requests — once.

    The serving loop calls :meth:`answered` after each response goes
    out; at exactly ``after`` answers the injector claims the flag file
    and SIGKILLs its own process.  Because the flag survives the
    respawn (the supervisor hands the restarted server the same state
    dir), the replacement server counts up through ``after`` and stays
    alive — which is what lets a chaos run assert both the crash and
    the recovery.  ``shard`` is advisory: the cluster CLI uses it to
    target one shard's server; the server itself crashes regardless.
    """

    def __init__(self, after: int, flag_path: str, shard: int | None = None):
        if int(after) < 1:
            raise FaultSpecError("crash-shard needs after >= 1")
        self.after = int(after)
        self.shard = None if shard is None else int(shard)
        self.flag_path = flag_path
        self._answered = 0
        self._lock = threading.Lock()

    def answered(self) -> None:
        """Count one answered request; SIGKILL the process at ``after``."""
        with self._lock:
            self._answered += 1
            fire = self._answered == self.after
        if fire and _claim_flag(self.flag_path):
            os.kill(os.getpid(), signal.SIGKILL)


class LatencyInjector:
    """Delay every Nth answer by a fixed number of milliseconds.

    Deterministic by count, not by time: the Nth, 2Nth, ... request
    each pays ``ms`` milliseconds (``every`` defaults to every
    request).  Thread-safe; the caller owns the actual sleep so the
    async server can ``await`` it instead of blocking the loop.
    """

    def __init__(self, ms: int, every: int | None = None):
        if int(ms) < 0:
            raise FaultSpecError("latency needs ms >= 0")
        if every is not None and int(every) < 1:
            raise FaultSpecError("latency needs every >= 1")
        self.ms = int(ms)
        self.every = int(every) if every else 1
        self._seen = 0
        self._lock = threading.Lock()

    def delay_seconds(self) -> float:
        """Delay owed by the next request (0.0 when it runs clean)."""
        with self._lock:
            self._seen += 1
            fire = self._seen % self.every == 0
        return self.ms / 1000.0 if fire else 0.0


class BlackholeInjector:
    """Answer the first N requests, then swallow every later one.

    A swallowed request is read off the wire and never answered — the
    connection stays open and silent, which is the failure mode only a
    client-side timeout can escape.  Counting is process-global.
    """

    def __init__(self, after: int):
        if int(after) < 0:
            raise FaultSpecError("blackhole needs after >= 0")
        self.after = int(after)
        self._answered = 0
        self._lock = threading.Lock()

    def swallow(self) -> bool:
        """True once the answer budget is exhausted."""
        with self._lock:
            if self._answered >= self.after:
                return True
            self._answered += 1
            return False


@dataclass(frozen=True)
class CheckpointCorruptInjector:
    """Flip a byte in one database's checkpoint after it lands — once."""

    db: int
    flag_path: str

    def should_fire(self, db_key) -> bool:
        if str(db_key) != str(self.db):
            return False
        return _claim_flag(self.flag_path)


def corrupt_file(path, offset: int | None = None) -> None:
    """Flip one byte of ``path`` in place (middle byte by default —
    past the ``.npy`` header, inside the data)."""
    with open(path, "r+b") as fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size == 0:
            return
        pos = size // 2 if offset is None else min(int(offset), size - 1)
        fh.seek(pos)
        byte = fh.read(1)
        fh.seek(pos)
        fh.write(bytes([byte[0] ^ 0xFF]))


# --------------------------------------------------------------- FaultPlan


@dataclass
class FaultPlan:
    """Every injector for one run, built from ``--inject-fault`` specs.

    ``state_dir`` holds the once-only flag files; hand the *same*
    directory to a killed-and-resumed run so a fault that already fired
    stays fired.
    """

    worker_kill: WorkerKillInjector | None = None
    connection_drop: ConnectionDropInjector | None = None
    checkpoint_corrupt: CheckpointCorruptInjector | None = None
    shard_crash: ShardCrashInjector | None = None
    latency: LatencyInjector | None = None
    blackhole: BlackholeInjector | None = None
    specs: list = field(default_factory=list)

    @classmethod
    def from_specs(cls, texts, state_dir=None) -> "FaultPlan":
        specs = [parse_fault(t) if not isinstance(t, FaultSpec) else t
                 for t in texts]
        plan = cls(specs=specs)
        if state_dir is None and any(
            s.kind in ("kill-worker", "corrupt-checkpoint", "crash-shard")
            for s in specs
        ):
            state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
        for spec in specs:
            if spec.kind == "kill-worker":
                (scope, target), = spec.params.items()
                plan.worker_kill = WorkerKillInjector(
                    scope=scope,
                    target=target,
                    flag_path=os.path.join(
                        str(state_dir), f"kill_{scope}_{target}.fired"
                    ),
                )
            elif spec.kind == "drop-conn":
                plan.connection_drop = ConnectionDropInjector(
                    every=spec.params.get("every"),
                    after=spec.params.get("after"),
                )
            elif spec.kind == "crash-shard":
                shard = spec.params.get("shard")
                plan.shard_crash = ShardCrashInjector(
                    after=spec.params["after"],
                    shard=shard,
                    flag_path=os.path.join(
                        str(state_dir),
                        f"crash_shard_{'self' if shard is None else shard}"
                        ".fired",
                    ),
                )
            elif spec.kind == "latency":
                plan.latency = LatencyInjector(
                    ms=spec.params["ms"], every=spec.params.get("every"),
                )
            elif spec.kind == "blackhole":
                plan.blackhole = BlackholeInjector(
                    after=spec.params["after"]
                )
            else:  # corrupt-checkpoint
                db = spec.params["db"]
                plan.checkpoint_corrupt = CheckpointCorruptInjector(
                    db=db,
                    flag_path=os.path.join(
                        str(state_dir), f"corrupt_db_{db}.fired"
                    ),
                )
        return plan
