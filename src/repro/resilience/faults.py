"""Deterministic fault injection for the chaos suite and CLI.

A recovery path that is never executed is a recovery path that does not
work.  This module turns the three failure modes the resilience layer
defends against into *deterministic, repeatable* injectors:

* ``kill-worker`` — SIGKILL the pool worker executing one chosen task
  (a scan chunk or a threshold run), exactly once.
* ``drop-conn`` — sever probe connections server-side: every Nth
  accepted connection outright, and/or each connection after K answered
  requests.
* ``corrupt-checkpoint`` — flip a byte in one database's checkpoint
  file after it is written, exactly once.

Once-only semantics survive process boundaries (forked pool workers,
killed-and-resumed pipelines) through an ``O_CREAT | O_EXCL`` flag file:
whichever process trips the fault first atomically claims the flag, and
every later attempt — including the replay of the killed task — runs
clean.  That is what makes "inject a fault, finish anyway, bit-identical
output" assertable.

Specs are compact strings for the CLI (``--inject-fault``)::

    kill-worker:chunk=2          kill the worker scanning chunk 2
    kill-worker:threshold=3      kill the worker solving threshold 3
    drop-conn:every=50           drop every 50th accepted connection
    drop-conn:after=100          sever each connection after 100 requests
    drop-conn:every=7,after=100  both
    corrupt-checkpoint:db=4      corrupt database 4's checkpoint file
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
from dataclasses import dataclass, field

__all__ = [
    "FaultSpecError",
    "FaultSpec",
    "parse_fault",
    "WorkerKillInjector",
    "ConnectionDropInjector",
    "CheckpointCorruptInjector",
    "FaultPlan",
    "corrupt_file",
]

#: kind -> allowed integer parameters.
_KINDS = {
    "kill-worker": {"chunk", "threshold"},
    "drop-conn": {"every", "after"},
    "corrupt-checkpoint": {"db"},
}


class FaultSpecError(ValueError):
    """A ``--inject-fault`` spec string does not parse."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``kind:key=value[,key=value]`` spec."""

    kind: str
    params: dict


def parse_fault(text: str) -> FaultSpec:
    """Parse one ``kind:key=int[,key=int]`` fault spec, validating the
    kind and its parameter names; raises :class:`FaultSpecError`."""
    kind, _, rest = str(text).strip().partition(":")
    if kind not in _KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r} (expected one of "
            f"{', '.join(sorted(_KINDS))})"
        )
    params: dict = {}
    for part in filter(None, rest.split(",")):
        key, sep, value = part.partition("=")
        if key not in _KINDS[kind]:
            raise FaultSpecError(f"{kind!r} takes {sorted(_KINDS[kind])}, "
                                 f"not {key!r}")
        if not sep:
            raise FaultSpecError(f"parameter {key!r} needs =<int>")
        try:
            params[key] = int(value)
        except ValueError as exc:
            raise FaultSpecError(f"{key}={value!r} is not an integer") from exc
    if not params:
        raise FaultSpecError(f"{kind!r} needs at least one parameter, e.g. "
                             f"{kind}:{sorted(_KINDS[kind])[0]}=1")
    if kind == "kill-worker" and len(params) != 1:
        raise FaultSpecError("kill-worker takes exactly one of chunk=/threshold=")
    return FaultSpec(kind, params)


# ---------------------------------------------------------------- injectors


def _claim_flag(flag_path: str) -> bool:
    """Atomically claim a once-only flag; True for the first claimant."""
    try:
        fd = os.open(flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


@dataclass(frozen=True)
class WorkerKillInjector:
    """SIGKILL the process executing one chosen task — once.

    ``scope`` is ``"chunk"`` (scan fan-out) or ``"threshold"``
    (threshold fan-out); ``target`` is the task number within that
    scope.  The flag file makes the kill fire exactly once across every
    fork and pool rebuild, so the replayed task succeeds.
    """

    scope: str
    target: int
    flag_path: str

    def should_fire(self, scope: str, number: int) -> bool:
        if scope != self.scope or int(number) != self.target:
            return False
        return _claim_flag(self.flag_path)

    def maybe_kill(self, scope: str, number: int) -> None:
        if self.should_fire(scope, number):
            os.kill(os.getpid(), signal.SIGKILL)


class ConnectionDropInjector:
    """Sever probe connections server-side, deterministically.

    ``every=N`` drops every Nth accepted connection before it is served;
    ``after=K`` severs each connection once it has answered K requests.
    Counting is process-local and thread-safe.
    """

    def __init__(self, every: int | None = None, after: int | None = None):
        if not every and not after:
            raise FaultSpecError("drop-conn needs every= and/or after=")
        self.every = int(every) if every else None
        self.after = int(after) if after else None
        self._accepted = 0
        self._lock = threading.Lock()

    def drop_on_accept(self) -> bool:
        if self.every is None:
            return False
        with self._lock:
            self._accepted += 1
            return self._accepted % self.every == 0

    def sever_after(self) -> int | None:
        return self.after


@dataclass(frozen=True)
class CheckpointCorruptInjector:
    """Flip a byte in one database's checkpoint after it lands — once."""

    db: int
    flag_path: str

    def should_fire(self, db_key) -> bool:
        if str(db_key) != str(self.db):
            return False
        return _claim_flag(self.flag_path)


def corrupt_file(path, offset: int | None = None) -> None:
    """Flip one byte of ``path`` in place (middle byte by default —
    past the ``.npy`` header, inside the data)."""
    with open(path, "r+b") as fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size == 0:
            return
        pos = size // 2 if offset is None else min(int(offset), size - 1)
        fh.seek(pos)
        byte = fh.read(1)
        fh.seek(pos)
        fh.write(bytes([byte[0] ^ 0xFF]))


# --------------------------------------------------------------- FaultPlan


@dataclass
class FaultPlan:
    """Every injector for one run, built from ``--inject-fault`` specs.

    ``state_dir`` holds the once-only flag files; hand the *same*
    directory to a killed-and-resumed run so a fault that already fired
    stays fired.
    """

    worker_kill: WorkerKillInjector | None = None
    connection_drop: ConnectionDropInjector | None = None
    checkpoint_corrupt: CheckpointCorruptInjector | None = None
    specs: list = field(default_factory=list)

    @classmethod
    def from_specs(cls, texts, state_dir=None) -> "FaultPlan":
        specs = [parse_fault(t) if not isinstance(t, FaultSpec) else t
                 for t in texts]
        plan = cls(specs=specs)
        if state_dir is None and any(
            s.kind in ("kill-worker", "corrupt-checkpoint") for s in specs
        ):
            state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
        for spec in specs:
            if spec.kind == "kill-worker":
                (scope, target), = spec.params.items()
                plan.worker_kill = WorkerKillInjector(
                    scope=scope,
                    target=target,
                    flag_path=os.path.join(
                        str(state_dir), f"kill_{scope}_{target}.fired"
                    ),
                )
            elif spec.kind == "drop-conn":
                plan.connection_drop = ConnectionDropInjector(
                    every=spec.params.get("every"),
                    after=spec.params.get("after"),
                )
            else:  # corrupt-checkpoint
                db = spec.params["db"]
                plan.checkpoint_corrupt = CheckpointCorruptInjector(
                    db=db,
                    flag_path=os.path.join(
                        str(state_dir), f"corrupt_db_{db}.fired"
                    ),
                )
        return plan
