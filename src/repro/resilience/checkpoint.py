"""Crash-safe checkpoint primitives: atomic writes + CRC32 verification.

A checkpoint torn by a mid-write kill is worse than no checkpoint: a
truncated ``.npy`` that half-loads poisons every database built on top
of it.  Two rules fix that:

* **Never write in place.**  Everything goes to ``<name>.tmp`` in the
  same directory, is fsynced, and lands with :func:`os.replace` — the
  destination either holds the old bytes or the complete new ones.
* **Record a CRC32 next to every artifact.**  Verification on load
  distinguishes "never written" from "written then damaged"; a reader
  that detects damage can fall back to recomputing instead of trusting
  garbage.

:class:`RoundStore` applies both rules to intra-database progress: one
retrograde threshold run's labels per file, so a solve killed at
threshold 17 of 24 resumes at 18 with bit-identical results.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from pathlib import Path

import numpy as np

__all__ = [
    "CheckpointCorruptError",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_save_array",
    "atomic_savez_compressed",
    "crc32_of_file",
    "load_array_verified",
    "RoundStore",
]


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file failed CRC32 or structural verification."""


# ----------------------------------------------------------- atomic writes


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` so ``path`` is never observed half-written."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def atomic_write_text(path, text: str) -> None:
    """Atomically replace ``path`` with UTF-8 encoded ``text``."""
    atomic_write_bytes(path, text.encode())


def atomic_write_json(path, obj) -> None:
    """Atomically replace ``path`` with ``obj`` serialized as JSON."""
    atomic_write_text(path, json.dumps(obj, indent=2))


def atomic_save_array(path, array: np.ndarray) -> int:
    """Atomically write ``array`` in ``.npy`` format; returns the CRC32
    of the file's bytes (record it in a manifest for verified loads)."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array))
    data = buffer.getvalue()
    atomic_write_bytes(path, data)
    return zlib.crc32(data)


def atomic_savez_compressed(path, **arrays) -> int:
    """Atomically write ``arrays`` in ``.npz`` (compressed) format;
    returns the CRC32 of the file's bytes."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    data = buffer.getvalue()
    atomic_write_bytes(path, data)
    return zlib.crc32(data)


# ------------------------------------------------------------ verification


def crc32_of_file(path, chunk: int = 1 << 20) -> int:
    """CRC32 of a file's bytes, streamed in ``chunk``-sized reads."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            crc = zlib.crc32(block, crc)
    return crc


def load_array_verified(path, crc=None) -> np.ndarray:
    """Load a ``.npy`` file, checking its CRC32 first when one is given.

    Raises :class:`CheckpointCorruptError` on mismatch *before* handing
    the bytes to :func:`numpy.load`, so damage surfaces as a typed error
    instead of an arbitrary parser failure.
    """
    path = Path(path)
    if crc is not None:
        actual = crc32_of_file(path)
        if actual != int(crc):
            raise CheckpointCorruptError(
                f"{path}: CRC32 {actual:#010x} does not match recorded "
                f"{int(crc):#010x}"
            )
    try:
        return np.load(path)
    except (OSError, ValueError) as exc:
        raise CheckpointCorruptError(f"{path}: unreadable array: {exc}") from exc


# -------------------------------------------------------------- RoundStore


class RoundStore:
    """Per-threshold snapshots inside one long database solve.

    Layout: ``<dir>/t<t>.npy`` holds the kernel's status labels for
    threshold ``t``; ``<dir>/rounds.json`` maps thresholds to CRC32s.
    Every write is atomic and the index is rewritten after the array
    lands, so a crash at any byte leaves a store that verifies cleanly
    (at worst the last threshold is re-solved).
    """

    _INDEX = "rounds.json"

    def __init__(self, directory, size: int):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.size = int(size)
        self._index = self._load_index()

    def _index_path(self) -> Path:
        return self._dir / self._INDEX

    def _load_index(self) -> dict:
        try:
            index = json.loads(self._index_path().read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        return index if isinstance(index, dict) else {}

    def _status_path(self, t: int) -> Path:
        return self._dir / f"t{int(t)}.npy"

    # --------------------------------------------------------------- io

    def load(self) -> dict[int, np.ndarray]:
        """Verified snapshots by threshold; damaged entries are dropped
        (their thresholds simply get re-solved)."""
        out: dict[int, np.ndarray] = {}
        for key, crc in self._index.items():
            try:
                t = int(key)
            except ValueError:
                continue
            path = self._status_path(t)
            if not path.exists():
                continue
            try:
                status = load_array_verified(path, crc)
            except CheckpointCorruptError:
                continue
            if status.shape != (self.size,):
                continue
            out[t] = status
        return out

    def put(self, t: int, status: np.ndarray) -> None:
        crc = atomic_save_array(self._status_path(t), status)
        self._index[str(int(t))] = crc
        atomic_write_json(self._index_path(), self._index)

    def clear(self) -> None:
        """Remove every snapshot (call once the final values are safely
        checkpointed — the rounds are redundant from then on)."""
        for key in list(self._index):
            self._status_path(int(key)).unlink(missing_ok=True)
        self._index = {}
        self._index_path().unlink(missing_ok=True)
        try:
            self._dir.rmdir()
        except OSError:
            pass  # leftover foreign files; keep the directory
