"""repro.aserve — asyncio binary probe serving with pipelining.

The high-throughput twin of :mod:`repro.serve`: a versioned struct-
packed binary frame format (:mod:`~repro.aserve.frames`), an asyncio
server answering binary and legacy JSON on one port
(:mod:`~repro.aserve.server`), a pipelined async client with a blocking
probe-protocol facade (:mod:`~repro.aserve.client`), and a zero-copy
mmap fast path for local stores (:mod:`~repro.aserve.local`).  See
docs/SERVING.md for the frame layout and the version-negotiation state
machine.
"""

from pathlib import Path

from .client import AsyncProbeClient, BinaryProbeClient, EventLoopThread
from .frames import BINARY_VERSION, FrameError
from .local import LocalProbeClient
from .server import AsyncProbeServer

__all__ = [
    "AsyncProbeClient",
    "AsyncProbeServer",
    "BINARY_VERSION",
    "BinaryProbeClient",
    "EventLoopThread",
    "FrameError",
    "LocalProbeClient",
    "connect",
]


def connect(endpoint, **kwargs):
    """Probe client for an endpoint string, fastest transport first.

    An existing local path selects the zero-copy
    :class:`LocalProbeClient` (no socket at all); ``host:port`` selects
    the pipelined :class:`BinaryProbeClient`.  Keyword arguments pass
    through to the chosen constructor.
    """
    endpoint = str(endpoint)
    if Path(endpoint).exists():
        return LocalProbeClient(endpoint, **kwargs)
    host, _, port = endpoint.rpartition(":")
    if host and port.isdigit():
        return BinaryProbeClient(host, int(port), **kwargs)
    raise ValueError(
        f"endpoint {endpoint!r} is neither an existing paged-store path "
        f"nor host:port"
    )
