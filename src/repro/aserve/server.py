"""Asyncio probe server: binary and JSON protocols on one port.

One :class:`AsyncProbeServer` wraps one
:class:`~repro.serve.service.ProbeService` and answers both wire
protocols on the same listener.  Dispatch is per frame, on the payload's
first byte: :data:`~repro.aserve.frames.BINARY_VERSION` (``0xB1``)
selects the binary protocol of :mod:`repro.aserve.frames`; ``{`` (or
leading JSON whitespace) falls back to the legacy JSON protocol, so
existing :class:`~repro.serve.client.ProbeClient` instances keep working
against a binary server unchanged.  Any other first byte is answered
with a well-formed ``ok: false`` JSON rejection and the connection is
closed — never a hang.

Unlike the thread-per-connection :class:`~repro.serve.server.ProbeServer`,
every connection here is a coroutine on one event loop: ten thousand
idle connections cost ten thousand small objects, not ten thousand
stacks.  Requests on one connection are answered in arrival order, which
is what makes client-side pipelining pay: a client may write hundreds of
frames before reading the first response.

Lifecycle mirrors the threaded server: the listener is bound eagerly in
the constructor (``port=0`` picks an ephemeral port readable before
start), :meth:`~AsyncProbeServer.start` runs the loop on a background
thread, :meth:`~AsyncProbeServer.serve_forever` runs it on the calling
thread until ``KeyboardInterrupt``, and shutdown drains in-flight
frames, closes every connection, and joins the loop.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

from ..obs import NULL_METRICS
from ..serve.ops import JsonRequestHandler
from ..serve.protocol import MAX_MESSAGE_BYTES
from ..serve.server import _overloaded
from . import frames

__all__ = ["AsyncProbeServer"]

#: First bytes that open a JSON frame (an object, an array — rejected
#: with the same message as the threaded server — or leading whitespace).
_JSON_OPENERS = frozenset(b"{[ \t\r\n")

#: Seconds granted to in-flight connection handlers at shutdown.
_DRAIN_SECONDS = 5.0


class AsyncProbeServer:
    """Serve one :class:`ProbeService` over TCP on an asyncio event loop.

    Speaks the binary protocol natively and the legacy JSON protocol via
    per-frame version-byte fallback.  Connections are isolated exactly
    like the threaded server's: a malformed frame or a raising handler
    produces an error response (or a counted disconnect) for that client
    only.  ``max_connections`` caps concurrently served connections —
    beyond it, a connection is answered with an ``ok: false`` capacity
    rejection and closed.  ``max_inflight`` caps concurrently executing
    requests across all connections — past it a request is shed with a
    well-formed overload answer (JSON ``reason: "overloaded"``, binary
    error frame carrying :data:`~repro.aserve.frames.FLAG_OVERLOADED`)
    and the connection survives.  ``faults`` optionally carries a
    :class:`~repro.resilience.FaultPlan`; the drop-conn, latency,
    blackhole and crash-shard injectors all apply here exactly as on
    the threaded server (latency is awaited, so injected delays overlap
    across connections instead of blocking the loop).  ``metrics`` is
    typically ``registry.scoped("aserve.server")``.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 metrics=None, max_message_bytes: int = MAX_MESSAGE_BYTES,
                 max_connections: int | None = None, faults=None,
                 max_inflight: int | None = None):
        self.service = service
        self._metrics = NULL_METRICS if metrics is None else metrics
        self._handler = JsonRequestHandler(service, self._metrics)
        self._max_message_bytes = int(max_message_bytes)
        self._max_connections = (
            None if max_connections is None else int(max_connections)
        )
        self._max_inflight = (
            None if max_inflight is None else int(max_inflight)
        )
        self._inflight = 0
        self._drop = getattr(faults, "connection_drop", None)
        self._latency = getattr(faults, "latency", None)
        self._blackhole = getattr(faults, "blackhole", None)
        self._crash = getattr(faults, "shard_crash", None)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1024)
        self.host, self.port = self._listener.getsockname()[:2]
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop: asyncio.Event | None = None
        self._writers: set = set()
        self._tasks: set = set()

    @property
    def address(self) -> tuple:
        """``(host, port)`` of the bound listener."""
        return (self.host, self.port)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "AsyncProbeServer":
        """Run the event loop on a background thread and return once the
        server is accepting connections."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready,),
            name=f"aserve-{self.port}", daemon=True,
        )
        self._thread.start()
        ready.wait()
        return self

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until
        ``KeyboardInterrupt`` or :meth:`shutdown`; returns after a clean
        drain either way."""
        self._loop = asyncio.new_event_loop()
        try:
            main = self._loop.create_task(self._main(None))
            try:
                self._loop.run_until_complete(main)
            except KeyboardInterrupt:
                # SIGINT landed between frames: resume the suspended main
                # task just long enough to drain and close cleanly.
                self._loop.run_until_complete(self._finish(main))
        finally:
            self._loop.close()

    def shutdown(self) -> None:
        """Stop accepting, drain in-flight frames, join the loop thread
        (background-thread servers only); safe to call repeatedly."""
        loop, thread = self._loop, self._thread
        if loop is None or self._stop is None:
            self._listener.close()  # constructed but never started
            return
        if thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(self._stop.set)
            thread.join()

    def __enter__(self) -> "AsyncProbeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _run_loop(self, ready: threading.Event) -> None:
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._main(ready))
        finally:
            self._loop.close()

    async def _finish(self, main_task) -> None:
        self._stop.set()
        await main_task

    async def _main(self, ready: threading.Event | None) -> None:
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection, sock=self._listener
        )
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await self._drain_connections()
            await server.wait_closed()

    async def _drain_connections(self) -> None:
        # Closing the transports feeds EOF to every connection handler
        # parked on a read; they exit on their own within the grace
        # period, which is what "the event loop drains" means.
        for writer in list(self._writers):
            writer.close()
        tasks = [t for t in self._tasks if not t.done()]
        if tasks:
            await asyncio.wait(tasks, timeout=_DRAIN_SECONDS)

    # ---------------------------------------------------------- connections

    async def _serve_connection(self, reader, writer) -> None:
        self._metrics.inc("connections")
        if self._drop is not None and self._drop.drop_on_accept():
            # Injected fault: sever this connection before serving it.
            self._metrics.inc("faults.connections_dropped")
            writer.close()
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # asyncio does not set NODELAY on sockets accepted from a
            # pre-bound listener; without it Nagle holds the second of
            # two small responses until the client's delayed ACK
            # (~40ms), destroying pipelined throughput.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if (self._max_connections is not None
                and len(self._writers) >= self._max_connections):
            self._metrics.inc("connections_rejected")
            try:
                await self._send_json(writer, {
                    "ok": False,
                    "error": "server at capacity "
                             f"({self._max_connections} connections)",
                })
            except (ConnectionError, OSError):
                self._metrics.inc("client_disconnects")
            writer.close()
            return
        task = asyncio.current_task()
        self._writers.add(writer)
        self._tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except Exception:  # noqa: BLE001 — a connection handler must
            # never take down the event loop; the failure is counted and
            # only this connection is dropped.
            self._metrics.inc("errors")
        finally:
            self._writers.discard(writer)
            self._tasks.discard(task)
            writer.close()

    async def _connection_loop(self, reader, writer) -> None:
        sever_after = (
            self._drop.sever_after() if self._drop is not None else None
        )
        answered = 0
        while True:
            try:
                head = await reader.readexactly(frames.LENGTH.size)
            except asyncio.IncompleteReadError as exc:
                if exc.partial:  # torn prefix, not a clean EOF
                    self._metrics.inc("client_disconnects")
                return
            except (ConnectionError, OSError):
                self._metrics.inc("client_disconnects")
                return
            (length,) = frames.LENGTH.unpack(head)
            if length > self._max_message_bytes:
                # Rejected from the prefix alone — no payload buffered.
                self._metrics.inc("errors")
                await self._send_json(writer, {
                    "ok": False,
                    "error": f"frame of {length} bytes exceeds limit "
                             f"({self._max_message_bytes})",
                })
                return
            try:
                payload = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                self._metrics.inc("client_disconnects")
                return
            try:
                keep = await self._answer(payload, writer)
            except (ConnectionError, OSError):
                self._metrics.inc("client_disconnects")
                return
            if not keep:
                return
            answered += 1
            if sever_after is not None and answered >= sever_after:
                # Injected fault: hang up mid-session so pipelined
                # clients exercise reconnect and replay.
                self._metrics.inc("faults.connections_severed")
                return

    async def _answer(self, payload: bytes, writer) -> bool:
        """Answer one frame; returns whether the connection survives."""
        first = payload[:1]
        if self._blackhole is not None and self._blackhole.swallow():
            # Injected fault: read the frame, never answer — the
            # silence only a client timeout escapes.
            self._metrics.inc("faults.requests_blackholed")
            return True
        if self._max_inflight is not None \
                and self._inflight >= self._max_inflight:
            self._metrics.inc("overloads")
            await self._shed(payload, first, writer)
            return True
        self._inflight += 1
        try:
            if self._latency is not None:
                delay = self._latency.delay_seconds()
                if delay:
                    self._metrics.inc("faults.latency_injected")
                    await asyncio.sleep(delay)
            if first == frames.VERSION_BYTE:
                self._metrics.inc("frames_binary")
                keep = await self._answer_binary(payload, writer)
            elif first and first[0] in _JSON_OPENERS:
                self._metrics.inc("frames_json")
                keep = await self._answer_json(payload, writer)
            else:
                self._metrics.inc("errors")
                message = (
                    "empty frame" if not payload else
                    f"unknown protocol version byte 0x{payload[0]:02x}"
                )
                await self._send_json(writer, {"ok": False, "error": message})
                keep = False
        finally:
            self._inflight -= 1
        if self._crash is not None:
            self._crash.answered()
        return keep

    async def _shed(self, payload: bytes, first: bytes, writer) -> None:
        """Answer one shed request in the protocol it was asked in;
        the connection stays usable for later, admitted requests."""
        if first == frames.VERSION_BYTE:
            writer.write(frames.pack_frame(frames.encode_error(
                frames.peek_seq(payload), frames.peek_opcode(payload),
                f"server overloaded ({self._max_inflight} requests "
                "in flight)",
                flags=frames.FLAG_OVERLOADED,
            )))
            await writer.drain()
            return
        await self._send_json(writer, _overloaded(self._max_inflight))

    async def _answer_json(self, payload: bytes, writer) -> bool:
        try:
            request = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._metrics.inc("errors")
            await self._send_json(
                writer, {"ok": False, "error": f"bad JSON frame: {exc}"}
            )
            return False
        if not isinstance(request, dict):
            self._metrics.inc("errors")
            await self._send_json(
                writer, {"ok": False, "error": "frame is not a JSON object"}
            )
            return False
        await self._send_json(writer, self._handler.handle(request))
        return True

    async def _answer_binary(self, payload: bytes, writer) -> bool:
        try:
            request = frames.decode_request(payload)
        except frames.FrameError as exc:
            # The length prefix already delimited this frame, so the
            # stream is still in sync: answer an error frame and keep
            # the connection.
            self._metrics.inc("errors")
            writer.write(frames.pack_frame(frames.encode_error(
                frames.peek_seq(payload), frames.peek_opcode(payload),
                str(exc),
            )))
            await writer.drain()
            return True
        self._metrics.inc("requests")
        self._metrics.inc(f"op.{frames.OP_NAMES[request.opcode]}")
        try:
            response = self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 — isolation: one bad
            # request answers an error frame, never kills the connection.
            self._metrics.inc("errors")
            response = frames.encode_error(
                request.seq, request.opcode, f"{type(exc).__name__}: {exc}"
            )
        writer.write(frames.pack_frame(response))
        await writer.drain()
        return True

    async def _send_json(self, writer, obj: dict) -> None:
        writer.write(frames.pack_frame(
            json.dumps(obj, separators=(",", ":")).encode()
        ))
        await writer.drain()

    # ------------------------------------------------------------- dispatch

    def _dispatch(self, request: frames.Request) -> bytes:
        service, seq, op = self.service, request.seq, request.opcode
        if op == frames.OP_PING:
            return frames.encode_pong(seq)
        if op == frames.OP_PROBE:
            return frames.encode_value(
                seq, service.probe(request.db, int(request.index))
            )
        if op == frames.OP_PROBE_MANY:
            values = service.probe_packed(
                request.directory, request.db_slots, request.indices
            )
            return frames.encode_values(seq, values)
        if op == frames.OP_DEPTH_OF:
            return frames.encode_depth(
                seq, service.depth_of(request.db, int(request.index))
            )
        if op == frames.OP_BEST_MOVE:
            value, moves = service.best_moves(request.board)
            return frames.encode_best_move_result(seq, value, moves)
        if op == frames.OP_INFO:
            info = {
                "game": service.game_name,
                "rules": service.rules,
                "backend": service.backend_kind,
                "ids": service.ids(),
                "positions": {
                    str(i): service.positions(i) for i in service.ids()
                },
            }
            store = getattr(service.backend, "store", None)
            if store is not None:
                info["codec"] = store.codec
            return frames.encode_json_body(seq, op, info)
        return frames.encode_json_body(seq, frames.OP_STATS, service.stats())
