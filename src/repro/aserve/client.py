"""Pipelined binary probe clients: async core plus a blocking facade.

:class:`AsyncProbeClient` is the async core: one connection, many
requests in flight.  Each request takes a sequence id, lands in a
``seq → Future`` table, and a single reader task resolves futures as
response frames arrive — so N concurrent ``await``\\ s on one connection
cost one round trip, not N.  A semaphore bounds the in-flight window.

:class:`BinaryProbeClient` wraps the async core behind the blocking,
duck-typed **probe protocol** of :class:`~repro.serve.client.ProbeClient`
(``probe`` / ``probe_many`` / ``depth_of`` / ``best_move`` /
``__contains__`` / ``ids`` / …), so ``repro.db.query``,
``repro.db.search`` and the cluster
:class:`~repro.cluster.router.ShardRouter` run over the binary protocol
unchanged.  Reconnect semantics mirror the JSON client: transport
failures of idempotent requests are replayed over a fresh connection
within :class:`~repro.resilience.ReconnectPolicy` bounds, and exhaustion
surfaces as :class:`~repro.serve.client.ProbeTransportError` — the type
the router fails over on.

:class:`EventLoopThread` is the sync/async bridge: one daemon thread
running one event loop, shareable between many facades (the router puts
every shard's client on a single loop — scatter-gather without a thread
per shard).
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np

from ..db.store import DatabaseSet
from ..obs import NULL_METRICS
from ..resilience import ReconnectPolicy
from ..serve.client import (
    ProbeError,
    ProbeOverloadedError,
    ProbeTransportError,
)
from ..serve.protocol import MAX_MESSAGE_BYTES
from . import frames

__all__ = ["AsyncProbeClient", "BinaryProbeClient", "EventLoopThread"]

#: Default bound on pipelined in-flight requests per connection.
DEFAULT_MAX_INFLIGHT = 128


class EventLoopThread:
    """One asyncio event loop on a daemon thread.

    The bridge between blocking callers and the async client: coroutines
    are submitted with :meth:`submit` (a ``concurrent.futures.Future``)
    or run to completion with :meth:`run`.  One instance can host any
    number of clients — the router's binary fan-out drives every shard
    from a single instance.
    """

    def __init__(self, name: str = "aserve-loop"):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_forever, name=name, daemon=True
        )
        self._thread.start()

    def _run_forever(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The hosted event loop."""
        return self._loop

    def submit(self, coro):
        """Schedule a coroutine; returns a ``concurrent.futures.Future``."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def run(self, coro):
        """Run a coroutine to completion and return its result."""
        return self.submit(coro).result()

    def close(self) -> None:
        """Stop the loop and join the thread; safe to call repeatedly."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()
            self._loop.close()


class AsyncProbeClient:
    """Async pipelined client for the binary probe protocol.

    Construct with :meth:`connect` (must run on the event loop).  Any
    number of request coroutines may be awaited concurrently; the
    in-flight window is bounded by ``max_inflight``.  Transport loss
    fails every pending request with
    :class:`~repro.serve.client.ProbeTransportError`; an error frame for
    one sequence id fails only that request, with
    :class:`~repro.serve.client.ProbeError`.
    """

    def __init__(self, reader, writer, host: str, port: int,
                 timeout: float = 30.0, metrics=None,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._reader = reader
        self._writer = writer
        self._metrics = NULL_METRICS if metrics is None else metrics
        self._pending: dict = {}
        self._seq = 0
        self._window = asyncio.Semaphore(max_inflight)
        self._inflight_peak = 0
        self._closed = False
        self._lost: ProbeTransportError | None = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(cls, host: str, port: int, timeout: float = 30.0,
                      metrics=None,
                      max_inflight: int = DEFAULT_MAX_INFLIGHT
                      ) -> "AsyncProbeClient":
        """Open a connection and start the response reader task."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ProbeTransportError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        return cls(reader, writer, host, port, timeout=timeout,
                   metrics=metrics, max_inflight=max_inflight)

    @property
    def closed(self) -> bool:
        """Whether the connection is gone (closed or transport-lost)."""
        return self._closed

    # ------------------------------------------------------------ the wire

    async def _read_loop(self) -> None:
        try:
            while True:
                head = await self._reader.readexactly(frames.LENGTH.size)
                (length,) = frames.LENGTH.unpack(head)
                if length > MAX_MESSAGE_BYTES:
                    raise frames.FrameError(
                        f"response frame of {length} bytes exceeds limit"
                    )
                payload = await self._reader.readexactly(length)
                if payload[:1] != frames.VERSION_BYTE:
                    # A JSON rejection (capacity, unknown version…) is a
                    # connection-scoped refusal, always followed by a
                    # close: surface it as a transport failure so
                    # routers fail over.
                    raise ProbeTransportError(
                        "server rejected the connection: "
                        + self._json_error(payload)
                    )
                response = frames.decode_response(payload)
                future = self._pending.pop(response.seq, None)
                if future is not None and not future.done():
                    if response.error is not None:
                        exc_type = (ProbeOverloadedError if response.overloaded
                                    else ProbeError)
                        future.set_exception(exc_type(response.error))
                    else:
                        future.set_result(response)
        except ProbeTransportError as exc:
            self._fail_all(exc)
        except frames.FrameError as exc:
            # A frame we cannot decode desynchronizes the stream: no
            # pending seq can be trusted any more.
            self._fail_all(ProbeTransportError(
                f"unreadable response from {self.host}:{self.port}: {exc}"
            ))
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            self._fail_all(ProbeTransportError(
                f"connection to {self.host}:{self.port} lost: {exc}"
            ))
        except asyncio.CancelledError:
            self._fail_all(ProbeTransportError("client closed"))
            raise

    @staticmethod
    def _json_error(payload: bytes) -> str:
        try:
            import json

            obj = json.loads(payload.decode())
            return str(obj.get("error", obj))
        except (UnicodeDecodeError, ValueError):
            return f"unparseable {len(payload)}-byte response"

    def _fail_all(self, exc: ProbeTransportError) -> None:
        self._closed = True
        self._lost = exc
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _request(self, build) -> frames.Response:
        """Send one frame (``build(seq) -> payload``) and await its
        response; the semaphore held across the round trip is the
        pipelining window."""
        if self._closed:
            raise self._lost or ProbeTransportError("connection is closed")
        async with self._window:
            self._seq = (self._seq + 1) & 0xFFFFFFFF
            seq = self._seq
            future = asyncio.get_running_loop().create_future()
            self._pending[seq] = future
            inflight = len(self._pending)
            if inflight > self._inflight_peak:
                self._inflight_peak = inflight
                self._metrics.set_gauge("inflight_peak", inflight)
            self._metrics.inc("requests")
            try:
                self._writer.write(frames.pack_frame(build(seq)))
                await self._writer.drain()
                return await asyncio.wait_for(future, self.timeout)
            except (ConnectionError, OSError) as exc:
                raise ProbeTransportError(
                    f"send to {self.host}:{self.port} failed: {exc}"
                ) from exc
            except asyncio.TimeoutError as exc:
                raise ProbeTransportError(
                    f"request to {self.host}:{self.port} timed out "
                    f"after {self.timeout}s"
                ) from exc
            finally:
                self._pending.pop(seq, None)

    # ------------------------------------------------------------- requests

    async def ping(self) -> bool:
        """Round-trip liveness check."""
        await self._request(frames.encode_ping)
        return True

    async def probe(self, db_id, index: int) -> int:
        """Exact value of one position."""
        response = await self._request(
            lambda seq: frames.encode_probe(seq, db_id, index)
        )
        return int(response.value)

    async def probe_many(self, positions) -> np.ndarray:
        """Values for ``[(db_id, index), ...]`` in request order."""
        positions = list(positions)
        response = await self._request(
            lambda seq: frames.encode_probe_many(seq, positions)
        )
        values = response.values
        if values.shape[0] != len(positions):
            raise ProbeTransportError(
                f"probe_many answered {values.shape[0]} values for "
                f"{len(positions)} probes"
            )
        return values

    async def probe_packed(self, directory, db_slots, indices) -> np.ndarray:
        """Values for a batch already split into parallel arrays (the
        zero-Python-per-probe path; see
        :func:`~repro.aserve.frames.encode_probe_many_packed`)."""
        response = await self._request(
            lambda seq: frames.encode_probe_many_packed(
                seq, directory, db_slots, indices
            )
        )
        return response.values

    async def depth_of(self, db_id, index: int):
        """Distance for one position, ``None`` when not served."""
        response = await self._request(
            lambda seq: frames.encode_depth_of(seq, db_id, index)
        )
        return response.depth

    async def best_move(self, board) -> dict:
        """Server-side best move: ``{"value", "pits", "moves"}`` (same
        shape as :meth:`ProbeClient.best_move`)."""
        response = await self._request(
            lambda seq: frames.encode_best_move(seq, board)
        )
        moves = [
            {"pit": int(m["pit"]), "captures": int(m["captures"]),
             "value": int(m["value"])}
            for m in response.moves
        ]
        return {
            "value": int(response.value),
            "pits": [m["pit"] for m in moves],
            "moves": moves,
        }

    async def info(self) -> dict:
        """Server metadata (game, rules, ids, positions, backend)."""
        response = await self._request(frames.encode_info)
        obj = dict(response.obj)
        obj["ids"] = [DatabaseSet._parse_id(str(i)) for i in obj["ids"]]
        return obj

    async def stats(self) -> dict:
        """Server-side cache and service counters."""
        response = await self._request(frames.encode_stats)
        return response.obj

    async def close(self) -> None:
        """Cancel the reader, close the transport; idempotent."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass  # the cancellation we just requested
        except ProbeTransportError:
            pass  # reader already failed every pending future
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # the peer may already be gone; the connection is closed


class BinaryProbeClient:
    """Blocking facade over :class:`AsyncProbeClient`.

    Satisfies the duck-typed probe protocol of
    :class:`~repro.serve.client.ProbeClient`, so query/search/router
    code runs over the binary transport unchanged.  Adds the pipelining
    surface: :meth:`pipeline` floods many batches down one connection
    concurrently, and :meth:`submit_probe_many` dispatches without
    blocking (the router's scatter primitive).

    ``loop_thread`` shares one :class:`EventLoopThread` between clients;
    by default the client owns a private one and closes it with
    :meth:`close`.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 policy: ReconnectPolicy | None = None,
                 reconnect: bool = True, metrics=None, loop_thread=None,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.policy = policy if policy is not None else ReconnectPolicy()
        self.reconnect = reconnect
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Connections re-established after a drop (not the initial one).
        self.reconnects = 0
        self._max_inflight = int(max_inflight)
        self._owns_loop = loop_thread is None
        self._loop = loop_thread if loop_thread is not None else (
            EventLoopThread(name=f"aserve-client-{host}-{port}")
        )
        self._async: AsyncProbeClient | None = None
        self._closed = False
        self._info: dict | None = None
        self._connect()

    # ----------------------------------------------------------------- wire

    def _connect(self) -> None:
        attempts = max(self.policy.connect_attempts, 1)
        last: ProbeTransportError | None = None
        for attempt in range(1, attempts + 1):
            try:
                self._async = self._loop.run(AsyncProbeClient.connect(
                    self.host, self.port, timeout=self.timeout,
                    metrics=self.metrics, max_inflight=self._max_inflight,
                ))
                return
            except ProbeTransportError as exc:
                last = exc
                self._async = None
                if attempt < attempts:
                    time.sleep(self.policy.backoff(attempt))
        raise ProbeTransportError(
            f"cannot connect to {self.host}:{self.port} after "
            f"{attempts} attempts: {last}"
        ) from last

    def set_timeout(self, seconds: float) -> None:
        """Adjust the per-request timeout, live connection included
        (same contract as :meth:`ProbeClient.set_timeout` — the
        router's deadline machinery drives this)."""
        seconds = float(seconds)
        if seconds <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = seconds
        if self._async is not None:
            self._async.timeout = seconds

    def _drop(self) -> None:
        client, self._async = self._async, None
        if client is not None:
            try:
                self._loop.run(client.close())
            except (RuntimeError, ProbeError, OSError):
                pass  # teardown of an already-failed connection

    def _call(self, factory):
        """Run ``factory(async_client)`` on the loop; transport failures
        of these idempotent lookups are replayed over a fresh connection
        within the policy's bounds (mirrors ``ProbeClient.request``)."""
        if self._closed:
            raise ProbeError("client is closed")
        replays = self.policy.request_replays if self.reconnect else 0
        for attempt in range(replays + 1):
            if self._async is None or self._async.closed:
                self._drop()
                self._connect()
                self.reconnects += 1
                self.metrics.inc("reconnects")
            try:
                return self._loop.run(factory(self._async))
            except ProbeTransportError:
                self._drop()
                if attempt >= replays:
                    raise
                time.sleep(self.policy.backoff(attempt + 1))
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------- metadata

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return self._call(lambda c: c.ping())

    def info(self) -> dict:
        """Server metadata (cached: game, rules, ids, positions)."""
        if self._info is None:
            self._info = self._call(lambda c: c.info())
        return self._info

    def stats(self) -> dict:
        """Server-side cache and service counters."""
        return self._call(lambda c: c.stats())

    @property
    def game_name(self) -> str:
        """Game of the served databases."""
        return self.info()["game"]

    @property
    def rules(self) -> str:
        """Rule string of the served databases."""
        return self.info()["rules"]

    def ids(self) -> list:
        """Database ids of the served set."""
        return list(self.info()["ids"])

    def __contains__(self, db_id) -> bool:
        return db_id in self.info()["ids"]

    def positions(self, db_id) -> int:
        """Position count of one served database."""
        return int(self.info()["positions"][str(db_id)])

    # ---------------------------------------------------------------- probes

    def probe(self, db_id, index: int) -> int:
        """Exact value of one position."""
        return self._call(lambda c: c.probe(db_id, index))

    def probe_many(self, positions) -> np.ndarray:
        """Values for ``[(db_id, index), ...]`` in request order."""
        positions = list(positions)
        return self._call(lambda c: c.probe_many(positions))

    def probe_packed(self, directory, db_slots, indices) -> np.ndarray:
        """Values for a pre-split batch (parallel arrays)."""
        return self._call(
            lambda c: c.probe_packed(directory, db_slots, indices)
        )

    def pipeline(self, batches) -> list:
        """Send every batch concurrently over the one connection.

        All batches are in flight at once (bounded by the client's
        ``max_inflight`` window); returns their value arrays in input
        order.  This is the pipelined path the benchmark sweeps.
        """
        batches = [list(batch) for batch in batches]

        async def run(client):
            return list(await asyncio.gather(
                *(client.probe_many(batch) for batch in batches)
            ))

        return self._call(run)

    def submit_probe_many(self, positions):
        """Dispatch one batch without blocking; returns a
        ``concurrent.futures.Future`` of the value array.

        No replay happens here — the caller (the router) owns failover.
        """
        if self._closed:
            raise ProbeError("client is closed")
        if self._async is None or self._async.closed:
            self._drop()
            self._connect()
            self.reconnects += 1
            self.metrics.inc("reconnects")
        return self._loop.submit(self._async.probe_many(list(positions)))

    def depth_of(self, db_id, index: int):
        """Distance for one position, ``None`` when not served."""
        return self._call(lambda c: c.depth_of(db_id, index))

    def best_move(self, board) -> dict:
        """Server-side best move: ``{"value", "pits", "moves"}``."""
        board = [int(x) for x in np.asarray(board).reshape(12)]
        return self._call(lambda c: c.best_move(board))

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Close the connection (and the loop thread when owned); safe
        to call any number of times."""
        if self._closed:
            return
        self._closed = True
        self._drop()
        if self._owns_loop:
            self._loop.close()

    def __enter__(self) -> "BinaryProbeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
