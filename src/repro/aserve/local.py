"""Zero-copy local fast path: probe an mmapped paged store in-process.

When the "endpoint" is a paged file on the local filesystem, a socket —
even a loopback one — buys nothing and costs two copies and two context
switches per batch.  :class:`LocalProbeClient` maps the store read-only
with ``mmap`` and answers probes directly from the mapping:

* ``codec="raw"`` stores are served **zero-copy**: each database is one
  ``np.frombuffer`` view straight into the mapping (blocks are written
  contiguously), so a gather is a single fancy-index over pages the OS
  cache shares with every other process mapping the same file;
* ``codec="packed"`` stores are **bulk-unpacked once** at startup: each
  database's bit-packed blocks decode to one resident int16 array (the
  ``unpacked_bytes`` gauge), after which gathers are the same single
  fancy-index as raw — the mapping itself stays 4-8x smaller;
* ``codec="zlib"`` / ``codec="packed+zlib"`` stores cannot be served
  from the mapping (zlib streams have no random access): the client
  falls back to per-block decompression through a
  :class:`~repro.serve.cache.BlockCache`, same policy as the server's
  paged backend, and counts the fallback (``mmap_fallbacks``) with the
  codec recorded as the reason in :meth:`LocalProbeClient.stats`.

The client satisfies the duck-typed probe protocol of
:class:`~repro.serve.client.ProbeClient` (``probe`` / ``probe_many`` /
``best_move`` / ``depth_of`` / ``__contains__`` / …), so query and
search code cannot tell it apart from a TCP client — only the latency
can.  :func:`repro.aserve.connect` selects it automatically when the
endpoint string is an existing local path.
"""

from __future__ import annotations

import mmap
import threading

import numpy as np

from ..obs import NULL_METRICS
from ..serve.cache import BlockCache
from ..serve.pagedstore import PagedStore
from ..serve.service import DEFAULT_CACHE_BYTES

__all__ = ["LocalProbeClient"]


class LocalProbeClient:
    """In-process probe client over an mmapped paged store.

    Thread-safe (a lock covers the zlib block cache; raw-codec reads are
    lock-free numpy views).  ``metrics`` is typically
    ``registry.scoped("aserve.local")``.
    """

    def __init__(self, path, cache_bytes: int = DEFAULT_CACHE_BYTES,
                 metrics=None):
        self._store = PagedStore(path)
        self.path = self._store.path
        self._metrics = NULL_METRICS if metrics is None else metrics
        with open(self.path, "rb") as fh:
            self._mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        self._metrics.set_gauge("mmap_bytes", len(self._mm))
        self._lock = threading.Lock()
        self._game = None
        self._closed = False
        codec = self._store.codec
        if codec == "raw":
            # Zero-copy: views straight into the mapping.
            self.mode = "zero-copy"
            self.fallback_reason = None
            self._cache = None
            self._arrays = {
                db_id: self._raw_view(db_id) for db_id in self._store.ids()
            }
        elif codec == "packed":
            # Bulk-unpack every database once; gathers then match the
            # raw fast lane while the file stays bit-packed.
            self.mode = "unpacked"
            self.fallback_reason = None
            self._cache = None
            self._arrays = {
                db_id: self._unpacked_array(db_id)
                for db_id in self._store.ids()
            }
            self._metrics.set_gauge(
                "unpacked_bytes",
                sum(a.nbytes for a in self._arrays.values()),
            )
        else:
            # zlib-family codecs have no random access inside a block
            # stream: fall back to the cached per-block decode path and
            # say why.
            self.mode = "block-cache"
            self.fallback_reason = f"codec {codec!r} is not mmap-decodable"
            self._metrics.inc("mmap_fallbacks")
            self._cache = BlockCache(cache_bytes)
            self._arrays = None

    def _raw_view(self, db_id) -> np.ndarray:
        """One zero-copy int16 view over a whole database's blocks."""
        store = self._store
        n_blocks = store.n_blocks(db_id)
        positions = store.positions(db_id)
        if n_blocks == 0 or positions == 0:
            return np.zeros(0, dtype=store.dtype)
        first_offset, _, _ = store.block_span(db_id, 0)
        expected = first_offset
        for block_no in range(n_blocks):
            offset, clen, count = store.block_span(db_id, block_no)
            if offset != expected or clen != count * store.dtype.itemsize:
                raise ValueError(
                    f"db {db_id!r} blocks are not contiguous raw int16 "
                    f"runs; cannot map zero-copy"
                )
            expected = offset + clen
        return np.frombuffer(
            self._mm, dtype=store.dtype, count=positions,
            offset=store.data_start + first_offset,
        )

    def _unpacked_array(self, db_id) -> np.ndarray:
        """One database bulk-unpacked from its bit-packed blocks: each
        block's payload is sliced out of the mapping and decoded with
        the header's pack parameters (no file reads, no cache)."""
        store = self._store
        n_blocks = store.n_blocks(db_id)
        if n_blocks == 0 or store.positions(db_id) == 0:
            return np.zeros(0, dtype=store.dtype)
        parts = []
        for block_no in range(n_blocks):
            offset, clen, count = store.block_span(db_id, block_no)
            start = store.data_start + offset
            payload = self._mm[start : start + clen]
            parts.append(store.decode_block(payload, count))
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # ------------------------------------------------------------- metadata

    @property
    def game_name(self) -> str:
        """Game of the mapped store."""
        return self._store.game_name

    @property
    def rules(self) -> str:
        """Rule string of the mapped store."""
        return self._store.rules

    def ids(self) -> list:
        """Database ids of the mapped store."""
        return self._store.ids()

    def __contains__(self, db_id) -> bool:
        return db_id in self._store

    def positions(self, db_id) -> int:
        """Position count of one database."""
        return self._store.positions(db_id)

    def ping(self) -> bool:
        """Liveness: trivially true, there is no connection to lose."""
        return True

    def info(self) -> dict:
        """Metadata in the same shape as ``ProbeClient.info()``."""
        return {
            "game": self.game_name,
            "rules": self.rules,
            "backend": "mmap",
            "ids": self.ids(),
            "positions": {str(i): self.positions(i) for i in self.ids()},
        }

    def stats(self) -> dict:
        """Mapping and (for zlib stores) cache counters."""
        stats = {
            "backend": "mmap",
            "codec": self._store.codec,
            "mode": self.mode,
            "mmap_bytes": len(self._mm),
        }
        if self.fallback_reason is not None:
            stats["fallback_reason"] = self.fallback_reason
        if self.mode == "unpacked":
            stats["unpacked_bytes"] = sum(
                a.nbytes for a in self._arrays.values()
            )
        if self._cache is not None:
            stats.update(self._cache.stats())
        return stats

    # ---------------------------------------------------------------- probes

    def _check_range(self, db_id, idx: np.ndarray) -> None:
        n = self._store.positions(db_id)
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= n):
            bad = int(idx[(idx < 0) | (idx >= n)][0])
            raise IndexError(
                f"index {bad} out of range for db {db_id!r} ({n} positions)"
            )

    def _gather(self, db_id, indices: np.ndarray) -> np.ndarray:
        self._check_range(db_id, indices)
        if self._arrays is not None:
            return self._arrays[db_id][indices]
        store = self._store
        out = np.empty(indices.shape[0], dtype=np.int16)
        blocks = indices // store.block_positions
        base = blocks * store.block_positions
        with self._lock:
            for block_no in np.unique(blocks):
                mask = blocks == block_no
                values = self._cache.get(
                    (db_id, int(block_no)),
                    lambda b=int(block_no): store.read_block(db_id, b),
                    stored_bytes=store.stored_block_bytes(
                        db_id, int(block_no)
                    ),
                )
                out[mask] = values[indices[mask] - base[mask]]
        return out

    def probe(self, db_id, index: int) -> int:
        """Exact value of one position."""
        self._metrics.inc("probes")
        idx = np.asarray([index], dtype=np.int64)
        return int(self._gather(db_id, idx)[0])

    def probe_many(self, positions) -> np.ndarray:
        """Values for ``[(db_id, index), ...]`` in request order."""
        positions = list(positions)
        self._metrics.inc("batches")
        self._metrics.inc("probes", len(positions))
        out = np.empty(len(positions), dtype=np.int16)
        if not positions:
            return out
        by_db: dict = {}
        for slot, (db_id, index) in enumerate(positions):
            by_db.setdefault(db_id, []).append((slot, int(index)))
        for db_id, entries in by_db.items():
            slots = np.fromiter((s for s, _ in entries), dtype=np.int64,
                                count=len(entries))
            idx = np.fromiter((i for _, i in entries), dtype=np.int64,
                              count=len(entries))
            out[slots] = self._gather(db_id, idx)
        return out

    def probe_array(self, db_id, indices) -> np.ndarray:
        """Vectorized single-database batch (the zero-copy fast lane:
        for raw stores this is one fancy-index over the mapping)."""
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._metrics.inc("batches")
        self._metrics.inc("probes", int(indices.shape[0]))
        return self._gather(db_id, indices)

    def depth_of(self, db_id, index: int):
        """Distances are not paged; always ``None`` (same contract as
        the TCP clients)."""
        return None

    # ------------------------------------------------------------ best move

    @property
    def game(self):
        """The capture game, reconstructed from store metadata."""
        if self._game is None:
            from ..games.registry import capture_game_for

            self._game = capture_game_for(self)
        return self._game

    def best_moves(self, board):
        """(position value, optimal moves) — the same
        :func:`~repro.db.query.best_moves` logic, probing the mapping."""
        from ..db.query import best_moves

        self._metrics.inc("best_move_queries")
        return best_moves(self.game, self, board)

    def best_move(self, board) -> dict:
        """Best move in the same shape as ``ProbeClient.best_move``:
        ``{"value", "pits", "moves"}``."""
        value, moves = self.best_moves(board)
        return {
            "value": int(value),
            "pits": [m.pit for m in moves],
            "moves": [
                {"pit": m.pit, "captures": m.captures, "value": m.value}
                for m in moves
            ],
        }

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Drop the views, unmap the file, close the store; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._arrays = None  # views into the mapping must die before it
        self._mm.close()
        self._store.close()

    def __enter__(self) -> "LocalProbeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
