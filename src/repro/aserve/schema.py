"""Declarative schema of the binary probe-frame wire format.

:mod:`repro.aserve.frames` implements the wire format; this module
*declares* it, as plain data, in one place — the same pattern as the
metric-name catalog (:mod:`repro.staticcheck.catalog` →
``repro.obs.names``).  Three artifacts must agree on the layout:

* the struct format strings and numpy dtypes in ``frames.py`` (what
  actually goes on the wire),
* this schema (the reviewable contract),
* the frame-layout table in ``docs/SERVING.md`` (what operators read).

The RA011 checker (:mod:`repro.staticcheck.rules_frameschema`)
cross-checks all three on every run: a constant edited in ``frames.py``
without a matching schema (and doc) update is a lint failure, not a
silent protocol fork.  A wire-format change therefore always lands as
a three-file diff, which is exactly what a reviewer wants to see.

Nothing here imports ``frames`` (and vice versa): the schema must stay
usable by the checker even when ``frames.py`` is mid-edit or broken.
"""

from __future__ import annotations

__all__ = [
    "FRAME_STRUCTS",
    "FRAME_DTYPES",
    "OPCODES",
    "FLAGS",
    "HEADER_FIELDS",
    "PROTOCOL_VERSION",
    "header_layout",
]

#: The per-frame protocol version byte (never a valid UTF-8 leading
#: byte, so one listener can dispatch binary vs JSON per frame).
PROTOCOL_VERSION = 0xB1

#: Every ``struct.Struct`` format string in ``frames.py``, by the name
#: it is bound to there.  Big-endian outer framing and header (network
#: order); little-endian bodies (the numpy arrays' native layout).
FRAME_STRUCTS = {
    "LENGTH": ">I",     # outer length prefix, shared with JSON
    "HEADER": ">BBHI",  # version, opcode, flags, sequence id
    "_U16": "<H",       # database-id length, directory count
    "_U32": "<I",       # record / value counts
    "_I16": "<h",       # probe values
    "_I32": "<i",       # depth_of response
    "_I64": "<q",       # position indices
    "_BEST": "<hH",     # best_move response: value + move count
}

#: Every numpy dtype in ``frames.py``, by bound name.  Dtype specs are
#: given in the form ``np.dtype`` accepts, so the checker can compare
#: structurally (field names, formats, itemsize) rather than textually.
FRAME_DTYPES = {
    "RECORD_DTYPE": [("db", "<u2"), ("index", "<i8")],
    "VALUE_DTYPE": "<i2",
    "MOVE_DTYPE": [("pit", "<u1"), ("captures", "<i2"), ("value", "<i2")],
}

#: Request/response opcodes (``OP_*`` constants in ``frames.py``).
OPCODES = {
    "OP_PING": 1,
    "OP_INFO": 2,
    "OP_PROBE": 3,
    "OP_PROBE_MANY": 4,
    "OP_DEPTH_OF": 5,
    "OP_BEST_MOVE": 6,
    "OP_STATS": 7,
}

#: Response flag bits (``FLAG_*`` constants in ``frames.py``).
FLAGS = {
    "FLAG_ERROR": 0x0001,
    "FLAG_OVERLOADED": 0x0002,
}

#: Header field names, in wire order, matching ``FRAME_STRUCTS["HEADER"]``
#: one format character each.  The docs table is validated against the
#: offsets/sizes these derive.
HEADER_FIELDS = ("version", "opcode", "flags", "seq")

#: struct format character → byte size (the subset the header uses).
_CHAR_SIZES = {"B": 1, "H": 2, "I": 4, "h": 2, "i": 4, "q": 8, "Q": 8}


def header_layout() -> list:
    """``[(field, offset, size), ...]`` of the frame header, plus a
    final ``("body", offset, None)`` row — the shape of the
    docs/SERVING.md frame-layout table."""
    fmt = FRAME_STRUCTS["HEADER"].lstrip("><=!@")
    if len(fmt) != len(HEADER_FIELDS):
        raise ValueError(
            f"HEADER format {fmt!r} has {len(fmt)} fields, "
            f"HEADER_FIELDS names {len(HEADER_FIELDS)}"
        )
    rows = []
    offset = 0
    for field, char in zip(HEADER_FIELDS, fmt):
        size = _CHAR_SIZES[char]
        rows.append((field, offset, size))
        offset += size
    rows.append(("body", offset, None))
    return rows
