"""Versioned struct-packed binary frames for the probe protocol.

The JSON wire protocol (:mod:`repro.serve.protocol`) spends most of a
batched probe's budget encoding and decoding text.  This module defines
the binary twin: the same operations, fixed-width records, and numpy
bulk encode/decode for batches — no per-probe JSON anywhere on the hot
path.

Framing is shared with the JSON protocol: every frame is a payload
prefixed by its byte length as a big-endian uint32 (same 64 MiB cap).
The payload's **first byte** discriminates the protocol per frame —
``0x7B`` (``{``) opens a JSON object, :data:`BINARY_VERSION` (``0xB1``,
never a valid leading UTF-8 byte) opens a binary frame::

    4 bytes   length prefix (big-endian uint32, shared with JSON)
    1 byte    version  = 0xB1
    1 byte    opcode   (OP_PING .. OP_STATS)
    2 bytes   flags    (big-endian; bit 0 = error on responses)
    4 bytes   sequence id (big-endian; echoed by the response)
    ...       opcode-specific body (little-endian fixed-width fields)

The sequence id is what makes pipelining work: a client may have many
frames in flight on one connection and matches each response to its
request by ``seq``, regardless of arrival order.

Bodies (requests → responses):

=========== ============================================ ================
opcode       request body                                 response body
=========== ============================================ ================
ping         —                                            —
info         —                                            JSON object
probe        id, i64 index                                i16 value
probe_many   directory + u32 count + count×(u2,i8)        u32 count + count×i16
depth_of     id, i64 index                                i32 (INT32_MIN = none)
best_move    12×i16 pit counts                            i16 value, u16 n, n×(u1,i2,i2)
stats        —                                            JSON object
=========== ============================================ ================

``id`` is a u16 length + UTF-8 database id (parsed back with the same
rule as :class:`~repro.db.store.DatabaseSet`).  ``probe_many`` carries a
per-frame *directory* of database ids (u16 count, then ids), so its
records are fixed-width ``(u16 directory slot, i64 index)`` structs that
encode and decode as one ``ndarray.tobytes`` / ``np.frombuffer`` each.
Error responses set :data:`FLAG_ERROR` and carry a UTF-8 message.

``info`` and ``stats`` responses carry JSON *inside* a binary frame:
they are cold metadata operations, and keeping their schemas in JSON
means the two protocols can never disagree about them.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from ..db.store import DatabaseSet
from ..serve.protocol import BINARY_VERSION, MAX_MESSAGE_BYTES, ProtocolError

__all__ = [
    "BINARY_VERSION",
    "FLAG_ERROR",
    "FLAG_OVERLOADED",
    "FrameError",
    "HEADER",
    "LENGTH",
    "MOVE_DTYPE",
    "NO_DEPTH",
    "OP_BEST_MOVE",
    "OP_DEPTH_OF",
    "OP_INFO",
    "OP_NAMES",
    "OP_PING",
    "OP_PROBE",
    "OP_PROBE_MANY",
    "OP_STATS",
    "RECORD_DTYPE",
    "Request",
    "Response",
    "VALUE_DTYPE",
    "VERSION_BYTE",
    "decode_request",
    "decode_response",
    "pack_frame",
]

#: Outer length prefix, shared with the JSON protocol.
LENGTH = struct.Struct(">I")

#: Payload header: version, opcode, flags, sequence id.
HEADER = struct.Struct(">BBHI")

#: The version byte as a bytes object, for first-byte dispatch.
VERSION_BYTE = bytes([BINARY_VERSION])

#: Response flag bit 0: the body is a UTF-8 error message.
FLAG_ERROR = 0x0001

#: Response flag bit 1 (always with :data:`FLAG_ERROR`): the server
#: shed this request under load — the request was well-formed, the
#: connection survives, and a retry elsewhere (or later) can succeed.
FLAG_OVERLOADED = 0x0002

OP_PING = 1
OP_INFO = 2
OP_PROBE = 3
OP_PROBE_MANY = 4
OP_DEPTH_OF = 5
OP_BEST_MOVE = 6
OP_STATS = 7

#: Opcode → wire-protocol op name (metrics and error messages).
OP_NAMES = {
    OP_PING: "ping",
    OP_INFO: "info",
    OP_PROBE: "probe",
    OP_PROBE_MANY: "probe_many",
    OP_DEPTH_OF: "depth_of",
    OP_BEST_MOVE: "best_move",
    OP_STATS: "stats",
}

#: One probe_many record: directory slot + position index.
RECORD_DTYPE = np.dtype([("db", "<u2"), ("index", "<i8")])

#: Probe values on the wire (matches the paged-store dtype).
VALUE_DTYPE = np.dtype("<i2")

#: One evaluated move in a best_move response.
MOVE_DTYPE = np.dtype([("pit", "<u1"), ("captures", "<i2"), ("value", "<i2")])

#: depth_of sentinel for "no depth available" (i32 minimum).
NO_DEPTH = -(2**31)

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I16 = struct.Struct("<h")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_BEST = struct.Struct("<hH")


class FrameError(ProtocolError):
    """A binary frame that cannot be decoded: truncated header or body,
    unknown opcode, counts that disagree with the payload length."""


def pack_frame(payload: bytes) -> bytes:
    """Prefix one payload with the shared big-endian u32 length header."""
    if len(payload) > MAX_MESSAGE_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds limit ({MAX_MESSAGE_BYTES})"
        )
    return LENGTH.pack(len(payload)) + payload


def _header(opcode: int, seq: int, flags: int = 0) -> bytes:
    return HEADER.pack(BINARY_VERSION, opcode, flags, seq & 0xFFFFFFFF)


def _encode_id(db_id) -> bytes:
    raw = str(db_id).encode()
    return _U16.pack(len(raw)) + raw


def _decode_id(body, offset: int):
    (n,) = _U16.unpack_from(body, offset)
    offset += _U16.size
    raw = bytes(body[offset : offset + n])
    if len(raw) != n:
        raise FrameError("truncated database id")
    try:
        text = raw.decode()
    except UnicodeDecodeError as exc:
        raise FrameError(f"database id is not UTF-8: {exc}") from exc
    return DatabaseSet._parse_id(text), offset + n


# ------------------------------------------------------------- requests


def encode_ping(seq: int) -> bytes:
    """Request payload for ``ping``."""
    return _header(OP_PING, seq)


def encode_info(seq: int) -> bytes:
    """Request payload for ``info``."""
    return _header(OP_INFO, seq)


def encode_stats(seq: int) -> bytes:
    """Request payload for ``stats``."""
    return _header(OP_STATS, seq)


def encode_probe(seq: int, db_id, index: int) -> bytes:
    """Request payload for one ``probe``."""
    return _header(OP_PROBE, seq) + _encode_id(db_id) + _I64.pack(int(index))


def encode_depth_of(seq: int, db_id, index: int) -> bytes:
    """Request payload for one ``depth_of``."""
    return _header(OP_DEPTH_OF, seq) + _encode_id(db_id) + _I64.pack(int(index))


def encode_probe_many(seq: int, positions) -> bytes:
    """Request payload for a ``[(db_id, index), ...]`` batch.

    Builds the per-frame database directory, then delegates to
    :func:`encode_probe_many_packed` for the bulk record encode.
    """
    directory: list = []
    slot_of: dict = {}
    slots: list = []
    indices: list = []
    for db_id, index in positions:
        slot = slot_of.get(db_id)
        if slot is None:
            slot = slot_of[db_id] = len(directory)
            directory.append(db_id)
        slots.append(slot)
        indices.append(int(index))
    return encode_probe_many_packed(seq, directory, slots, indices)


def encode_probe_many_packed(seq: int, directory, db_slots, indices) -> bytes:
    """Request payload for a batch already split into parallel arrays.

    ``directory`` lists the database ids; ``db_slots[i]`` is the
    directory slot of probe ``i`` and ``indices[i]`` its position.  The
    records are bulk-encoded in one ``tobytes`` — this is the zero-
    Python-per-probe path the client and router use.
    """
    if len(directory) > 0xFFFF:
        raise FrameError("probe_many directory exceeds 65535 databases")
    parts = [_header(OP_PROBE_MANY, seq), _U16.pack(len(directory))]
    parts.extend(_encode_id(db_id) for db_id in directory)
    records = np.empty(len(indices), dtype=RECORD_DTYPE)
    records["db"] = db_slots
    records["index"] = indices
    parts.append(_U32.pack(records.shape[0]))
    parts.append(records.tobytes())
    return b"".join(parts)


def encode_best_move(seq: int, board) -> bytes:
    """Request payload for ``best_move`` (12 pit counts)."""
    arr = np.ascontiguousarray(np.asarray(board).reshape(12), dtype=VALUE_DTYPE)
    return _header(OP_BEST_MOVE, seq) + arr.tobytes()


class Request:
    """One decoded binary request."""

    __slots__ = ("opcode", "seq", "db", "index", "directory", "db_slots",
                 "indices", "board")

    def __init__(self, opcode, seq, db=None, index=None, directory=None,
                 db_slots=None, indices=None, board=None):
        self.opcode = opcode
        self.seq = seq
        self.db = db
        self.index = index
        self.directory = directory
        self.db_slots = db_slots
        self.indices = indices
        self.board = board


def peek_seq(payload) -> int:
    """Best-effort sequence id of a possibly-malformed frame (0 when the
    header itself is unreadable) — lets an error response still carry
    the sequence the client is waiting on."""
    if len(payload) >= HEADER.size:
        return HEADER.unpack_from(payload)[3]
    return 0


def peek_opcode(payload) -> int:
    """Best-effort opcode of a possibly-malformed frame (0 if unknown)."""
    if len(payload) >= 2:
        return payload[1]
    return 0


def decode_request(payload) -> Request:
    """Decode one request payload; raises :class:`FrameError` on any
    malformation (the caller answers an error frame — framing stays
    intact because the length prefix already delimited this frame)."""
    if len(payload) < HEADER.size:
        raise FrameError(
            f"binary frame of {len(payload)} bytes is shorter than the "
            f"{HEADER.size}-byte header"
        )
    version, opcode, _flags, seq = HEADER.unpack_from(payload)
    if version != BINARY_VERSION:
        raise FrameError(f"unknown binary version 0x{version:02x}")
    body = memoryview(payload)[HEADER.size:]
    try:
        if opcode in (OP_PING, OP_INFO, OP_STATS):
            if len(body) != 0:
                raise FrameError(
                    f"{OP_NAMES[opcode]} request carries an unexpected "
                    f"{len(body)}-byte body"
                )
            return Request(opcode, seq)
        if opcode in (OP_PROBE, OP_DEPTH_OF):
            db_id, offset = _decode_id(body, 0)
            (index,) = _I64.unpack_from(body, offset)
            if offset + _I64.size != len(body):
                raise FrameError(f"{OP_NAMES[opcode]} request has trailing bytes")
            return Request(opcode, seq, db=db_id, index=index)
        if opcode == OP_PROBE_MANY:
            return _decode_probe_many(seq, body)
        if opcode == OP_BEST_MOVE:
            if len(body) != 12 * VALUE_DTYPE.itemsize:
                raise FrameError(
                    f"best_move request body is {len(body)} bytes, "
                    f"expected 12 int16 pit counts"
                )
            board = np.frombuffer(body, dtype=VALUE_DTYPE).astype(np.int64)
            return Request(opcode, seq, board=board)
    except struct.error as exc:
        raise FrameError(f"truncated {OP_NAMES.get(opcode, opcode)} request: "
                         f"{exc}") from exc
    raise FrameError(f"unknown opcode {opcode}")


def _decode_probe_many(seq: int, body) -> Request:
    (n_dbs,) = _U16.unpack_from(body, 0)
    offset = _U16.size
    directory = []
    for _ in range(n_dbs):
        db_id, offset = _decode_id(body, offset)
        directory.append(db_id)
    (count,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    need = count * RECORD_DTYPE.itemsize
    if len(body) - offset != need:
        raise FrameError(
            f"probe_many body carries {len(body) - offset} record bytes, "
            f"expected {need} for {count} records"
        )
    records = np.frombuffer(body, dtype=RECORD_DTYPE, count=count,
                            offset=offset)
    if count and n_dbs == 0:
        raise FrameError("probe_many records without a database directory")
    if count and int(records["db"].max()) >= n_dbs:
        raise FrameError("record references a db slot beyond the directory")
    return Request(OP_PROBE_MANY, seq, directory=directory,
                   db_slots=records["db"], indices=records["index"])


# ------------------------------------------------------------ responses


def encode_error(seq: int, opcode: int, message: str,
                 flags: int = 0) -> bytes:
    """Error response payload: :data:`FLAG_ERROR` (plus any extra
    ``flags``, e.g. :data:`FLAG_OVERLOADED`) + UTF-8 message."""
    opcode = opcode if opcode in OP_NAMES else OP_PING
    return _header(opcode, seq, FLAG_ERROR | flags) + str(message).encode()


def encode_pong(seq: int) -> bytes:
    """Response payload for ``ping``."""
    return _header(OP_PING, seq)


def encode_value(seq: int, value: int) -> bytes:
    """Response payload for one ``probe``."""
    return _header(OP_PROBE, seq) + _I16.pack(int(value))


def encode_values(seq: int, values) -> bytes:
    """Response payload for ``probe_many``: one bulk ``tobytes``."""
    values = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
    return (_header(OP_PROBE_MANY, seq) + _U32.pack(values.shape[0])
            + values.tobytes())


def encode_depth(seq: int, depth) -> bytes:
    """Response payload for ``depth_of`` (:data:`NO_DEPTH` = ``None``)."""
    return _header(OP_DEPTH_OF, seq) + _I32.pack(
        NO_DEPTH if depth is None else int(depth)
    )


def encode_json_body(seq: int, opcode: int, obj: dict) -> bytes:
    """Response payload carrying a JSON object (``info`` / ``stats``)."""
    return _header(opcode, seq) + json.dumps(
        obj, separators=(",", ":")
    ).encode()


def encode_best_move_result(seq: int, value: int, moves) -> bytes:
    """Response payload for ``best_move``: value + packed move records."""
    parts = [_header(OP_BEST_MOVE, seq), _BEST.pack(int(value), len(moves))]
    records = np.empty(len(moves), dtype=MOVE_DTYPE)
    for i, move in enumerate(moves):
        records[i] = (move.pit, move.captures, move.value)
    parts.append(records.tobytes())
    return b"".join(parts)


class Response:
    """One decoded binary response; exactly one payload field is set."""

    __slots__ = ("opcode", "seq", "error", "value", "values", "depth",
                 "obj", "moves", "overloaded")

    def __init__(self, opcode, seq, error=None, value=None, values=None,
                 depth=None, obj=None, moves=None, overloaded=False):
        self.opcode = opcode
        self.seq = seq
        self.error = error
        self.value = value
        self.values = values
        self.depth = depth
        self.obj = obj
        self.moves = moves
        self.overloaded = overloaded


def decode_response(payload) -> Response:
    """Decode one response payload; raises :class:`FrameError` when the
    frame cannot be read (the client treats that as a transport loss —
    a desynchronized stream cannot be trusted for any pending seq)."""
    if len(payload) < HEADER.size:
        raise FrameError(
            f"binary response of {len(payload)} bytes is shorter than the "
            f"{HEADER.size}-byte header"
        )
    version, opcode, flags, seq = HEADER.unpack_from(payload)
    if version != BINARY_VERSION:
        raise FrameError(f"unknown binary version 0x{version:02x}")
    body = memoryview(payload)[HEADER.size:]
    if flags & FLAG_ERROR:
        return Response(opcode, seq,
                        error=bytes(body).decode(errors="replace"),
                        overloaded=bool(flags & FLAG_OVERLOADED))
    try:
        if opcode == OP_PING:
            return Response(opcode, seq, value=True)
        if opcode == OP_PROBE:
            return Response(opcode, seq, value=_I16.unpack_from(body)[0])
        if opcode == OP_PROBE_MANY:
            (count,) = _U32.unpack_from(body, 0)
            need = count * VALUE_DTYPE.itemsize
            if len(body) - _U32.size != need:
                raise FrameError(
                    f"probe_many response carries {len(body) - _U32.size} "
                    f"value bytes, expected {need}"
                )
            values = np.frombuffer(body, dtype=VALUE_DTYPE, count=count,
                                   offset=_U32.size)
            return Response(opcode, seq, values=values.astype(np.int16,
                                                              copy=False))
        if opcode == OP_DEPTH_OF:
            (depth,) = _I32.unpack_from(body)
            return Response(opcode, seq,
                            depth=None if depth == NO_DEPTH else depth)
        if opcode in (OP_INFO, OP_STATS):
            try:
                obj = json.loads(bytes(body).decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(f"bad JSON body in {OP_NAMES[opcode]} "
                                 f"response: {exc}") from exc
            return Response(opcode, seq, obj=obj)
        if opcode == OP_BEST_MOVE:
            value, count = _BEST.unpack_from(body, 0)
            need = count * MOVE_DTYPE.itemsize
            if len(body) - _BEST.size != need:
                raise FrameError("best_move response length disagrees with "
                                 "its move count")
            moves = np.frombuffer(body, dtype=MOVE_DTYPE, count=count,
                                  offset=_BEST.size)
            return Response(opcode, seq, value=value, moves=moves)
    except struct.error as exc:
        raise FrameError(
            f"truncated {OP_NAMES.get(opcode, opcode)} response: {exc}"
        ) from exc
    raise FrameError(f"unknown opcode {opcode} in response")
