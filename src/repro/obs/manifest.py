"""Per-run manifests: everything needed to interpret (and diff) a run.

A :class:`RunManifest` snapshots the run's identity — game, rule string,
solver configuration, seed — together with the final
:class:`~repro.obs.registry.MetricsRegistry` contents, and serializes to
a single JSON document.  The deterministic families (counters, gauges,
histograms) of two runs with identical configuration are bit-identical;
wall-clock timers live in their own section so a diff tool can skip them.

This is the file ``repro solve --metrics-out run.json`` writes and
``repro metrics run.json`` renders; benchmarks publish the same schema so
regression tooling has one format to parse (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SCHEMA", "RunManifest"]

#: Manifest schema identifier; bump on incompatible layout changes.
SCHEMA = "repro/run-manifest/v1"


@dataclass
class RunManifest:
    """One run's identity plus its metrics snapshot."""

    game: str
    command: str = ""
    rules: str = ""
    config: dict = field(default_factory=dict)
    seed: int | None = None
    metrics: dict = field(default_factory=dict)
    timers: dict = field(default_factory=dict)

    @classmethod
    def from_registry(
        cls,
        registry,
        game: str,
        command: str = "",
        rules: str = "",
        config: dict | None = None,
        seed: int | None = None,
    ) -> "RunManifest":
        """Snapshot ``registry`` (a :class:`MetricsRegistry` or the null
        registry) into a manifest."""
        full = registry.snapshot(timers=True)
        timers = full.pop("timers", {})
        return cls(
            game=game,
            command=command,
            rules=rules,
            config=dict(config or {}),
            seed=seed,
            metrics=full,
            timers=timers,
        )

    # ----------------------------------------------------------------- io

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "game": self.game,
            "command": self.command,
            "rules": self.rules,
            "config": self.config,
            "seed": self.seed,
            "metrics": self.metrics,
            "timers": self.timers,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path) -> Path:
        # Deferred import: obs must stay importable while resilience
        # (whose pool reports through obs) is still loading.
        from ..resilience.checkpoint import atomic_write_text

        path = Path(path)
        atomic_write_text(path, self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "RunManifest":
        data = json.loads(Path(path).read_text())
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"{path}: unknown manifest schema {schema!r} (expected {SCHEMA})"
            )
        return cls(
            game=data.get("game", ""),
            command=data.get("command", ""),
            rules=data.get("rules", ""),
            config=data.get("config", {}),
            seed=data.get("seed"),
            metrics=data.get("metrics", {}),
            timers=data.get("timers", {}),
        )
