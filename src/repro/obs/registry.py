"""Metrics registry — the single observability surface of the repo.

The paper's argument is quantitative (message counts, combining factors,
per-phase times), so every subsystem reports through one registry instead
of private counters.  Four instrument families:

* **counters** — monotone integer/float totals (``inc``), e.g. packets
  sent, updates combined, positions scanned.
* **gauges** — last-value-wins measurements (``set_gauge``), e.g. the
  combining factor of the final database.
* **histograms** — summaries (count/total/min/max) of repeated
  *deterministic* observations (``observe``), e.g. simulated makespans.
* **timers** — the same summaries for *wall-clock* durations
  (``observe_seconds`` / the ``phase`` context manager).  Kept in their
  own family because wall time is the one thing a deterministic run does
  not reproduce; consumers that diff two runs compare ``snapshot()``,
  which excludes timers, against ``snapshot(timers=True)`` for humans.

Disabled mode is a shared :data:`NULL_METRICS` singleton whose methods
are all no-ops — instrumented code calls ``metrics.inc(...)``
unconditionally and pays only an attribute lookup plus an empty call when
observability is off.  Hot loops that would pay to *format* a metric name
can guard on ``metrics.enabled``.

Names are dot-separated (``parallel.combining.packets``); ``scoped()``
returns a view that prefixes every name, so a subsystem can be handed
``registry.scoped("simnet")`` and stay ignorant of where it reports.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]


@dataclass
class HistogramSummary:
    """Streaming summary of one observation series."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class NullMetrics:
    """The zero-cost disabled registry: every instrument is a no-op."""

    enabled = False

    def inc(self, name: str, amount=1) -> None:
        pass

    def set_gauge(self, name: str, value) -> None:
        pass

    def observe(self, name: str, value) -> None:
        pass

    def observe_seconds(self, name: str, seconds: float) -> None:
        pass

    @contextmanager
    def phase(self, name: str):
        yield

    def scoped(self, prefix: str) -> "NullMetrics":
        return self

    def merge(self, snapshot: dict) -> None:
        pass

    def snapshot(self, timers: bool = False) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared disabled registry; safe because it holds no state.
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Enabled registry; see the module docstring for the families."""

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}
        self.timers: dict[str, HistogramSummary] = {}
        self._clock = clock

    # --------------------------------------------------------- instruments

    def inc(self, name: str, amount=1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.add(value)

    def observe_seconds(self, name: str, seconds: float) -> None:
        hist = self.timers.get(name)
        if hist is None:
            hist = self.timers[name] = HistogramSummary()
        hist.add(seconds)

    @contextmanager
    def phase(self, name: str):
        """Time a block of wall-clock work into the ``timers`` family."""
        t0 = self._clock()
        try:
            yield
        finally:
            self.observe_seconds(name, self._clock() - t0)

    def scoped(self, prefix: str) -> "_Scope":
        return _Scope(self, prefix)

    # -------------------------------------------------------- aggregation

    def snapshot(self, timers: bool = False) -> dict:
        """Plain-dict view of the deterministic families (sorted keys).

        ``timers=True`` adds the wall-clock family; two identical runs
        agree on everything *except* that section.
        """
        out = {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }
        if timers:
            out["timers"] = {
                k: self.timers[k].to_dict() for k in sorted(self.timers)
            }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. a per-database registry's) in:
        counters add, gauges overwrite, histogram/timer summaries merge."""
        for name, amount in snapshot.get("counters", {}).items():
            self.inc(name, amount)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for family, target in (
            ("histograms", self.histograms),
            ("timers", self.timers),
        ):
            for name, summary in snapshot.get(family, {}).items():
                hist = target.get(name)
                if hist is None:
                    hist = target[name] = HistogramSummary()
                if summary["count"]:
                    hist.count += summary["count"]
                    hist.total += summary["total"]
                    hist.min = min(hist.min, summary["min"])
                    hist.max = max(hist.max, summary["max"])


class _Scope:
    """Prefixing view over a :class:`MetricsRegistry` (same interface)."""

    enabled = True

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".") + "."

    def inc(self, name: str, amount=1) -> None:
        self._registry.inc(self._prefix + name, amount)

    def set_gauge(self, name: str, value) -> None:
        self._registry.set_gauge(self._prefix + name, value)

    def observe(self, name: str, value) -> None:
        self._registry.observe(self._prefix + name, value)

    def observe_seconds(self, name: str, seconds: float) -> None:
        self._registry.observe_seconds(self._prefix + name, seconds)

    def phase(self, name: str):
        return self._registry.phase(self._prefix + name)

    def scoped(self, prefix: str) -> "_Scope":
        return _Scope(self._registry, self._prefix + prefix)

    def merge(self, snapshot: dict) -> None:
        prefixed = {
            family: {self._prefix + k: v for k, v in entries.items()}
            for family, entries in snapshot.items()
        }
        self._registry.merge(prefixed)
