"""repro.obs — unified metrics and profiling layer.

Every subsystem (solvers, pipeline, simulated network) reports into one
:class:`MetricsRegistry`; a :class:`RunManifest` snapshots a run's
configuration and metrics to JSON.  See docs/OBSERVABILITY.md.
"""

from .manifest import SCHEMA, RunManifest
from .registry import (
    NULL_METRICS,
    HistogramSummary,
    MetricsRegistry,
    NullMetrics,
)

__all__ = [
    "SCHEMA",
    "RunManifest",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "HistogramSummary",
]
