"""Successor resolution shared by every database lookup path.

Evaluating a position against the databases always performs the same
three steps per legal move: apply the move, identify the database the
successor lands in (stone count minus capture), and rank the successor
board inside that database's indexer.  The in-memory query path
(:mod:`repro.db.query`) and the serving path (:mod:`repro.serve`) both
build on this helper so the two can never disagree on *which* entry a
move probes — only on where the value bytes come from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SuccessorRef", "resolve_successors"]


@dataclass(frozen=True)
class SuccessorRef:
    """One legal move and the database entry its successor occupies."""

    pit: int
    captures: int
    board: np.ndarray
    db_id: int
    index: int


def resolve_successors(game, board: np.ndarray) -> list[SuccessorRef]:
    """Resolve every legal move from ``board`` to its database entry.

    ``game`` is a capture game exposing ``engine`` (move application +
    per-stone-count indexer), e.g.
    :class:`~repro.games.awari_db.AwariCaptureGame`.  Moves are returned
    in pit order; a terminal position returns an empty list.
    """
    board = np.asarray(board, dtype=np.int16).reshape(12)
    n = int(board.sum())
    batch = np.broadcast_to(board, (6, 12))
    outcome = game.engine.apply_move(batch, np.arange(6, dtype=np.int64))
    refs: list[SuccessorRef] = []
    for pit in range(6):
        if not outcome.legal[pit]:
            continue
        cap = int(outcome.captured[pit])
        succ = outcome.boards[pit].copy()
        target = n - cap
        index = int(game.engine.indexer(target).rank(succ[None, :])[0])
        refs.append(
            SuccessorRef(
                pit=pit, captures=cap, board=succ, db_id=target, index=index
            )
        )
    return refs
