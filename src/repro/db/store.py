"""Endgame database storage.

A :class:`DatabaseSet` holds the value arrays of every solved database of
one game plus the metadata needed to interpret them (game name, rule
configuration).  It supports saving/loading as a single ``.npz`` archive,
memory accounting (the paper's uniprocessor memory wall is a first-class
measurement here) and shard views for distributed storage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["DatabaseSet"]

_META_KEY = "__meta__"


@dataclass
class DatabaseSet:
    """Solved databases keyed by database id (awari: stone count).

    ``depths`` optionally holds per-database distance arrays (plies of
    optimal play to realize the value inside its database; -1 for draws)
    produced by ``SequentialSolver(collect_depth=True)``.
    """

    game_name: str
    values: dict
    rules: str = ""
    depths: dict | None = None

    def depth_of(self, db_id, index: int):
        """Distance for one position, or ``None`` when not collected."""
        if self.depths is None or db_id not in self.depths:
            return None
        return int(self.depths[db_id][index])

    # ------------------------------------------------------------- access

    def __contains__(self, db_id) -> bool:
        return db_id in self.values

    def __getitem__(self, db_id) -> np.ndarray:
        try:
            return self.values[db_id]
        except KeyError:
            raise KeyError(
                f"database {db_id!r} not present; have {sorted(self.values)}"
            ) from None

    def ids(self) -> list:
        return sorted(self.values)

    @property
    def total_positions(self) -> int:
        return sum(int(v.shape[0]) for v in self.values.values())

    # ------------------------------------------------------------- memory

    def memory_bytes(self) -> int:
        """Resident bytes of the stored arrays (values plus depth arrays
        when collected) — what the memory-wall benchmarks account."""
        total = sum(v.nbytes for v in self.values.values())
        if self.depths:
            total += sum(d.nbytes for d in self.depths.values())
        return total

    def memory_modeled_bytes(self) -> int:
        """Bytes a packed 1995 representation would need (1 byte/value)."""
        return self.total_positions

    # ----------------------------------------------------------------- io

    def save(self, path) -> None:
        """Write all databases plus metadata to one ``.npz`` archive."""
        path = Path(path)
        arrays = {f"db_{db_id}": v for db_id, v in self.values.items()}
        if self.depths:
            arrays.update({f"depth_{db_id}": d for db_id, d in self.depths.items()})
        meta = json.dumps(
            {
                "game": self.game_name,
                "rules": self.rules,
                "ids": [str(i) for i in self.ids()],
            }
        )
        arrays[_META_KEY] = np.frombuffer(meta.encode(), dtype=np.uint8)
        # np.savez would append .npz itself; the atomic helper writes the
        # exact path it is given, so mirror that naming rule here.
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        from ..resilience.checkpoint import atomic_savez_compressed

        atomic_savez_compressed(path, **arrays)

    @staticmethod
    def _parse_id(text: str):
        return int(text) if text.lstrip("-").isdigit() else text

    @classmethod
    def load(cls, path) -> "DatabaseSet":
        path = Path(path)
        with np.load(path) as archive:
            meta = json.loads(bytes(archive[_META_KEY]).decode())
            values, depths = {}, {}
            for key in archive.files:
                if key == _META_KEY:
                    continue
                if key.startswith("db_"):
                    values[cls._parse_id(key[3:])] = archive[key]
                elif key.startswith("depth_"):
                    depths[cls._parse_id(key[6:])] = archive[key]
        return cls(
            game_name=meta["game"],
            values=values,
            rules=meta["rules"],
            depths=depths or None,
        )

    # -------------------------------------------------------------- shards

    def shard(self, db_id, partition) -> list[np.ndarray]:
        """Per-rank views of one database under ``partition`` (what each
        simulated processor holds after distribution)."""
        v = self[db_id]
        return [v[partition.local_indices(r)] for r in range(partition.n_parts)]
